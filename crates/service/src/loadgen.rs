//! Closed-loop load generation for shard-scaling measurements.
//!
//! [`run`] stands up one [`MatchService`] per configured shard count,
//! bulk-loads the same synthetic lexicon (paper §5's pairwise
//! concatenation dataset, pre-transformed so loading measures serving,
//! not G2P), then drives it with `clients` closed-loop threads cycling a
//! shared hot-query pool. Per-operation latencies are collected exactly
//! (nanosecond `Instant` pairs, not the histogram) so the report's
//! quantiles are true order statistics; throughput is total ops over
//! wall-clock.
//!
//! The report records `available_parallelism` because shard scaling is
//! physically bounded by it: on a 1-CPU host the 4-shard and 1-shard
//! configurations time-slice the same core and throughput stays flat —
//! the numbers only spread on real multicore hardware.
//!
//! [`run_net`] is the socket-level companion: it stands up a real
//! `lexequald` listener per (serve mode × connection count) cell and
//! drives it with pipelined windows over many concurrent TCP
//! connections, producing `results/evented_bench.json` — the
//! evented-vs-threaded serving comparison.

use crate::event_loop::ShutdownSignal;
use crate::server::{serve_with, ServeMode, ServeOptions};
use crate::service::{
    AutoMatchRequest, MatchOutcome, MatchRequest, MatchService, ServiceConfig, SnapshotFormat,
};
use crate::shard::BuildSpec;
use lexequal::store::NameEntry;
use lexequal::{MatchConfig, QgramMode, SearchMethod};
use lexequal_lexicon::{Corpus, SyntheticDataset};
use lexequal_mdb::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// What to measure.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target synthetic lexicon size (actual size is reported).
    pub dataset_size: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Lookups each client performs per shard configuration.
    pub ops_per_client: usize,
    /// Shard counts to compare.
    pub shard_counts: Vec<usize>,
    /// Access path under test.
    pub method: SearchMethod,
    /// Match threshold for every lookup.
    pub threshold: f64,
    /// Transform-cache capacity.
    pub cache_capacity: usize,
    /// Number of distinct hot queries in the shared pool.
    pub query_pool: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            dataset_size: 50_000,
            clients: 4,
            ops_per_client: 250,
            shard_counts: vec![1, 2, 4],
            method: SearchMethod::Qgram,
            threshold: 0.35,
            cache_capacity: 4096,
            query_pool: 64,
        }
    }
}

/// One shard configuration's measurements.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shards (worker threads) in the store.
    pub shards: usize,
    /// Total lookups performed.
    pub total_ops: usize,
    /// Wall-clock seconds for the measurement window.
    pub elapsed_secs: f64,
    /// Lookups per second.
    pub throughput: f64,
    /// Median per-op latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-op latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile per-op latency, microseconds.
    pub p99_us: f64,
    /// Transform-cache hits after the run.
    pub cache_hits: u64,
    /// Transform-cache misses after the run.
    pub cache_misses: u64,
    /// Total matching ids returned across all lookups.
    pub matches_returned: u64,
}

/// The full report [`run`] produces and [`write_json`] persists.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Actual number of names loaded.
    pub dataset_size: usize,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the hard ceiling on shard scaling.
    pub available_parallelism: usize,
    /// Client threads used.
    pub clients: usize,
    /// Access path measured.
    pub method: SearchMethod,
    /// Threshold used.
    pub threshold: f64,
    /// One entry per shard count, in configured order.
    pub runs: Vec<ShardRun>,
}

/// Build the synthetic dataset once (shared across shard configurations).
pub fn build_dataset(config: &MatchConfig, target: usize) -> Vec<NameEntry> {
    let corpus = Corpus::build(config);
    SyntheticDataset::generate(&corpus, target)
        .entries
        .into_iter()
        .map(|e| NameEntry {
            text: e.text,
            language: e.language,
            phonemes: e.phonemes,
        })
        .collect()
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1_000.0
}

/// Measure one shard configuration over a pre-built dataset.
pub fn run_one(config: &LoadgenConfig, shards: usize, dataset: &[NameEntry]) -> ShardRun {
    let service = Arc::new(MatchService::new(ServiceConfig {
        match_config: MatchConfig::default(),
        shards,
        cache_capacity: config.cache_capacity,
    }));
    service.extend_transformed(dataset.to_vec());
    match config.method {
        SearchMethod::Scan => {}
        SearchMethod::Qgram => service.build(BuildSpec::Qgram {
            q: 3,
            mode: QgramMode::Strict,
        }),
        SearchMethod::PhoneticIndex => service.build(BuildSpec::PhoneticIndex),
        SearchMethod::BkTree => service.build(BuildSpec::BkTree),
    }

    // Hot-query pool: every k-th stored name, so each query has at least
    // one true match and repeats exercise the transform cache.
    let stride = (dataset.len() / config.query_pool.max(1)).max(1);
    let pool: Vec<(String, lexequal::Language)> = dataset
        .iter()
        .step_by(stride)
        .take(config.query_pool.max(1))
        .map(|e| (e.text.clone(), e.language))
        .collect();

    let start = Instant::now();
    let mut all_ns: Vec<u64> = Vec::with_capacity(config.clients * config.ops_per_client);
    let mut matched = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let service = Arc::clone(&service);
                let pool = &pool;
                scope.spawn(move || {
                    let mut ns = Vec::with_capacity(config.ops_per_client);
                    let mut matched = 0u64;
                    for i in 0..config.ops_per_client {
                        let (text, language) = &pool[(c + i) % pool.len()];
                        let req = MatchRequest {
                            text: text.clone(),
                            language: *language,
                            threshold: Some(config.threshold),
                            method: Some(config.method),
                        };
                        let t = Instant::now();
                        let out = service.lookup(&req);
                        ns.push(t.elapsed().as_nanos() as u64);
                        if let MatchOutcome::Matches { ids, .. } = out {
                            matched += ids.len() as u64;
                        }
                    }
                    (ns, matched)
                })
            })
            .collect();
        for h in handles {
            let (ns, m) = h.join().expect("client thread");
            all_ns.extend(ns);
            matched += m;
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    all_ns.sort_unstable();
    let (cache_hits, cache_misses) = service.cache().stats();
    ShardRun {
        shards,
        total_ops: all_ns.len(),
        elapsed_secs: elapsed,
        throughput: all_ns.len() as f64 / elapsed.max(f64::EPSILON),
        p50_us: percentile_us(&all_ns, 0.50),
        p95_us: percentile_us(&all_ns, 0.95),
        p99_us: percentile_us(&all_ns, 0.99),
        cache_hits,
        cache_misses,
        matches_returned: matched,
    }
}

/// Run the whole comparison.
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    let dataset = build_dataset(&MatchConfig::default(), config.dataset_size);
    let runs = config
        .shard_counts
        .iter()
        .map(|&s| run_one(config, s, &dataset))
        .collect();
    LoadgenReport {
        dataset_size: dataset.len(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        clients: config.clients,
        method: config.method,
        threshold: config.threshold,
        runs,
    }
}

/// Render the report as JSON.
pub fn to_json(report: &LoadgenReport) -> Json {
    Json::Obj(vec![
        (
            "dataset_size".to_owned(),
            Json::Int(report.dataset_size as i64),
        ),
        (
            "available_parallelism".to_owned(),
            Json::Int(report.available_parallelism as i64),
        ),
        ("clients".to_owned(), Json::Int(report.clients as i64)),
        (
            "method".to_owned(),
            Json::Str(crate::metrics::method_name(report.method).to_owned()),
        ),
        ("threshold".to_owned(), Json::Float(report.threshold)),
        (
            "runs".to_owned(),
            Json::Arr(
                report
                    .runs
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("shards".to_owned(), Json::Int(r.shards as i64)),
                            ("total_ops".to_owned(), Json::Int(r.total_ops as i64)),
                            ("elapsed_secs".to_owned(), Json::Float(r.elapsed_secs)),
                            ("throughput".to_owned(), Json::Float(r.throughput)),
                            ("p50_us".to_owned(), Json::Float(r.p50_us)),
                            ("p95_us".to_owned(), Json::Float(r.p95_us)),
                            ("p99_us".to_owned(), Json::Float(r.p99_us)),
                            ("cache_hits".to_owned(), Json::Int(r.cache_hits as i64)),
                            ("cache_misses".to_owned(), Json::Int(r.cache_misses as i64)),
                            (
                                "matches_returned".to_owned(),
                                Json::Int(r.matches_returned as i64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Write the report to `path` as JSON (creating parent directories).
pub fn write_json(report: &LoadgenReport, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_json(report).render())
}

// ---------------------------------------------------------------------------
// Snapshot cold-start comparison (`--snapshot-bench`)
// ---------------------------------------------------------------------------

/// What the snapshot cold-start bench measures.
#[derive(Debug, Clone)]
pub struct SnapshotBenchConfig {
    /// Target synthetic lexicon size.
    pub dataset_size: usize,
    /// Store shards for both sides of the comparison.
    pub shards: usize,
    /// Transform-cache capacity.
    pub cache_capacity: usize,
}

impl Default for SnapshotBenchConfig {
    fn default() -> Self {
        SnapshotBenchConfig {
            dataset_size: 20_000,
            shards: 2,
            cache_capacity: 4096,
        }
    }
}

/// Three-way cold-start timings: building a serving store from the
/// corpus (G2P pass + load + index builds), restoring it from the JSON
/// snapshot document (read + decode + validation + parallel index
/// rebuild), and mmapping the binary image (validate header/checksums,
/// serve directly from the mapping — index rebuilds deferred and timed
/// separately).
#[derive(Debug, Clone)]
pub struct SnapshotBenchReport {
    /// Actual number of names.
    pub dataset_size: usize,
    /// Store shards used on all sides.
    pub shards: usize,
    /// Host `available_parallelism` (bounds all sides equally).
    pub available_parallelism: usize,
    /// The G2P transform share of the corpus build, seconds.
    pub g2p_secs: f64,
    /// Full build-from-corpus cold start, seconds (G2P + bulk load +
    /// all three access-path builds).
    pub build_cold_start_secs: f64,
    /// Writing the JSON snapshot document, seconds.
    pub save_secs: f64,
    /// JSON snapshot size on disk, bytes.
    pub snapshot_bytes: u64,
    /// Full load-from-JSON cold start, seconds (read + decode +
    /// fingerprint/cluster validation + parallel index rebuild).
    pub snapshot_cold_start_secs: f64,
    /// `build_cold_start_secs / snapshot_cold_start_secs`.
    pub cold_start_speedup: f64,
    /// Writing the binary mmap image, seconds.
    pub mmap_save_secs: f64,
    /// Binary image size on disk, bytes.
    pub mmap_snapshot_bytes: u64,
    /// mmap + validate + serve-ready, seconds: after this the scan path
    /// answers MATCH straight out of the mapping.
    pub mmap_load_secs: f64,
    /// Rebuilding the recorded access paths afterwards, seconds (runs
    /// in the background in `lexequald`; measured synchronously here).
    pub mmap_build_secs: f64,
    /// `snapshot_cold_start_secs / mmap_load_secs` — how much faster
    /// the mapping reaches serve-ready than the JSON parse path.
    pub mmap_vs_json_speedup: f64,
    /// `build_cold_start_secs / mmap_load_secs`.
    pub mmap_cold_start_speedup: f64,
}

/// Run the cold-start comparison. The snapshot itself is written to a
/// temporary file and removed afterwards; only the timings survive.
pub fn run_snapshot_bench(config: &SnapshotBenchConfig) -> SnapshotBenchReport {
    let match_config = MatchConfig::default();

    // Side A: cold start from the corpus.
    let t0 = Instant::now();
    let dataset = build_dataset(&match_config, config.dataset_size);
    let g2p_secs = t0.elapsed().as_secs_f64();
    let service = MatchService::new(ServiceConfig {
        match_config: match_config.clone(),
        shards: config.shards,
        cache_capacity: config.cache_capacity,
    });
    let n = dataset.len();
    service.extend_transformed(dataset);
    service.build_all(3, QgramMode::Strict);
    let build_cold_start_secs = t0.elapsed().as_secs_f64();

    // Save both formats once (not part of any cold start).
    let json_path = std::env::temp_dir().join(format!(
        "lexequal_snapshot_bench_{}_{}.json",
        std::process::id(),
        config.dataset_size
    ));
    let mmap_path = std::env::temp_dir().join(format!(
        "lexequal_snapshot_bench_{}_{}.lexmm",
        std::process::id(),
        config.dataset_size
    ));
    let t1 = Instant::now();
    service
        .save_snapshot_with_lsn_format(&json_path, 0, SnapshotFormat::Json)
        .expect("save json snapshot");
    let save_secs = t1.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&json_path).map(|m| m.len()).unwrap_or(0);
    let t1m = Instant::now();
    service
        .save_snapshot_with_lsn_format(&mmap_path, 0, SnapshotFormat::Mmap)
        .expect("save mmap snapshot");
    let mmap_save_secs = t1m.elapsed().as_secs_f64();
    let mmap_snapshot_bytes = std::fs::metadata(&mmap_path).map(|m| m.len()).unwrap_or(0);
    drop(service);

    // Side B: cold start from the JSON document (parse + validate +
    // parallel index rebuild).
    let t2 = Instant::now();
    let loaded = MatchService::load_snapshot(
        match_config.clone(),
        None,
        config.cache_capacity,
        &json_path,
    )
    .expect("load json snapshot");
    let snapshot_cold_start_secs = t2.elapsed().as_secs_f64();
    assert_eq!(loaded.len(), n, "snapshot dropped names");
    drop(loaded);
    std::fs::remove_file(&json_path).ok();

    // Side C: mmap the binary image. Serve-ready (scan path live) and
    // the deferred index rebuilds are timed separately — `lexequald`
    // runs the latter in the background while already serving.
    let t3 = Instant::now();
    let mmap_loaded =
        MatchService::load_snapshot_auto(match_config, None, config.cache_capacity, &mmap_path)
            .expect("load mmap snapshot");
    let mmap_load_secs = t3.elapsed().as_secs_f64();
    assert_eq!(mmap_loaded.service.len(), n, "mmap image dropped names");
    let t4 = Instant::now();
    for spec in mmap_loaded.pending_builds {
        mmap_loaded.service.build(spec);
    }
    let mmap_build_secs = t4.elapsed().as_secs_f64();
    std::fs::remove_file(&mmap_path).ok();

    SnapshotBenchReport {
        dataset_size: n,
        shards: config.shards,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        g2p_secs,
        build_cold_start_secs,
        save_secs,
        snapshot_bytes,
        snapshot_cold_start_secs,
        cold_start_speedup: build_cold_start_secs / snapshot_cold_start_secs.max(f64::EPSILON),
        mmap_save_secs,
        mmap_snapshot_bytes,
        mmap_load_secs,
        mmap_build_secs,
        mmap_vs_json_speedup: snapshot_cold_start_secs / mmap_load_secs.max(f64::EPSILON),
        mmap_cold_start_speedup: build_cold_start_secs / mmap_load_secs.max(f64::EPSILON),
    }
}

/// Render the snapshot bench report as JSON.
pub fn snapshot_bench_to_json(report: &SnapshotBenchReport) -> Json {
    Json::Obj(vec![
        (
            "dataset_size".to_owned(),
            Json::Int(report.dataset_size as i64),
        ),
        ("shards".to_owned(), Json::Int(report.shards as i64)),
        (
            "available_parallelism".to_owned(),
            Json::Int(report.available_parallelism as i64),
        ),
        ("g2p_secs".to_owned(), Json::Float(report.g2p_secs)),
        (
            "build_cold_start_secs".to_owned(),
            Json::Float(report.build_cold_start_secs),
        ),
        ("save_secs".to_owned(), Json::Float(report.save_secs)),
        (
            "snapshot_bytes".to_owned(),
            Json::Int(report.snapshot_bytes as i64),
        ),
        (
            "snapshot_cold_start_secs".to_owned(),
            Json::Float(report.snapshot_cold_start_secs),
        ),
        (
            "cold_start_speedup".to_owned(),
            Json::Float(report.cold_start_speedup),
        ),
        (
            "mmap_save_secs".to_owned(),
            Json::Float(report.mmap_save_secs),
        ),
        (
            "mmap_snapshot_bytes".to_owned(),
            Json::Int(report.mmap_snapshot_bytes as i64),
        ),
        (
            "mmap_load_secs".to_owned(),
            Json::Float(report.mmap_load_secs),
        ),
        (
            "mmap_build_secs".to_owned(),
            Json::Float(report.mmap_build_secs),
        ),
        (
            "mmap_vs_json_speedup".to_owned(),
            Json::Float(report.mmap_vs_json_speedup),
        ),
        (
            "mmap_cold_start_speedup".to_owned(),
            Json::Float(report.mmap_cold_start_speedup),
        ),
    ])
}

/// Write the snapshot bench report to `path` as JSON.
pub fn write_snapshot_bench_json(
    report: &SnapshotBenchReport,
    path: &std::path::Path,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, snapshot_bench_to_json(report).render())
}

// ---------------------------------------------------------------------------
// Socket-level serving-mode comparison (`--net`)
// ---------------------------------------------------------------------------

/// What the socket-level bench measures.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Target synthetic lexicon size.
    pub dataset_size: usize,
    /// Concurrent TCP connection counts to compare.
    pub connections: Vec<usize>,
    /// Requests pipelined per window on each connection.
    pub pipeline: usize,
    /// Total requests each connection sends (rounded down to whole
    /// windows).
    pub ops_per_conn: usize,
    /// Client threads multiplexing the connections.
    pub client_threads: usize,
    /// Serve modes to compare.
    pub modes: Vec<ServeMode>,
    /// Verify workers for the evented mode.
    pub workers: usize,
    /// Access path under test.
    pub method: SearchMethod,
    /// Match threshold for every lookup.
    pub threshold: f64,
    /// Number of distinct hot queries in the shared pool.
    pub query_pool: usize,
    /// Transform-cache capacity.
    pub cache_capacity: usize,
    /// Store shards.
    pub shards: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            dataset_size: 20_000,
            connections: vec![64, 256, 1024],
            pipeline: 8,
            ops_per_conn: 32,
            client_threads: 4,
            modes: vec![ServeMode::Threaded, ServeMode::Evented],
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            method: SearchMethod::PhoneticIndex,
            threshold: 0.35,
            query_pool: 64,
            cache_capacity: 4096,
            shards: 2,
        }
    }
}

/// One (mode × connection count) cell of the socket bench.
#[derive(Debug, Clone)]
pub struct NetRun {
    /// Serve mode measured.
    pub mode: ServeMode,
    /// Concurrent connections driven.
    pub connections: usize,
    /// Pipeline window depth per connection.
    pub pipeline: usize,
    /// Total MATCH requests completed.
    pub total_ops: usize,
    /// Wall-clock seconds for the measurement window (connect + drive).
    pub elapsed_secs: f64,
    /// Requests per second.
    pub throughput: f64,
    /// Median per-request latency, microseconds. Measured per pipelined
    /// window round-trip and divided by the window depth, so it is an
    /// amortized figure, not a single-request RTT.
    pub p50_us: f64,
    /// 95th percentile (same amortized basis).
    pub p95_us: f64,
    /// 99th percentile (same amortized basis).
    pub p99_us: f64,
    /// Server-reported peak concurrent connections (`STATS`).
    pub conns_peak: u64,
    /// Server-reported per-connection max pipeline depth (`STATS`).
    pub pipeline_max: u64,
    /// Server-reported verify-queue depth peak (`STATS`, evented only).
    pub queue_peak: u64,
    /// Server-reported batched-verifier steps across all shards (`STATS`).
    pub batch_calls: u64,
    /// Server-reported candidate lanes occupied across those steps
    /// (`STATS`); `batch_lanes_sum / batch_calls` is the mean fill.
    pub batch_lanes_sum: u64,
    /// Server-reported widest single batched step (`STATS`).
    pub batch_lanes_max: u64,
    /// Server-reported SIMD dispatch level for the batched DP drain
    /// (`STATS`): `avx2`, `sse2`, or `scalar`.
    pub simd: String,
}

/// The full socket-bench report.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Actual number of names loaded into each server.
    pub dataset_size: usize,
    /// Host `available_parallelism` — everything below time-slices it.
    pub available_parallelism: usize,
    /// Client threads multiplexing the sockets.
    pub client_threads: usize,
    /// Access path measured.
    pub method: SearchMethod,
    /// One entry per (mode × connection count), modes outermost.
    pub runs: Vec<NetRun>,
}

/// Pull a `key=value` integer out of a STATS line.
fn stat_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Pull a `key=value` string out of a STATS line.
fn stat_str(line: &str, key: &str) -> String {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or("")
        .to_owned()
}

/// Drive one (mode × connection count) cell against a fresh server.
pub fn run_net_one(
    config: &NetConfig,
    mode: ServeMode,
    conns: usize,
    dataset: &[NameEntry],
) -> NetRun {
    let service = Arc::new(MatchService::new(ServiceConfig {
        match_config: MatchConfig::default(),
        shards: config.shards,
        cache_capacity: config.cache_capacity,
    }));
    service.extend_transformed(dataset.to_vec());
    match config.method {
        SearchMethod::Scan => {}
        SearchMethod::Qgram => service.build(BuildSpec::Qgram {
            q: 3,
            mode: QgramMode::Strict,
        }),
        SearchMethod::PhoneticIndex => service.build(BuildSpec::PhoneticIndex),
        SearchMethod::BkTree => service.build(BuildSpec::BkTree),
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind bench listener");
    let addr = listener.local_addr().expect("listener addr");
    let shutdown = ShutdownSignal::new().expect("shutdown signal");
    let opts = ServeOptions {
        workers: config.workers,
        // Leave the window wider than the client's so server-side
        // backpressure never throttles the measurement itself.
        max_pipeline: (2 * config.pipeline).max(16),
        ..ServeOptions::default()
    };
    let server = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || serve_with(mode, listener, service, opts, shutdown))
    };

    // Pre-render the request lines clients cycle through.
    let stride = (dataset.len() / config.query_pool.max(1)).max(1);
    let method = crate::metrics::method_name(config.method);
    let pool: Vec<String> = dataset
        .iter()
        .step_by(stride)
        .take(config.query_pool.max(1))
        .map(|e| {
            format!(
                "MATCH {} {} {} {}\n",
                e.language, method, config.threshold, e.text
            )
        })
        .collect();

    let windows = (config.ops_per_conn / config.pipeline).max(1);
    let threads = config.client_threads.max(1);
    let start = Instant::now();
    let mut window_ns: Vec<u64> = Vec::with_capacity(conns * windows);
    let mut total_ops = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let pool = &pool;
                scope.spawn(move || {
                    let my_conns = (t..conns).step_by(threads).count();
                    let mut socks = Vec::with_capacity(my_conns);
                    for _ in 0..my_conns {
                        let stream = TcpStream::connect(addr).expect("connect bench conn");
                        stream.set_nodelay(true).expect("nodelay");
                        let reader = BufReader::new(stream.try_clone().expect("clone"));
                        socks.push((stream, reader));
                    }
                    let mut ns = Vec::with_capacity(my_conns * windows);
                    let mut ops = 0usize;
                    let mut line = String::new();
                    for w in 0..windows {
                        // Lock-step: write every connection's window, then
                        // collect every connection's responses. While one
                        // socket waits the server is busy with the others,
                        // so all `conns` stay concurrently in flight.
                        let mut starts = Vec::with_capacity(socks.len());
                        for (i, (stream, _)) in socks.iter_mut().enumerate() {
                            let mut batch = String::new();
                            for k in 0..config.pipeline {
                                batch.push_str(&pool[(t + i + w + k) % pool.len()]);
                            }
                            starts.push(Instant::now());
                            stream.write_all(batch.as_bytes()).expect("write window");
                        }
                        for (i, (_, reader)) in socks.iter_mut().enumerate() {
                            for _ in 0..config.pipeline {
                                line.clear();
                                reader.read_line(&mut line).expect("read response");
                                assert!(
                                    line.starts_with("OK ") || line.starts_with("NO"),
                                    "bench got {line:?}"
                                );
                                ops += 1;
                            }
                            ns.push(starts[i].elapsed().as_nanos() as u64);
                        }
                    }
                    (ns, ops)
                })
            })
            .collect();
        for h in handles {
            let (ns, ops) = h.join().expect("bench client thread");
            window_ns.extend(ns);
            total_ops += ops;
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    // Scrape the server's own gauges before shutting it down.
    let stats_line = {
        let stream = TcpStream::connect(addr).expect("connect stats conn");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut s = stream;
        s.write_all(b"STATS\nQUIT\n").expect("write stats");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read stats");
        line
    };
    shutdown.trigger();
    server.join().expect("server thread").expect("serve loop");

    window_ns.sort_unstable();
    let per_op = |p: f64| percentile_us(&window_ns, p) / config.pipeline as f64;
    NetRun {
        mode,
        connections: conns,
        pipeline: config.pipeline,
        total_ops,
        elapsed_secs: elapsed,
        throughput: total_ops as f64 / elapsed.max(f64::EPSILON),
        p50_us: per_op(0.50),
        p95_us: per_op(0.95),
        p99_us: per_op(0.99),
        conns_peak: stat_u64(&stats_line, "conns_peak"),
        pipeline_max: stat_u64(&stats_line, "pipeline_max"),
        queue_peak: stat_u64(&stats_line, "queue_peak"),
        batch_calls: stat_u64(&stats_line, "batch_calls"),
        batch_lanes_sum: stat_u64(&stats_line, "batch_lanes_sum"),
        batch_lanes_max: stat_u64(&stats_line, "batch_lanes_max"),
        simd: stat_str(&stats_line, "simd"),
    }
}

/// Run the whole serving-mode comparison.
pub fn run_net(config: &NetConfig) -> NetReport {
    let dataset = build_dataset(&MatchConfig::default(), config.dataset_size);
    let mut runs = Vec::new();
    for &mode in &config.modes {
        for &conns in &config.connections {
            eprintln!("loadgen: net {} x {conns} connections...", mode.name());
            runs.push(run_net_one(config, mode, conns, &dataset));
        }
    }
    NetReport {
        dataset_size: dataset.len(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        client_threads: config.client_threads,
        method: config.method,
        runs,
    }
}

/// Render the socket-bench report as JSON.
pub fn net_to_json(report: &NetReport) -> Json {
    Json::Obj(vec![
        (
            "dataset_size".to_owned(),
            Json::Int(report.dataset_size as i64),
        ),
        (
            "available_parallelism".to_owned(),
            Json::Int(report.available_parallelism as i64),
        ),
        (
            "client_threads".to_owned(),
            Json::Int(report.client_threads as i64),
        ),
        (
            "method".to_owned(),
            Json::Str(crate::metrics::method_name(report.method).to_owned()),
        ),
        (
            "latency_note".to_owned(),
            Json::Str(
                "latencies are window round-trips divided by pipeline depth (amortized)".to_owned(),
            ),
        ),
        (
            "runs".to_owned(),
            Json::Arr(
                report
                    .runs
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("mode".to_owned(), Json::Str(r.mode.name().to_owned())),
                            ("connections".to_owned(), Json::Int(r.connections as i64)),
                            ("pipeline".to_owned(), Json::Int(r.pipeline as i64)),
                            ("total_ops".to_owned(), Json::Int(r.total_ops as i64)),
                            ("elapsed_secs".to_owned(), Json::Float(r.elapsed_secs)),
                            ("throughput".to_owned(), Json::Float(r.throughput)),
                            ("p50_us".to_owned(), Json::Float(r.p50_us)),
                            ("p95_us".to_owned(), Json::Float(r.p95_us)),
                            ("p99_us".to_owned(), Json::Float(r.p99_us)),
                            ("conns_peak".to_owned(), Json::Int(r.conns_peak as i64)),
                            ("pipeline_max".to_owned(), Json::Int(r.pipeline_max as i64)),
                            ("queue_peak".to_owned(), Json::Int(r.queue_peak as i64)),
                            ("batch_calls".to_owned(), Json::Int(r.batch_calls as i64)),
                            (
                                "batch_lanes_sum".to_owned(),
                                Json::Int(r.batch_lanes_sum as i64),
                            ),
                            (
                                "batch_lanes_max".to_owned(),
                                Json::Int(r.batch_lanes_max as i64),
                            ),
                            ("simd".to_owned(), Json::Str(r.simd.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Write the socket-bench report to `path` as JSON.
pub fn write_net_json(report: &NetReport, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, net_to_json(report).render())
}

// ---------------------------------------------------------------------------
// Replication apply/lag measurement (`--repl-bench`)
// ---------------------------------------------------------------------------

/// What the replication bench measures.
#[derive(Debug, Clone)]
pub struct ReplBenchConfig {
    /// Names preloaded into the primary before the replica attaches
    /// (they travel in the initial snapshot transfer).
    pub dataset_size: usize,
    /// Mutations committed through the WAL while the replica streams.
    pub ops: usize,
    /// Store shards on both sides.
    pub shards: usize,
    /// Transform-cache capacity.
    pub cache_capacity: usize,
}

impl Default for ReplBenchConfig {
    fn default() -> Self {
        ReplBenchConfig {
            dataset_size: 20_000,
            ops: 2_000,
            shards: 2,
            cache_capacity: 4096,
        }
    }
}

/// Replication timings: a real primary (WAL + replication listener) and
/// a real replica linked over a socket, measuring the snapshot transfer,
/// the primary's fsynced commit rate, the replica's apply rate, and the
/// lag the stream sustains while commits flow.
#[derive(Debug, Clone)]
pub struct ReplBenchReport {
    /// Names in the initial snapshot transfer.
    pub dataset_size: usize,
    /// Streamed mutations measured.
    pub ops: usize,
    /// Store shards on both sides.
    pub shards: usize,
    /// Host `available_parallelism` (primary, replica and bench driver
    /// all time-slice it).
    pub available_parallelism: usize,
    /// Initial sync wall-clock, seconds (connect + snapshot transfer +
    /// restore + index rebuild).
    pub sync_secs: f64,
    /// Primary-side committed mutations per second (validate + WAL
    /// append + fsync + apply, serialized on the commit lock).
    pub commit_ops_per_sec: f64,
    /// Replica-side applied ops per second over the same window
    /// (first commit until the replica reports zero lag).
    pub apply_ops_per_sec: f64,
    /// How long the replica needed to drain the residual lag after the
    /// last commit, milliseconds.
    pub catch_up_ms: f64,
    /// Median sampled lag (LSNs behind) while commits flowed.
    pub lag_p50: u64,
    /// Worst sampled lag while commits flowed.
    pub lag_max: u64,
    /// Lag after catch-up (must be 0 for a healthy stream).
    pub final_lag: u64,
}

/// Run the replication bench. The WAL lives in a temporary file and is
/// removed afterwards; only the timings survive.
pub fn run_repl_bench(config: &ReplBenchConfig) -> ReplBenchReport {
    use crate::metrics::WalMetrics;
    use crate::repl::{self, ReplicaState, Replicator};
    use crate::wal::Wal;
    use std::sync::atomic::{AtomicBool, Ordering};

    let match_config = MatchConfig::default();
    // One corpus: the head seeds the primary (and travels in the
    // snapshot), the tail becomes the streamed commits. Every entry is
    // a real G2P-transformable name, so commits never fail validation.
    let dataset = build_dataset(&match_config, config.dataset_size + config.ops);
    let ops = config.ops.min(dataset.len().saturating_sub(1)).max(1);
    let (base, tail) = dataset.split_at(dataset.len() - ops);

    let primary = Arc::new(MatchService::new(ServiceConfig {
        match_config: match_config.clone(),
        shards: config.shards,
        cache_capacity: config.cache_capacity,
    }));
    primary.extend_transformed(base.to_vec());
    primary.build_all(3, QgramMode::Strict);

    let wal_path =
        std::env::temp_dir().join(format!("lexequal_repl_bench_{}.wal", std::process::id()));
    std::fs::remove_file(&wal_path).ok();
    let metrics = Arc::new(WalMetrics::default());
    let (wal, _) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open bench wal");
    let replicator = Replicator::new(wal, metrics);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind repl listener");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let shutdown = ShutdownSignal::new().expect("shutdown signal");
    let accept = {
        let primary = Arc::clone(&primary);
        let replicator = Arc::clone(&replicator);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            repl::serve_repl_listener(listener, primary, replicator, shutdown)
        })
    };

    // Fresh replica: HELLO 0 forces the full snapshot transfer.
    let state = Arc::new(ReplicaState::new(addr.clone()));
    let t_sync = Instant::now();
    let (replica, stream, reader) = repl::initial_sync(
        &addr,
        &match_config,
        Some(config.shards),
        config.cache_capacity,
        &state,
        &shutdown,
    )
    .expect("initial sync");
    let sync_secs = t_sync.elapsed().as_secs_f64();
    let replica = Arc::new(replica);
    let apply = {
        let replica = Arc::clone(&replica);
        let state = Arc::clone(&state);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            repl::run_replica(&replica, &state, Some((stream, reader)), &shutdown)
        })
    };

    // Sample the replica's lag while commits flow.
    let sampling = Arc::new(AtomicBool::new(true));
    let sampler = {
        let state = Arc::clone(&state);
        let sampling = Arc::clone(&sampling);
        std::thread::spawn(move || {
            let mut samples = Vec::new();
            while sampling.load(Ordering::Acquire) {
                samples.push(state.lag());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            samples
        })
    };

    let t_commit = Instant::now();
    for entry in tail {
        replicator
            .commit_add(&primary, &entry.text, entry.language)
            .expect("bench commit");
    }
    let commit_secs = t_commit.elapsed().as_secs_f64();

    // Drain: the stream is healthy only if lag really reaches zero.
    let head = replicator.head();
    let t_drain = Instant::now();
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    while state.applied() < head {
        assert!(Instant::now() < deadline, "replica never caught up");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let catch_up_ms = t_drain.elapsed().as_secs_f64() * 1_000.0;
    let apply_secs = t_commit.elapsed().as_secs_f64();
    sampling.store(false, Ordering::Release);
    let mut samples = sampler.join().expect("lag sampler");
    samples.sort_unstable();
    let final_lag = state.lag();

    shutdown.trigger();
    replicator.stop_and_join();
    let _ = apply.join().expect("apply thread");
    let _ = accept.join().expect("accept thread");
    std::fs::remove_file(&wal_path).ok();

    ReplBenchReport {
        dataset_size: base.len(),
        ops,
        shards: config.shards,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        sync_secs,
        commit_ops_per_sec: ops as f64 / commit_secs.max(f64::EPSILON),
        apply_ops_per_sec: ops as f64 / apply_secs.max(f64::EPSILON),
        catch_up_ms,
        lag_p50: samples.get(samples.len() / 2).copied().unwrap_or(0),
        lag_max: samples.last().copied().unwrap_or(0),
        final_lag,
    }
}

/// Render the replication bench report as JSON.
pub fn repl_bench_to_json(report: &ReplBenchReport) -> Json {
    Json::Obj(vec![
        (
            "dataset_size".to_owned(),
            Json::Int(report.dataset_size as i64),
        ),
        ("ops".to_owned(), Json::Int(report.ops as i64)),
        ("shards".to_owned(), Json::Int(report.shards as i64)),
        (
            "available_parallelism".to_owned(),
            Json::Int(report.available_parallelism as i64),
        ),
        ("sync_secs".to_owned(), Json::Float(report.sync_secs)),
        (
            "commit_ops_per_sec".to_owned(),
            Json::Float(report.commit_ops_per_sec),
        ),
        (
            "apply_ops_per_sec".to_owned(),
            Json::Float(report.apply_ops_per_sec),
        ),
        ("catch_up_ms".to_owned(), Json::Float(report.catch_up_ms)),
        ("lag_p50".to_owned(), Json::Int(report.lag_p50 as i64)),
        ("lag_max".to_owned(), Json::Int(report.lag_max as i64)),
        ("final_lag".to_owned(), Json::Int(report.final_lag as i64)),
    ])
}

/// Write the replication bench report to `path` as JSON.
pub fn write_repl_bench_json(
    report: &ReplBenchReport,
    path: &std::path::Path,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, repl_bench_to_json(report).render())
}

// ---------------------------------------------------------------------------
// WAL compaction soak (`--compaction-bench`)
// ---------------------------------------------------------------------------

/// What the compaction soak measures.
#[derive(Debug, Clone)]
pub struct CompactionBenchConfig {
    /// Names preloaded into the primary before the replica attaches.
    pub dataset_size: usize,
    /// Mutations committed through the WAL while the compactor runs.
    pub ops: usize,
    /// Byte threshold handed to the background compactor — kept tiny so
    /// the soak crosses it many times.
    pub wal_max_bytes: u64,
    /// Store shards on both sides.
    pub shards: usize,
    /// Transform-cache capacity.
    pub cache_capacity: usize,
    /// Lookups in the primary-vs-replica verification battery.
    pub battery: usize,
}

impl Default for CompactionBenchConfig {
    fn default() -> Self {
        CompactionBenchConfig {
            dataset_size: 3_000,
            ops: 2_000,
            wal_max_bytes: 32 * 1024,
            shards: 2,
            cache_capacity: 4096,
            battery: 64,
        }
    }
}

/// The compaction soak report: a WAL-bounded primary with a live
/// streaming replica, committing through several checkpoint-and-truncate
/// cycles and then proving the replica converged (lag 0, battery of
/// identical lookups).
#[derive(Debug, Clone)]
pub struct CompactionBenchReport {
    /// Names in the initial snapshot transfer.
    pub dataset_size: usize,
    /// Streamed mutations committed.
    pub ops: usize,
    /// Compactor byte threshold.
    pub wal_max_bytes: u64,
    /// Store shards on both sides.
    pub shards: usize,
    /// Checkpoint-and-truncate cycles that actually dropped records.
    pub compactions: u64,
    /// LSN the last durable checkpoint covers.
    pub checkpoint_lsn: u64,
    /// Snapshot re-seeds served (0 here: the replica never lapses).
    pub reseeds: u64,
    /// Total record bytes appended over the run — what an unbounded log
    /// would have held (magic excluded).
    pub bytes_appended: u64,
    /// Largest sampled live log size, bytes.
    pub wal_bytes_peak: u64,
    /// Live log size after the final cycle, bytes.
    pub wal_bytes_final: u64,
    /// Primary-side committed mutations per second while compaction
    /// cycles ran underneath.
    pub commit_ops_per_sec: f64,
    /// Replica lag after the drain (must be 0).
    pub final_lag: u64,
    /// Lookups compared primary-vs-replica.
    pub battery_queries: usize,
    /// Compared lookups whose id sets differed (must be 0).
    pub battery_mismatches: usize,
}

/// Run the compaction soak. The WAL and its checkpoint live in
/// temporary files and are removed afterwards; only the numbers survive.
pub fn run_compaction_bench(config: &CompactionBenchConfig) -> CompactionBenchReport {
    use crate::metrics::WalMetrics;
    use crate::repl::{self, CompactionPolicy, ReplicaState, Replicator};
    use crate::wal::Wal;
    use std::sync::atomic::{AtomicBool, Ordering};

    let match_config = MatchConfig::default();
    let dataset = build_dataset(&match_config, config.dataset_size + config.ops);
    let ops = config.ops.min(dataset.len().saturating_sub(1)).max(1);
    let (base, tail) = dataset.split_at(dataset.len() - ops);

    let primary = Arc::new(MatchService::new(ServiceConfig {
        match_config: match_config.clone(),
        shards: config.shards,
        cache_capacity: config.cache_capacity,
    }));
    primary.extend_transformed(base.to_vec());
    primary.build_all(3, QgramMode::Strict);

    let wal_path = std::env::temp_dir().join(format!(
        "lexequal_compaction_bench_{}.wal",
        std::process::id()
    ));
    let checkpoint_path = wal_path.with_extension("wal.checkpoint");
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&checkpoint_path).ok();
    let metrics = Arc::new(WalMetrics::default());
    let (wal, _) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open bench wal");
    let replicator = Replicator::new(wal, metrics);
    replicator.set_compaction_policy(CompactionPolicy {
        checkpoint: Some(checkpoint_path.clone()),
        max_bytes: Some(config.wal_max_bytes),
        grace: std::time::Duration::from_secs(10),
    });

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind repl listener");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let shutdown = ShutdownSignal::new().expect("shutdown signal");
    let accept = {
        let primary = Arc::clone(&primary);
        let replicator = Arc::clone(&replicator);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            repl::serve_repl_listener(listener, primary, replicator, shutdown)
        })
    };
    replicator.adopt_thread(repl::spawn_compactor(
        Arc::clone(&replicator),
        Arc::clone(&primary),
        shutdown.clone(),
    ));

    let state = Arc::new(ReplicaState::new(addr.clone()));
    let (replica, stream, reader) = repl::initial_sync(
        &addr,
        &match_config,
        Some(config.shards),
        config.cache_capacity,
        &state,
        &shutdown,
    )
    .expect("initial sync");
    let replica = Arc::new(replica);
    let apply = {
        let replica = Arc::clone(&replica);
        let state = Arc::clone(&state);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            repl::run_replica(&replica, &state, Some((stream, reader)), &shutdown)
        })
    };

    // Sample the live log size while commits and compaction cycles race:
    // the peak is the bound the soak proves.
    let sampling = Arc::new(AtomicBool::new(true));
    let sampler = {
        let replicator = Arc::clone(&replicator);
        let sampling = Arc::clone(&sampling);
        std::thread::spawn(move || {
            let mut peak = 0u64;
            while sampling.load(Ordering::Acquire) {
                peak = peak.max(replicator.live_bytes());
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            peak
        })
    };

    let t_commit = Instant::now();
    for entry in tail {
        replicator
            .commit_add(&primary, &entry.text, entry.language)
            .expect("bench commit");
    }
    let commit_secs = t_commit.elapsed().as_secs_f64();

    // Drain: the replica must reach the head even though the log prefix
    // it streamed from kept disappearing underneath it.
    let head = replicator.head();
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    while state.applied() < head {
        assert!(
            Instant::now() < deadline,
            "replica never caught up past compaction"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Let the compactor finish the cycle for the final burst before the
    // peak/final byte readings settle.
    let settle = Instant::now() + std::time::Duration::from_secs(5);
    while replicator.live_bytes() > config.wal_max_bytes && Instant::now() < settle {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    sampling.store(false, Ordering::Release);
    let wal_bytes_peak = sampler.join().expect("byte sampler");
    let final_lag = state.lag();

    // Converged means *answers*, not just LSNs: the same battery of
    // lookups must return the same ids on both sides.
    let battery = config.battery.min(dataset.len()).max(1);
    let stride = (dataset.len() / battery).max(1);
    let mut battery_queries = 0usize;
    let mut battery_mismatches = 0usize;
    for entry in dataset.iter().step_by(stride).take(battery) {
        let req = MatchRequest::new(&entry.text, entry.language);
        let a = match primary.lookup(&req) {
            MatchOutcome::Matches { ids, .. } => ids,
            other => panic!("primary battery lookup failed: {other:?}"),
        };
        let b = match replica.lookup(&req) {
            MatchOutcome::Matches { ids, .. } => ids,
            other => panic!("replica battery lookup failed: {other:?}"),
        };
        battery_queries += 1;
        if a != b {
            battery_mismatches += 1;
        }
    }

    let report = CompactionBenchReport {
        dataset_size: base.len(),
        ops,
        wal_max_bytes: config.wal_max_bytes,
        shards: config.shards,
        compactions: replicator.compactions(),
        checkpoint_lsn: replicator.checkpoint_lsn(),
        reseeds: replicator.reseeds(),
        bytes_appended: replicator.wal_stats().bytes,
        wal_bytes_peak,
        wal_bytes_final: replicator.live_bytes(),
        commit_ops_per_sec: ops as f64 / commit_secs.max(f64::EPSILON),
        final_lag,
        battery_queries,
        battery_mismatches,
    };

    shutdown.trigger();
    replicator.stop_and_join();
    let _ = apply.join().expect("apply thread");
    let _ = accept.join().expect("accept thread");
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&checkpoint_path).ok();
    report
}

/// Render the compaction soak report as JSON.
pub fn compaction_bench_to_json(report: &CompactionBenchReport) -> Json {
    Json::Obj(vec![
        (
            "dataset_size".to_owned(),
            Json::Int(report.dataset_size as i64),
        ),
        ("ops".to_owned(), Json::Int(report.ops as i64)),
        (
            "wal_max_bytes".to_owned(),
            Json::Int(report.wal_max_bytes as i64),
        ),
        ("shards".to_owned(), Json::Int(report.shards as i64)),
        (
            "compactions".to_owned(),
            Json::Int(report.compactions as i64),
        ),
        (
            "checkpoint_lsn".to_owned(),
            Json::Int(report.checkpoint_lsn as i64),
        ),
        ("reseeds".to_owned(), Json::Int(report.reseeds as i64)),
        (
            "bytes_appended".to_owned(),
            Json::Int(report.bytes_appended as i64),
        ),
        (
            "wal_bytes_peak".to_owned(),
            Json::Int(report.wal_bytes_peak as i64),
        ),
        (
            "wal_bytes_final".to_owned(),
            Json::Int(report.wal_bytes_final as i64),
        ),
        (
            "commit_ops_per_sec".to_owned(),
            Json::Float(report.commit_ops_per_sec),
        ),
        ("final_lag".to_owned(), Json::Int(report.final_lag as i64)),
        (
            "battery_queries".to_owned(),
            Json::Int(report.battery_queries as i64),
        ),
        (
            "battery_mismatches".to_owned(),
            Json::Int(report.battery_mismatches as i64),
        ),
    ])
}

/// Write the compaction soak report to `path` as JSON.
pub fn write_compaction_bench_json(
    report: &CompactionBenchReport,
    path: &std::path::Path,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, compaction_bench_to_json(report).render())
}

// ---------------------------------------------------------------------------
// Untagged-query bench (`--untagged-bench`)
// ---------------------------------------------------------------------------

/// What the untagged (mixed-script) bench measures.
#[derive(Debug, Clone)]
pub struct UntaggedBenchConfig {
    /// Target synthetic lexicon size.
    pub dataset_size: usize,
    /// Store shards.
    pub shards: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Lookups each client performs.
    pub ops_per_client: usize,
    /// Percentage of ops issued *untagged* (`MATCH -` semantics), 0–100.
    pub untagged_pct: usize,
    /// Access path under test.
    pub method: SearchMethod,
    /// Match threshold for every lookup.
    pub threshold: f64,
    /// Transform-cache capacity.
    pub cache_capacity: usize,
    /// Number of distinct hot queries in the shared pool.
    pub query_pool: usize,
}

impl Default for UntaggedBenchConfig {
    fn default() -> Self {
        UntaggedBenchConfig {
            dataset_size: 20_000,
            shards: 2,
            clients: 4,
            ops_per_client: 250,
            untagged_pct: 50,
            method: SearchMethod::Qgram,
            threshold: 0.35,
            cache_capacity: 4096,
            query_pool: 64,
        }
    }
}

/// The untagged bench report: tagged-vs-untagged latency side by side,
/// plus the router's own counters (fan-out width, dedupe, NORESOURCE).
#[derive(Debug, Clone)]
pub struct UntaggedBenchReport {
    /// Actual number of names loaded.
    pub dataset_size: usize,
    /// Host `available_parallelism`.
    pub available_parallelism: usize,
    /// Store shards used.
    pub shards: usize,
    /// Client threads used.
    pub clients: usize,
    /// Configured untagged share, percent.
    pub untagged_pct: usize,
    /// Tagged lookups performed.
    pub tagged_ops: usize,
    /// Untagged lookups performed.
    pub untagged_ops: usize,
    /// Wall-clock seconds for the measurement window.
    pub elapsed_secs: f64,
    /// All lookups per second (both kinds).
    pub throughput: f64,
    /// Tagged median / p95 per-op latency, microseconds.
    pub tagged_p50_us: f64,
    /// Tagged 95th percentile, microseconds.
    pub tagged_p95_us: f64,
    /// Untagged median latency, microseconds — the fan-out overhead shows
    /// up as the gap against `tagged_p50_us`.
    pub untagged_p50_us: f64,
    /// Untagged 95th percentile, microseconds.
    pub untagged_p95_us: f64,
    /// Final untagged-subsystem counters from the service.
    pub untagged: crate::metrics::UntaggedStats,
}

/// Fixed foreign-script probes folded into the untagged stream so the
/// bench also exercises single-converter routing (Cyrillic, Greek,
/// Kana) and the `NORESOURCE` path (Hangul, Thai) — the synthetic
/// lexicon alone is Latin/Devanagari/Tamil.
const UNTAGGED_PROBES: [&str; 5] = ["Неру", "Νερού", "ネルー", "네루", "เนห์รู"];

/// Run the mixed tagged/untagged workload against one service.
pub fn run_untagged_bench(config: &UntaggedBenchConfig) -> UntaggedBenchReport {
    let dataset = build_dataset(&MatchConfig::default(), config.dataset_size);
    let service = Arc::new(MatchService::new(ServiceConfig {
        match_config: MatchConfig::default(),
        shards: config.shards,
        cache_capacity: config.cache_capacity,
    }));
    service.extend_transformed(dataset.to_vec());
    match config.method {
        SearchMethod::Scan => {}
        SearchMethod::Qgram => service.build(BuildSpec::Qgram {
            q: 3,
            mode: QgramMode::Strict,
        }),
        SearchMethod::PhoneticIndex => service.build(BuildSpec::PhoneticIndex),
        SearchMethod::BkTree => service.build(BuildSpec::BkTree),
    }

    let stride = (dataset.len() / config.query_pool.max(1)).max(1);
    let pool: Vec<(String, lexequal::Language)> = dataset
        .iter()
        .step_by(stride)
        .take(config.query_pool.max(1))
        .map(|e| (e.text.clone(), e.language))
        .collect();

    let start = Instant::now();
    let mut tagged_ns: Vec<u64> = Vec::new();
    let mut untagged_ns: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let service = Arc::clone(&service);
                let pool = &pool;
                scope.spawn(move || {
                    let mut tagged = Vec::new();
                    let mut untagged = Vec::new();
                    let mut u = 0usize; // untagged ops issued so far
                    for i in 0..config.ops_per_client {
                        let (text, language) = &pool[(c + i) % pool.len()];
                        // Deterministic interleave at the configured
                        // ratio, exact at any op count (Bresenham).
                        let k = c + i;
                        if (k + 1) * config.untagged_pct / 100 > k * config.untagged_pct / 100 {
                            // Every 4th untagged op probes a foreign
                            // script instead of a stored name, cycling
                            // the whole probe set.
                            let text = if u % 4 == 3 {
                                UNTAGGED_PROBES[(c + u / 4) % UNTAGGED_PROBES.len()].to_owned()
                            } else {
                                text.clone()
                            };
                            u += 1;
                            let req = AutoMatchRequest {
                                text,
                                threshold: Some(config.threshold),
                                method: Some(config.method),
                            };
                            let t = Instant::now();
                            let _ = service.lookup_auto(&req);
                            untagged.push(t.elapsed().as_nanos() as u64);
                        } else {
                            let req = MatchRequest {
                                text: text.clone(),
                                language: *language,
                                threshold: Some(config.threshold),
                                method: Some(config.method),
                            };
                            let t = Instant::now();
                            let _ = service.lookup(&req);
                            tagged.push(t.elapsed().as_nanos() as u64);
                        }
                    }
                    (tagged, untagged)
                })
            })
            .collect();
        for h in handles {
            let (t, u) = h.join().expect("client thread");
            tagged_ns.extend(t);
            untagged_ns.extend(u);
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    tagged_ns.sort_unstable();
    untagged_ns.sort_unstable();
    let total = tagged_ns.len() + untagged_ns.len();

    UntaggedBenchReport {
        dataset_size: dataset.len(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        shards: config.shards,
        clients: config.clients,
        untagged_pct: config.untagged_pct,
        tagged_ops: tagged_ns.len(),
        untagged_ops: untagged_ns.len(),
        elapsed_secs: elapsed,
        throughput: total as f64 / elapsed.max(f64::EPSILON),
        tagged_p50_us: percentile_us(&tagged_ns, 0.50),
        tagged_p95_us: percentile_us(&tagged_ns, 0.95),
        untagged_p50_us: percentile_us(&untagged_ns, 0.50),
        untagged_p95_us: percentile_us(&untagged_ns, 0.95),
        untagged: service.stats().untagged,
    }
}

/// Render the untagged bench report as JSON.
pub fn untagged_bench_to_json(report: &UntaggedBenchReport) -> Json {
    let per_script: Vec<(String, Json)> = lexequal_g2p::Script::ALL
        .iter()
        .filter(|s| report.untagged.per_script[s.index()] > 0)
        .map(|s| {
            (
                s.name().to_owned(),
                Json::Int(report.untagged.per_script[s.index()] as i64),
            )
        })
        .collect();
    Json::Obj(vec![
        (
            "dataset_size".to_owned(),
            Json::Int(report.dataset_size as i64),
        ),
        (
            "available_parallelism".to_owned(),
            Json::Int(report.available_parallelism as i64),
        ),
        ("shards".to_owned(), Json::Int(report.shards as i64)),
        ("clients".to_owned(), Json::Int(report.clients as i64)),
        (
            "untagged_pct".to_owned(),
            Json::Int(report.untagged_pct as i64),
        ),
        ("tagged_ops".to_owned(), Json::Int(report.tagged_ops as i64)),
        (
            "untagged_ops".to_owned(),
            Json::Int(report.untagged_ops as i64),
        ),
        ("elapsed_secs".to_owned(), Json::Float(report.elapsed_secs)),
        ("throughput".to_owned(), Json::Float(report.throughput)),
        (
            "tagged_p50_us".to_owned(),
            Json::Float(report.tagged_p50_us),
        ),
        (
            "tagged_p95_us".to_owned(),
            Json::Float(report.tagged_p95_us),
        ),
        (
            "untagged_p50_us".to_owned(),
            Json::Float(report.untagged_p50_us),
        ),
        (
            "untagged_p95_us".to_owned(),
            Json::Float(report.untagged_p95_us),
        ),
        (
            "untagged_requests".to_owned(),
            Json::Int(report.untagged.requests as i64),
        ),
        (
            "fanout_width_sum".to_owned(),
            Json::Int(report.untagged.fanout_width_sum as i64),
        ),
        (
            "fanout_width_max".to_owned(),
            Json::Int(report.untagged.fanout_width_max as i64),
        ),
        (
            "dedup_hits".to_owned(),
            Json::Int(report.untagged.dedup_hits as i64),
        ),
        (
            "no_resource".to_owned(),
            Json::Int(report.untagged.no_resource as i64),
        ),
        ("per_script".to_owned(), Json::Obj(per_script)),
    ])
}

/// Write the untagged bench report to `path` as JSON.
pub fn write_untagged_bench_json(
    report: &UntaggedBenchReport,
    path: &std::path::Path,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, untagged_bench_to_json(report).render())
}

// ---------------------------------------------------------------------------
// Embedding prefilter A/B (`--prefilter-bench`)
// ---------------------------------------------------------------------------

/// What the embedding-prefilter A/B bench measures.
#[derive(Debug, Clone)]
pub struct PrefilterBenchConfig {
    /// Target synthetic lexicon size.
    pub dataset_size: usize,
    /// Distinct queries driven through each store (sampled from the
    /// stored names, so every query has at least one true match).
    pub queries: usize,
    /// Match thresholds to sweep (the paper's operating range).
    pub thresholds: Vec<f64>,
    /// Store shards.
    pub shards: usize,
    /// Transform-cache capacity.
    pub cache_capacity: usize,
}

impl Default for PrefilterBenchConfig {
    fn default() -> Self {
        PrefilterBenchConfig {
            dataset_size: 20_000,
            queries: 64,
            thresholds: vec![0.25, 0.35, 0.45],
            shards: 2,
            cache_capacity: 4096,
        }
    }
}

/// One (cost model × threshold) cell: the same scan-path workload run
/// with the embedding screen on and off, answers asserted identical.
#[derive(Debug, Clone)]
pub struct PrefilterCell {
    /// `"clustered"` or `"feature"`.
    pub cost_model: &'static str,
    /// Match threshold.
    pub threshold: f64,
    /// Verified pairs per side (queries × dataset on the scan path).
    pub pairs: u64,
    /// Pairs the screen examined (candidate embedding present, scale
    /// sound): `embed_accept + embed_reject`.
    pub embed_examined: u64,
    /// Pairs the screen rejected before any Myers screen.
    pub embed_reject: u64,
    /// `embed_reject / embed_examined` (0 when nothing was examined).
    pub reject_rate: f64,
    /// Full-DP count with the screen on / off — the screen's value is
    /// the work it keeps out of the later stages.
    pub full_dp_on: u64,
    /// Full-DP count with the screen off.
    pub full_dp_off: u64,
    /// Wall-clock seconds for the screened side.
    pub elapsed_on_secs: f64,
    /// Wall-clock seconds for the unscreened side.
    pub elapsed_off_secs: f64,
    /// Total matching ids returned (identical on both sides).
    pub matches: u64,
}

/// The prefilter bench report.
#[derive(Debug, Clone)]
pub struct PrefilterBenchReport {
    /// Actual number of names loaded.
    pub dataset_size: usize,
    /// Queries driven per cell per side.
    pub queries: usize,
    /// Host `available_parallelism`.
    pub available_parallelism: usize,
    /// SIMD backend the verification kernel dispatched to.
    pub simd_level: &'static str,
    /// One cell per (cost model × threshold).
    pub cells: Vec<PrefilterCell>,
}

/// Drive the same scan-path workload through a screened and an
/// unscreened store for each cost model and threshold, asserting
/// bit-identical answers and reporting what the screen disposed of.
///
/// The scan path is deliberate: it verifies every (query, name) pair,
/// which is exactly the verify-bound regime the prefilter exists for —
/// accelerated paths shrink the candidate set before the kernel ever
/// runs, understating the screen's effect.
///
/// # Panics
///
/// Panics if the screened and unscreened stores ever disagree on a
/// query's ids — the screen must be invisible in answers.
pub fn run_prefilter_bench(config: &PrefilterBenchConfig) -> PrefilterBenchReport {
    let dataset = build_dataset(&MatchConfig::default(), config.dataset_size);
    let stride = (dataset.len() / config.queries.max(1)).max(1);
    let pool: Vec<(String, lexequal::Language)> = dataset
        .iter()
        .step_by(stride)
        .take(config.queries.max(1))
        .map(|e| (e.text.clone(), e.language))
        .collect();

    let mut cells = Vec::new();
    for kind in [
        lexequal::CostModelKind::Clustered,
        lexequal::CostModelKind::Feature,
    ] {
        let model_name = match kind {
            lexequal::CostModelKind::Clustered => "clustered",
            lexequal::CostModelKind::Feature => "feature",
        };
        let build = |screen: bool| {
            let service = MatchService::new(ServiceConfig {
                match_config: MatchConfig::default()
                    .with_cost_model(kind)
                    .with_embed_screen(screen),
                shards: config.shards,
                cache_capacity: config.cache_capacity,
            });
            service.extend_transformed(dataset.to_vec());
            service
        };
        let on = build(true);
        let off = build(false);

        for &threshold in &config.thresholds {
            let drive = |service: &MatchService| {
                let start = Instant::now();
                let mut matches = 0u64;
                let mut ids: Vec<Vec<u32>> = Vec::with_capacity(pool.len());
                for (text, language) in &pool {
                    let out = service.lookup(&MatchRequest {
                        text: text.clone(),
                        language: *language,
                        threshold: Some(threshold),
                        method: Some(SearchMethod::Scan),
                    });
                    match out {
                        MatchOutcome::Matches { ids: hit, .. } => {
                            matches += hit.len() as u64;
                            ids.push(hit);
                        }
                        other => panic!("scan lookup degraded: {other:?}"),
                    }
                }
                (ids, matches, start.elapsed().as_secs_f64())
            };
            let before_on = on.store().screen_totals();
            let (ids_on, matches_on, elapsed_on) = drive(&on);
            let after_on = on.store().screen_totals();
            let before_off = off.store().screen_totals();
            let (ids_off, matches_off, elapsed_off) = drive(&off);
            let after_off = off.store().screen_totals();

            assert_eq!(
                ids_on, ids_off,
                "screen changed answers: model={model_name} e={threshold}"
            );
            let embed_reject = after_on.embed_reject - before_on.embed_reject;
            let embed_examined = embed_reject + (after_on.embed_accept - before_on.embed_accept);
            assert_eq!(
                after_off.embed_accept + after_off.embed_reject + after_off.embed_bypass,
                before_off.embed_accept + before_off.embed_reject + before_off.embed_bypass,
                "unscreened store counted embed screen work"
            );
            cells.push(PrefilterCell {
                cost_model: model_name,
                threshold,
                pairs: (pool.len() * dataset.len()) as u64,
                embed_examined,
                embed_reject,
                reject_rate: if embed_examined > 0 {
                    embed_reject as f64 / embed_examined as f64
                } else {
                    0.0
                },
                full_dp_on: after_on.full_dp - before_on.full_dp,
                full_dp_off: after_off.full_dp - before_off.full_dp,
                elapsed_on_secs: elapsed_on,
                elapsed_off_secs: elapsed_off,
                matches: {
                    assert_eq!(matches_on, matches_off);
                    matches_on
                },
            });
        }
    }

    PrefilterBenchReport {
        dataset_size: dataset.len(),
        queries: pool.len(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        simd_level: lexequal::simd_level().name(),
        cells,
    }
}

/// Render the prefilter bench report as JSON.
pub fn prefilter_bench_to_json(report: &PrefilterBenchReport) -> Json {
    Json::Obj(vec![
        (
            "dataset_size".to_owned(),
            Json::Int(report.dataset_size as i64),
        ),
        ("queries".to_owned(), Json::Int(report.queries as i64)),
        (
            "available_parallelism".to_owned(),
            Json::Int(report.available_parallelism as i64),
        ),
        (
            "simd_level".to_owned(),
            Json::Str(report.simd_level.to_owned()),
        ),
        (
            "cells".to_owned(),
            Json::Arr(
                report
                    .cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("cost_model".to_owned(), Json::Str(c.cost_model.to_owned())),
                            ("threshold".to_owned(), Json::Float(c.threshold)),
                            ("pairs".to_owned(), Json::Int(c.pairs as i64)),
                            (
                                "embed_examined".to_owned(),
                                Json::Int(c.embed_examined as i64),
                            ),
                            ("embed_reject".to_owned(), Json::Int(c.embed_reject as i64)),
                            ("reject_rate".to_owned(), Json::Float(c.reject_rate)),
                            ("full_dp_on".to_owned(), Json::Int(c.full_dp_on as i64)),
                            ("full_dp_off".to_owned(), Json::Int(c.full_dp_off as i64)),
                            ("elapsed_on_secs".to_owned(), Json::Float(c.elapsed_on_secs)),
                            (
                                "elapsed_off_secs".to_owned(),
                                Json::Float(c.elapsed_off_secs),
                            ),
                            ("matches".to_owned(), Json::Int(c.matches as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Write the prefilter bench report to `path` as JSON.
pub fn write_prefilter_bench_json(
    report: &PrefilterBenchReport,
    path: &std::path::Path,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, prefilter_bench_to_json(report).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_run_produces_a_sane_report() {
        let config = LoadgenConfig {
            dataset_size: 300,
            clients: 2,
            ops_per_client: 20,
            shard_counts: vec![1, 2],
            method: SearchMethod::PhoneticIndex,
            threshold: 0.35,
            cache_capacity: 64,
            query_pool: 8,
        };
        let report = run(&config);
        assert!(report.dataset_size >= 100, "{}", report.dataset_size);
        assert_eq!(report.runs.len(), 2);
        for r in &report.runs {
            assert_eq!(r.total_ops, 40);
            assert!(r.throughput > 0.0);
            assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
            // 8 hot queries over 40 ops: the cache must be hitting.
            assert!(r.cache_hits > 0, "hits={}", r.cache_hits);
            // Every pool query is a stored name, so matches come back.
            assert!(r.matches_returned > 0);
        }
        let json = to_json(&report).render();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("runs").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn a_tiny_net_run_covers_both_modes() {
        let config = NetConfig {
            dataset_size: 300,
            connections: vec![8],
            pipeline: 4,
            ops_per_conn: 8,
            client_threads: 2,
            modes: vec![ServeMode::Threaded, ServeMode::Evented],
            workers: 2,
            query_pool: 8,
            ..NetConfig::default()
        };
        let report = run_net(&config);
        assert_eq!(report.runs.len(), 2);
        for r in &report.runs {
            assert_eq!(r.total_ops, 8 * 8, "{:?}", r.mode);
            assert!(r.throughput > 0.0);
            assert_eq!(r.conns_peak, 8, "{:?}", r.mode);
            // Evented connections really pipeline; threaded handlers
            // consume one line at a time (depth observed as 1).
            if r.mode == ServeMode::Evented {
                assert!(r.pipeline_max >= 2, "pipeline_max={}", r.pipeline_max);
            }
        }
        let json = net_to_json(&report).render();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("runs").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn snapshot_bench_produces_a_sane_report() {
        let report = run_snapshot_bench(&SnapshotBenchConfig {
            dataset_size: 300,
            shards: 2,
            cache_capacity: 64,
        });
        assert!(report.dataset_size >= 100, "{}", report.dataset_size);
        assert_eq!(report.shards, 2);
        assert!(report.snapshot_bytes > 0);
        assert!(report.build_cold_start_secs > 0.0);
        assert!(report.snapshot_cold_start_secs > 0.0);
        assert!(report.g2p_secs <= report.build_cold_start_secs);
        let json = snapshot_bench_to_json(&report).render();
        let parsed = Json::parse(&json).unwrap();
        assert!(parsed.get("cold_start_speedup").is_some());
    }

    #[test]
    fn a_tiny_repl_bench_converges() {
        let report = run_repl_bench(&ReplBenchConfig {
            dataset_size: 300,
            ops: 40,
            shards: 2,
            cache_capacity: 64,
        });
        assert_eq!(report.ops, 40);
        assert_eq!(report.final_lag, 0);
        assert!(report.sync_secs > 0.0);
        assert!(report.commit_ops_per_sec > 0.0);
        assert!(report.apply_ops_per_sec > 0.0);
        let json = repl_bench_to_json(&report).render();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("final_lag").and_then(Json::as_i64),
            Some(0),
            "{json}"
        );
        assert!(parsed.get("available_parallelism").is_some());
    }

    #[test]
    fn a_tiny_untagged_bench_exercises_the_router() {
        let report = run_untagged_bench(&UntaggedBenchConfig {
            dataset_size: 300,
            shards: 2,
            clients: 2,
            ops_per_client: 40,
            untagged_pct: 50,
            method: SearchMethod::Qgram,
            threshold: 0.35,
            cache_capacity: 64,
            query_pool: 8,
        });
        assert_eq!(report.tagged_ops + report.untagged_ops, 80);
        // The deterministic interleave puts ops on both sides at 50%.
        assert!(report.tagged_ops > 0 && report.untagged_ops > 0);
        assert_eq!(report.untagged.requests, report.untagged_ops as u64);
        // Latin untagged lookups fan out, so width outpaces requests.
        assert!(
            report.untagged.fanout_width_sum >= report.untagged.requests,
            "sum={} requests={}",
            report.untagged.fanout_width_sum,
            report.untagged.requests
        );
        assert!(report.untagged.fanout_width_max >= 1);
        // Foreign-script probes hit Hangul/Thai at least once over 40
        // untagged ops (every 16th op cycles through 5 probes).
        assert!(report.untagged.no_resource > 0 || report.untagged_ops < 16);
        let json = untagged_bench_to_json(&report).render();
        let parsed = Json::parse(&json).unwrap();
        assert!(parsed.get("fanout_width_sum").is_some(), "{json}");
        assert!(parsed.get("per_script").is_some(), "{json}");
    }

    #[test]
    fn a_tiny_prefilter_bench_rejects_without_changing_answers() {
        let report = run_prefilter_bench(&PrefilterBenchConfig {
            dataset_size: 600,
            queries: 12,
            thresholds: vec![0.25],
            shards: 2,
            cache_capacity: 64,
        });
        assert_eq!(report.cells.len(), 2, "two cost models, one threshold");
        for c in &report.cells {
            // run_prefilter_bench itself asserts ids-identical; here we
            // pin that the screen actually ran and never added DP work.
            assert!(c.embed_examined > 0, "{c:?}");
            assert!(c.reject_rate >= 0.0 && c.reject_rate <= 1.0, "{c:?}");
            assert!(c.full_dp_on <= c.full_dp_off, "{c:?}");
            assert!(c.matches > 0, "{c:?}");
        }
        // The feature-graded model's tighter conservative scale must
        // actually reject at the paper's strict threshold. (The
        // clustered model's scale is looser — its intra-cluster
        // substitutions are cheap but move the embedding a lot — so its
        // reject rate is near zero on length-similar survivors and is
        // not asserted here.)
        let feature = report
            .cells
            .iter()
            .find(|c| c.cost_model == "feature")
            .expect("feature cell present");
        assert!(feature.embed_reject > 0, "{feature:?}");
        assert!(feature.full_dp_on < feature.full_dp_off, "{feature:?}");
        let json = prefilter_bench_to_json(&report).render();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("cells").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert!(parsed.get("simd_level").is_some(), "{json}");
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_us(&ns, 0.50), 50.0);
        assert_eq!(percentile_us(&ns, 0.95), 95.0);
        assert_eq!(percentile_us(&ns, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }
}
