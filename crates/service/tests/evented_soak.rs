//! Soak test for the evented daemon: 1024 concurrent TCP connections,
//! all pipelining windows of requests at once, served by a fixed thread
//! count (one event loop + a small verify pool — not one thread per
//! connection). Every response must be byte-identical to what an
//! identically built [`MatchService`] answers directly, proving the
//! readiness loop's framing, worker handoff and in-order response
//! reassembly change nothing about the verdicts.

use lexequal_service::event_loop::{serve_evented, ShutdownSignal};
use lexequal_service::server::respond;
use lexequal_service::{MatchService, ServeOptions, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CONNS: usize = 1024;
const CLIENT_THREADS: usize = 16;
const WINDOW: usize = 4;
const WINDOWS_PER_CONN: usize = 2;
const POOL: usize = 64;

fn build_service(dataset: &[lexequal::store::NameEntry]) -> MatchService {
    let service = MatchService::new(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    service.extend_transformed(dataset.to_vec());
    service.build(lexequal_service::BuildSpec::PhoneticIndex);
    service
}

#[test]
fn a_thousand_pipelined_connections_match_direct_lookups_exactly() {
    let dataset =
        lexequal_service::loadgen::build_dataset(&lexequal::MatchConfig::default(), 1_000);
    assert!(
        dataset.len() >= POOL,
        "dataset too small: {}",
        dataset.len()
    );
    let service = Arc::new(build_service(&dataset));
    // The oracle: a second service built from the same dataset, asked
    // the same questions directly (no sockets, no pipelining).
    let reference = build_service(&dataset);
    let queries: Vec<String> = {
        let stride = (dataset.len() / POOL).max(1);
        dataset
            .iter()
            .step_by(stride)
            .take(POOL)
            .map(|e| format!("MATCH {} phonidx 0.35 {}", e.language, e.text))
            .collect()
    };
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let mut quit = false;
            let lines = respond(q, &reference, &mut quit);
            assert_eq!(lines.len(), 1, "{q}");
            lines[0].clone()
        })
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let shutdown = ShutdownSignal::new().expect("shutdown");
    let opts = ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    };
    let server = {
        let service = Arc::clone(&service);
        let sd = shutdown.clone();
        std::thread::spawn(move || serve_evented(listener, service, opts, sd))
    };

    // Two barriers pin the concurrency profile: no thread starts
    // driving until all 1024 connections are open, and none disconnects
    // until all have finished driving — so the server really holds 1024
    // live pipelined connections at once.
    let all_connected = Arc::new(Barrier::new(CLIENT_THREADS));
    let all_driven = Arc::new(Barrier::new(CLIENT_THREADS));
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let expected = &expected;
            let queries = &queries;
            let all_connected = Arc::clone(&all_connected);
            let all_driven = Arc::clone(&all_driven);
            scope.spawn(move || {
                let my_conns: Vec<usize> = (t..CONNS).step_by(CLIENT_THREADS).collect();
                let mut socks = Vec::with_capacity(my_conns.len());
                for _ in &my_conns {
                    let stream = loop {
                        match TcpStream::connect(addr) {
                            Ok(s) => break s,
                            // Listen backlog can overflow while 16
                            // threads connect at once; retry.
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    };
                    stream.set_nodelay(true).expect("nodelay");
                    let reader = BufReader::new(stream.try_clone().expect("clone"));
                    socks.push((stream, reader));
                }
                all_connected.wait();
                let mut line = String::new();
                for w in 0..WINDOWS_PER_CONN {
                    // Write every connection's window before reading any
                    // response: all of this thread's 64 connections keep
                    // WINDOW requests in flight simultaneously.
                    for (s, (stream, _)) in socks.iter_mut().enumerate() {
                        let conn_id = my_conns[s];
                        let mut batch = String::new();
                        for k in 0..WINDOW {
                            batch.push_str(&queries[(conn_id + w * WINDOW + k) % POOL]);
                            batch.push('\n');
                        }
                        stream.write_all(batch.as_bytes()).expect("write window");
                    }
                    for (s, (_, reader)) in socks.iter_mut().enumerate() {
                        let conn_id = my_conns[s];
                        for k in 0..WINDOW {
                            let want = &expected[(conn_id + w * WINDOW + k) % POOL];
                            line.clear();
                            reader.read_line(&mut line).expect("read response");
                            assert_eq!(
                                line.trim_end(),
                                want,
                                "conn {conn_id} window {w} slot {k} diverged"
                            );
                        }
                    }
                }
                all_driven.wait();
            });
        }
    });

    // The server saw all 1024 connections alive at once, and real
    // pipelining on them.
    let stats = {
        let mut stream = TcpStream::connect(addr).expect("stats conn");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream.write_all(b"STATS\n").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line
    };
    let stat = |key: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("no {key} in {stats:?}"))
            .parse()
            .expect("number")
    };
    assert!(
        stat("conns_peak") >= CONNS as u64,
        "peak {} < {CONNS}: {stats}",
        stat("conns_peak")
    );
    assert!(stat("pipeline_max") >= 2, "never pipelined: {stats}");
    assert_eq!(
        stat("dispatches"),
        (CONNS * WINDOWS_PER_CONN * WINDOW) as u64 + 1,
        "dispatch count off: {stats}"
    );

    shutdown.trigger();
    server.join().expect("server thread").expect("serve loop");
}
