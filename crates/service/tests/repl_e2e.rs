//! End-to-end replication through the real `lexequald` binary: a
//! WAL-backed primary, a `--replica-of` replica attached mid-stream
//! (forcing one snapshot transfer plus an incremental tail), a crash
//! (SIGKILL) and a restart from snapshot + WAL replay — with every
//! MATCH answer byte-identical across primary-before-crash,
//! primary-after-restart, and the replica.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn lexequald() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lexequald"))
}

/// A temp file path that cleans up after itself.
struct TempPath(std::path::PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("lexequal_repl_{}_{name}", std::process::id()));
        std::fs::remove_file(&p).ok();
        TempPath(p)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A running daemon child whose stderr is consumed line by line.
struct Server {
    child: Child,
    stderr: BufReader<std::process::ChildStderr>,
    addr: Option<std::net::SocketAddr>,
}

impl Server {
    fn spawn(args: &[&str]) -> Self {
        let mut child = lexequald()
            .args(args)
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn lexequald");
        let stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        Server {
            child,
            stderr,
            addr: None,
        }
    }

    /// Read stderr until the "serving on ADDR" line; return lines seen.
    fn wait_serving(&mut self) -> Vec<String> {
        let mut seen = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.stderr.read_line(&mut line).expect("read stderr");
            assert!(
                n > 0,
                "daemon exited before serving; stderr so far: {seen:?}"
            );
            let line = line.trim_end().to_owned();
            if let Some(rest) = line.strip_prefix("lexequald: serving on ") {
                let addr = rest.split_whitespace().next().expect("addr token");
                self.addr = Some(addr.parse().expect("socket addr"));
                seen.push(line);
                return seen;
            }
            seen.push(line);
        }
    }

    fn addr_str(&self) -> String {
        self.addr.expect("serving").to_string()
    }

    /// One request/response round trip on a fresh connection.
    fn request(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(self.addr.expect("serving")).expect("connect");
        writeln!(stream, "{line}").expect("write");
        let mut reader = BufReader::new(&stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        resp.trim_end().to_owned()
    }

    /// SIGKILL — the crash the WAL exists for.
    fn kill(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
        // Defuse Drop's second kill (already done).
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// Pull `key=value` out of a STATS line.
fn stat<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// Poll the server's STATS until `pred` holds (or fail loudly).
fn wait_stats(server: &Server, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.request("STATS");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last STATS: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The MATCH battery both sides must answer identically. Every name is
/// plain English (always G2P-transformable) and every access path is
/// covered.
fn battery(server: &Server) -> Vec<String> {
    [
        "MATCH en scan 0.45 Nehru",
        "MATCH en qgram 0.45 Nehru",
        "MATCH en phonidx 0.45 Gandhi",
        "MATCH en bktree 0.45 Bose",
        "MATCH en scan 0.35 Tagore",
        "MATCH en qgram 0.35 Krishnan",
        "MATCH en phonidx 0.6 Patel",
    ]
    .iter()
    .map(|q| format!("{q} => {}", server.request(q)))
    .collect()
}

/// The headline acceptance test: converge, crash, recover, reconverge.
#[test]
fn replica_and_recovered_primary_answer_byte_identically() {
    let wal = TempPath::new("e2e.wal");
    let snap = TempPath::new("e2e.snap.json");

    // Primary with a WAL, empty store.
    let mut primary = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "2",
        "--wal",
        wal.as_str(),
    ]);
    let lines = primary.wait_serving();
    assert!(
        lines.iter().any(|l| l.contains("replayed 0 op(s)")),
        "fresh wal must replay nothing: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("role=primary")),
        "{lines:?}"
    );
    let primary_addr = primary.addr_str();

    // Batch A lands before the replica exists — it will travel inside
    // the snapshot transfer.
    for name in ["Nehru", "Nero", "Gandhi"] {
        let resp = primary.request(&format!("ADD en {name}"));
        assert!(resp.starts_with("OK "), "{resp}");
    }
    assert_eq!(primary.request("BUILD ALL"), "OK built=all");

    // Attach the replica mid-stream.
    let mut replica = Server::spawn(&["--addr", "127.0.0.1:0", "--replica-of", &primary_addr]);
    let rlines = replica.wait_serving();
    assert!(
        rlines.iter().any(|l| l.contains("replica synced from")),
        "{rlines:?}"
    );
    assert!(
        rlines.iter().any(|l| l.contains("role=replica")),
        "{rlines:?}"
    );

    // Batch B arrives over the incremental stream, then a snapshot is
    // cut over the wire, then batch C rides the WAL tail past it.
    for name in ["Bose", "Tagore", "Krishnan"] {
        assert!(primary
            .request(&format!("ADD en {name}"))
            .starts_with("OK "));
    }
    let saved = primary.request(&format!("SAVE {}", snap.as_str()));
    assert!(saved.starts_with("OK saved="), "{saved}");
    assert!(saved.contains("names=6"), "{saved}");
    for name in ["Patel", "Sarojini", "Mehta"] {
        assert!(primary
            .request(&format!("ADD en {name}"))
            .starts_with("OK "));
    }
    assert_eq!(primary.request("BUILD ALL"), "OK built=all");

    // The primary's own STATS carries the replication block.
    let pstats = primary.request("STATS");
    assert_eq!(stat(&pstats, "repl_role"), Some("primary"), "{pstats}");
    assert!(stat(&pstats, "wal_lsn").is_some(), "{pstats}");

    let before_crash = battery(&primary);

    // The replica reports its lag and drains it to zero.
    let rstats = wait_stats(&replica, "replica catch-up", |s| {
        stat(s, "repl_lag") == Some("0") && stat(s, "repl_connected") == Some("1")
    });
    assert_eq!(stat(&rstats, "repl_role"), Some("replica"), "{rstats}");
    assert_eq!(battery(&replica), before_crash, "replica diverged");

    // Mutations bounce with a redirect naming the primary.
    let rejected = replica.request("ADD en Imposter");
    assert!(rejected.starts_with("ERR read-only replica"), "{rejected}");
    assert!(rejected.contains(&primary_addr), "{rejected}");
    assert!(replica
        .request("BUILD ALL")
        .starts_with("ERR read-only replica"));

    // Crash the primary. The replica notices and keeps serving reads.
    primary.kill();
    wait_stats(&replica, "replica to notice the dead primary", |s| {
        stat(s, "repl_connected") == Some("0")
    });
    assert_eq!(battery(&replica), before_crash, "replica lost data");

    // Restart on the same address from snapshot + WAL tail.
    let mut revived = Server::spawn(&[
        "--addr",
        &primary_addr,
        "--snapshot",
        snap.as_str(),
        "--wal",
        wal.as_str(),
    ]);
    let lines = revived.wait_serving();
    assert!(
        lines.iter().any(|l| l.contains("loaded via mmap")),
        "no snapshot load line: {lines:?}"
    );
    let replayed = lines
        .iter()
        .find(|l| l.contains("replayed"))
        .unwrap_or_else(|| panic!("no wal replay line: {lines:?}"));
    // Batch C (3 adds) + BUILD ALL (3 build ops) came after the SAVE.
    assert!(replayed.contains("replayed 6 op(s)"), "{replayed}");
    assert_eq!(battery(&revived), before_crash, "recovery diverged");

    // The replica reconnects to the revived primary and stays converged.
    wait_stats(&replica, "replica reconnect", |s| {
        stat(s, "repl_connected") == Some("1") && stat(s, "repl_lag") == Some("0")
    });
    assert_eq!(battery(&replica), before_crash, "post-recovery divergence");

    // And the stream still works: a fresh mutation reaches the replica.
    assert!(revived.request("ADD en Epilogue").starts_with("OK "));
    wait_stats(&replica, "post-recovery apply", |s| {
        stat(s, "repl_lag") == Some("0")
    });
    let q = "MATCH en scan 0.45 Epilogue";
    assert_eq!(replica.request(q), revived.request(q));
}

/// Replication also works end to end on the threaded serving path
/// (the handler thread itself becomes the stream sender).
#[test]
fn threaded_mode_serves_replication_too() {
    let wal = TempPath::new("threaded.wal");
    let mut primary = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--mode",
        "threaded",
        "--shards",
        "1",
        "--wal",
        wal.as_str(),
    ]);
    primary.wait_serving();
    let primary_addr = primary.addr_str();
    assert!(primary.request("ADD en Nehru").starts_with("OK "));

    let mut replica = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--mode",
        "threaded",
        "--replica-of",
        &primary_addr,
    ]);
    replica.wait_serving();
    assert!(primary.request("ADD en Gandhi").starts_with("OK "));
    wait_stats(&replica, "threaded replica catch-up", |s| {
        stat(s, "repl_lag") == Some("0") && stat(s, "repl_connected") == Some("1")
    });
    let q = "MATCH en scan 0.45 Nehru";
    assert_eq!(replica.request(q), primary.request(q));
}

/// `SAVE` on a standalone daemon (no WAL): explicit path works and the
/// file restarts a daemon; no path and no default is a clean error.
#[test]
fn save_command_works_standalone() {
    let snap = TempPath::new("standalone.snap.json");
    let mut server = Server::spawn(&["--addr", "127.0.0.1:0", "--shards", "2", "--preload", "300"]);
    server.wait_serving();

    let no_path = server.request("SAVE");
    assert!(no_path.starts_with("ERR SAVE: no path"), "{no_path}");

    let saved = server.request(&format!("SAVE {}", snap.as_str()));
    assert!(saved.starts_with("OK saved="), "{saved}");
    assert!(saved.contains("lsn=0"), "{saved}");
    let q = "MATCH en qgram 0.45 Nehru";
    let before = server.request(q);
    drop(server);

    let mut restarted = Server::spawn(&["--addr", "127.0.0.1:0", "--snapshot", snap.as_str()]);
    restarted.wait_serving();
    // The mmap load defers index rebuilds to the background: a
    // method-pinned MATCH may answer NOTBUILT for a moment.
    let mut after = restarted.request(q);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while after.starts_with("NOTBUILT") && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
        after = restarted.request(q);
    }
    assert_eq!(after, before);

    // REPL HELLO against a daemon with no WAL is a named refusal.
    let refused = restarted.request("REPL HELLO 0");
    assert!(refused.contains("replication not enabled"), "{refused}");
}

/// `--save-snapshot` doubles as the `SAVE` default target.
#[test]
fn save_without_path_uses_the_configured_default() {
    let snap = TempPath::new("default.snap.json");
    let mut server = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--preload",
        "200",
        "--save-snapshot",
        snap.as_str(),
    ]);
    server.wait_serving();
    assert!(server.request("ADD en Newcomer").starts_with("OK "));
    let saved = server.request("SAVE");
    assert!(saved.starts_with("OK saved="), "{saved}");
    assert!(saved.contains(snap.as_str()), "{saved}");
}
