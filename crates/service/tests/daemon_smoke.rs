//! End-to-end smoke test of the `lexequald` wire protocol over a real
//! TCP socket: add names in three scripts, build access paths, and
//! assert the paper's flagship cross-script match (Nehru ↔ नेहरु) plus
//! cache and stats accounting — all through the line protocol. Every
//! scenario runs against both serving paths (evented and threaded),
//! and every daemon is shut down and joined, so nothing leaks.

use lexequal_service::{
    serve_with, MatchService, ServeMode, ServeOptions, ServiceConfig, ShutdownSignal,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("write");
        self.recv()
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_owned()
    }
}

/// A daemon under test: serving on `addr` until [`Daemon::stop`].
struct Daemon {
    addr: std::net::SocketAddr,
    shutdown: ShutdownSignal,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    fn spawn(mode: ServeMode, shards: usize) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        let service = Arc::new(MatchService::new(ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }));
        let shutdown = ShutdownSignal::new().expect("shutdown signal");
        let sd = shutdown.clone();
        let handle = std::thread::spawn(move || {
            serve_with(mode, listener, service, ServeOptions::default(), sd)
        });
        Daemon {
            addr,
            shutdown,
            handle,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.handle.join().expect("serve thread").expect("serve");
    }
}

fn stat(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key} in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key} not a number in {line:?}"))
}

fn ids_of(line: &str) -> Vec<u32> {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix("ids="))
        .unwrap_or_else(|| panic!("no ids in {line:?}"))
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("id"))
        .collect()
}

#[test]
fn daemon_answers_cross_script_matches_over_tcp() {
    for mode in [ServeMode::Evented, ServeMode::Threaded] {
        let daemon = Daemon::spawn(mode, 3);
        let mut c = Client::connect(daemon.addr);

        // Load a small multiscript directory through the wire.
        assert_eq!(c.send("ADD en Nehru"), "OK 0");
        assert_eq!(c.send("ADD hi नेहरु"), "OK 1");
        assert_eq!(c.send("ADD ta நேரு"), "OK 2");
        assert_eq!(c.send("ADD en Nero"), "OK 3");
        assert_eq!(c.send("ADD en Gandhi"), "OK 4");
        assert_eq!(c.send("BUILD QGRAM 3 STRICT"), "OK built=qgram");

        // The paper's flagship pair: Nehru needs e=0.45 to reach नेहरु.
        let resp = c.send("MATCH en qgram 0.45 Nehru");
        assert!(resp.starts_with("OK "), "{resp}");
        let ids = ids_of(&resp);
        assert!(ids.contains(&0), "self match missing: {resp}");
        assert!(ids.contains(&1), "Nehru ↔ नेहरु missing: {resp}");
        assert!(ids.contains(&2), "Nehru ↔ நேரு missing: {resp}");
        assert!(!ids.contains(&4), "Gandhi is not Nehru: {resp}");

        // At the default 0.35 the Tamil spelling still matches (paper §4).
        let resp = c.send("MATCH ta qgram - நேரு");
        assert!(ids_of(&resp).contains(&0), "நேரு ↔ Nehru missing: {resp}");

        // Repeat the first query: same answer, now served from the cache.
        let again = c.send("MATCH en qgram 0.45 Nehru");
        assert_eq!(ids_of(&again), ids);

        // Batch: one response line per item, in order.
        c.stream
            .write_all("BATCH en qgram 0.45 Nehru|Gandhi\n".as_bytes())
            .expect("write batch");
        let first = c.recv();
        let second = c.recv();
        assert!(ids_of(&first).contains(&1), "{first}");
        assert!(ids_of(&second).contains(&4), "{second}");

        // Degraded outcomes stay on the connection.
        assert_eq!(c.send("MATCH en bktree - Nehru"), "NOTBUILT bktree");
        assert!(c.send("MATCH xx - - Nehru").starts_with("ERR "));

        let stats = c.send("STATS");
        assert_eq!(stat(&stats, "names"), 5);
        assert_eq!(stat(&stats, "shards"), 3);
        assert!(stat(&stats, "cache_hits") > 0, "no cache hits: {stats}");
        assert!(stat(&stats, "cache_misses") > 0, "{stats}");
        assert_eq!(stat(&stats, "notbuilt"), 1, "{stats}");
        assert!(stat(&stats, "requests") >= 6, "{stats}");
        assert!(stat(&stats, "qgram_searches") >= 5, "{stats}");
        // Both serving loops surface connection gauges in STATS.
        assert_eq!(stat(&stats, "conns_current"), 1, "{stats}");
        assert!(stat(&stats, "conns_peak") >= 1, "{stats}");

        assert_eq!(c.send("QUIT"), "BYE");

        // The daemon keeps serving new connections after one quits.
        let mut c2 = Client::connect(daemon.addr);
        let resp = c2.send("MATCH en qgram 0.45 Nehru");
        assert!(ids_of(&resp).contains(&1), "{resp}");
        assert_eq!(c2.send("QUIT"), "BYE");

        daemon.stop();
    }
}

#[test]
fn two_clients_interleave_on_one_daemon() {
    for mode in [ServeMode::Evented, ServeMode::Threaded] {
        let daemon = Daemon::spawn(mode, 2);
        let mut a = Client::connect(daemon.addr);
        let mut b = Client::connect(daemon.addr);
        assert_eq!(a.send("ADD en Nehru"), "OK 0");
        // Client b sees a's write immediately (shared service).
        let resp = b.send("MATCH en scan - Nehru");
        assert!(ids_of(&resp).contains(&0), "{resp}");
        // Interleaved commands on both connections stay line-matched.
        assert_eq!(b.send("ADD en Gandhi"), "OK 1");
        let resp = a.send("MATCH en scan - Gandhi");
        assert!(ids_of(&resp).contains(&1), "{resp}");
        assert_eq!(a.send("QUIT"), "BYE");
        assert_eq!(b.send("QUIT"), "BYE");
        daemon.stop();
    }
}
