//! End-to-end WAL compaction through the real `lexequald` binary: a
//! primary with a tiny `--wal-max-bytes` bound and a live replica
//! soaking through several background checkpoint-and-truncate cycles,
//! the explicit `COMPACT` wire command, crash (SIGKILL) loops landing at
//! arbitrary points of the compaction cycle, and the flag/role
//! refusals.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn lexequald() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lexequald"))
}

/// A temp file path that cleans up after itself (and its checkpoint).
struct TempPath(std::path::PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        let p =
            std::env::temp_dir().join(format!("lexequal_compact_{}_{name}", std::process::id()));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(p.with_file_name(format!(
            "{}.checkpoint",
            p.file_name().unwrap().to_str().unwrap()
        )))
        .ok();
        TempPath(p)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }

    fn checkpoint(&self) -> std::path::PathBuf {
        self.0.with_file_name(format!(
            "{}.checkpoint",
            self.0.file_name().unwrap().to_str().unwrap()
        ))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
        std::fs::remove_file(self.checkpoint()).ok();
    }
}

/// A running daemon child whose stderr is consumed line by line.
struct Server {
    child: Child,
    stderr: BufReader<std::process::ChildStderr>,
    addr: Option<std::net::SocketAddr>,
}

impl Server {
    fn spawn(args: &[&str]) -> Self {
        let mut child = lexequald()
            .args(args)
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn lexequald");
        let stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        Server {
            child,
            stderr,
            addr: None,
        }
    }

    /// Read stderr until the "serving on ADDR" line; return lines seen.
    fn wait_serving(&mut self) -> Vec<String> {
        let mut seen = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.stderr.read_line(&mut line).expect("read stderr");
            assert!(
                n > 0,
                "daemon exited before serving; stderr so far: {seen:?}"
            );
            let line = line.trim_end().to_owned();
            if let Some(rest) = line.strip_prefix("lexequald: serving on ") {
                let addr = rest.split_whitespace().next().expect("addr token");
                self.addr = Some(addr.parse().expect("socket addr"));
                seen.push(line);
                return seen;
            }
            seen.push(line);
        }
    }

    fn addr_str(&self) -> String {
        self.addr.expect("serving").to_string()
    }

    /// One request/response round trip on a fresh connection.
    fn request(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(self.addr.expect("serving")).expect("connect");
        writeln!(stream, "{line}").expect("write");
        let mut reader = BufReader::new(&stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        resp.trim_end().to_owned()
    }

    /// SIGKILL — the crash the checkpoint-before-truncate ordering
    /// exists for.
    fn kill(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// Pull `key=value` out of a STATS line.
fn stat<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// Poll the server's STATS until `pred` holds (or fail loudly).
fn wait_stats(server: &Server, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.request("STATS");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last STATS: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The i-th synthetic name: always alphabetic, always G2P-transformable.
fn name(i: usize) -> String {
    let heads = ["Ka", "Re", "Ni", "Mo", "Ta", "Lu", "Sa", "Vi"];
    let tails = ["ram", "vel", "din", "sha", "pur", "nak", "kar", "tel"];
    format!(
        "{}{}{}",
        heads[(i / tails.len()) % heads.len()],
        tails[i % tails.len()],
        i / (heads.len() * tails.len()),
    )
}

/// The MATCH battery both sides must answer identically.
fn battery(server: &Server, names: &[String]) -> Vec<String> {
    names
        .iter()
        .map(|n| {
            let q = format!("MATCH en scan 0.45 {n}");
            format!("{q} => {}", server.request(&q))
        })
        .collect()
}

/// The headline soak: a WAL bounded at a few KiB stays bounded across
/// several background compaction cycles while a live replica streams,
/// drains its lag to zero and answers byte-identically.
#[test]
fn bounded_wal_soaks_with_a_live_replica() {
    let wal = TempPath::new("soak.wal");
    let mut primary = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "2",
        "--wal",
        wal.as_str(),
        "--wal-max-bytes",
        "2048",
    ]);
    primary.wait_serving();
    let primary_addr = primary.addr_str();

    let mut replica = Server::spawn(&["--addr", "127.0.0.1:0", "--replica-of", &primary_addr]);
    replica.wait_serving();

    // Commit in rounds until three compaction cycles have landed (the
    // background compactor polls every 200ms, so rounds give it room).
    let mut names = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for _ in 0..40 {
            let n = name(names.len());
            let resp = primary.request(&format!("ADD en {n}"));
            assert!(resp.starts_with("OK "), "{resp}");
            names.push(n);
        }
        let stats = primary.request("STATS");
        let compactions: u64 = stat(&stats, "compactions")
            .unwrap_or_else(|| panic!("no compactions key: {stats}"))
            .parse()
            .expect("compactions number");
        if compactions >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never reached 3 compactions; last STATS: {stats}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The bound held: the live log (and the file itself) stayed a small
    // multiple of the threshold, far below the total committed bytes.
    let stats = wait_stats(&primary, "post-compaction stats", |s| {
        stat(s, "wal_bytes_live")
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|v| v <= 2048)
    });
    let file_bytes = std::fs::metadata(wal.as_str()).expect("wal file").len();
    assert!(
        file_bytes <= 4 * 2048,
        "on-disk wal is {file_bytes} bytes, way past the bound: {stats}"
    );
    assert!(wal.checkpoint().exists(), "checkpoint must exist on disk");
    let checkpoint_lsn: u64 = stat(&stats, "checkpoint_lsn")
        .expect("checkpoint_lsn key")
        .parse()
        .expect("checkpoint_lsn number");
    assert!(checkpoint_lsn > 0, "{stats}");
    assert_eq!(stat(&stats, "divergences"), Some("0"), "{stats}");

    // The replica rode through every truncation and converged.
    wait_stats(&replica, "replica catch-up", |s| {
        stat(s, "repl_lag") == Some("0") && stat(s, "repl_connected") == Some("1")
    });
    let probe: Vec<String> = names.iter().step_by(7).cloned().collect();
    assert_eq!(
        battery(&replica, &probe),
        battery(&primary, &probe),
        "replica diverged across compactions"
    );

    // Explicit COMPACT works on top of the background cycles.
    let compacted = primary.request("COMPACT");
    assert!(
        compacted.starts_with("OK compacted checkpoint_lsn="),
        "{compacted}"
    );
    assert!(compacted.contains("wal_bytes_live="), "{compacted}");

    // And a restart recovers the full corpus from checkpoint + tail.
    primary.kill();
    let mut revived = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "2",
        "--wal",
        wal.as_str(),
        "--wal-max-bytes",
        "2048",
    ]);
    let lines = revived.wait_serving();
    assert!(
        lines.iter().any(|l| l.contains("loaded via mmap")),
        "restart must load the checkpoint: {lines:?}"
    );
    let all: Vec<String> = names.clone();
    for n in &all {
        let resp = revived.request(&format!("MATCH en scan 0.45 {n}"));
        assert!(
            resp.starts_with("OK n=") && !resp.starts_with("OK n=0 "),
            "lost {n} after restart: {resp}"
        );
    }
}

/// Kill -9 loops: crash the primary at staggered points while the
/// background compactor is cycling, restart from whatever the
/// filesystem holds, and require the pre-crash battery byte-identical
/// every time.
#[test]
fn kill_loops_across_compaction_recover_byte_identically() {
    let wal = TempPath::new("killloop.wal");
    let mut names: Vec<String> = Vec::new();
    let mut next = 0usize;
    // Staggered post-commit delays walk the kill across the compactor's
    // 200ms cycle: before a cycle starts, mid-checkpoint, post-rename,
    // post-truncate.
    for (round, delay_ms) in [0u64, 60, 130, 210, 340].into_iter().enumerate() {
        let mut primary = Server::spawn(&[
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--wal",
            wal.as_str(),
            "--wal-max-bytes",
            "1024",
        ]);
        let lines = primary.wait_serving();
        if round > 0 {
            assert!(
                lines
                    .iter()
                    .any(|l| l.contains("loaded via mmap") || l.contains("replayed")),
                "restart must recover from checkpoint/wal: {lines:?}"
            );
        }
        // Every name acknowledged in ANY earlier round must still match.
        for n in &names {
            let resp = primary.request(&format!("MATCH en scan 0.45 {n}"));
            assert!(
                resp.starts_with("OK n=") && !resp.starts_with("OK n=0 "),
                "round {round}: lost {n} after crash: {resp}"
            );
        }
        for _ in 0..30 {
            let n = name(next);
            next += 1;
            let resp = primary.request(&format!("ADD en {n}"));
            assert!(resp.starts_with("OK "), "{resp}");
            names.push(n);
        }
        let probe: Vec<String> = names.iter().step_by(5).cloned().collect();
        let before = battery(&primary, &probe);
        std::thread::sleep(Duration::from_millis(delay_ms));
        primary.kill();

        let mut revived = Server::spawn(&[
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--wal",
            wal.as_str(),
        ]);
        revived.wait_serving();
        assert_eq!(
            battery(&revived, &probe),
            before,
            "round {round} (delay {delay_ms}ms): recovery diverged"
        );
        revived.kill();
    }
}

/// Role and flag refusals: COMPACT needs a WAL, runs only on a primary,
/// and a replica's refusal names the primary to go ask instead.
#[test]
fn compact_command_refusals_name_the_right_fix() {
    let mut standalone = Server::spawn(&["--addr", "127.0.0.1:0"]);
    standalone.wait_serving();
    let resp = standalone.request("COMPACT");
    assert!(
        resp.starts_with("ERR COMPACT requires a write-ahead log"),
        "{resp}"
    );

    let wal = TempPath::new("refusals.wal");
    let mut primary = Server::spawn(&["--addr", "127.0.0.1:0", "--wal", wal.as_str()]);
    primary.wait_serving();
    let primary_addr = primary.addr_str();
    let mut replica = Server::spawn(&["--addr", "127.0.0.1:0", "--replica-of", &primary_addr]);
    replica.wait_serving();
    let resp = replica.request("COMPACT");
    assert!(resp.starts_with("ERR this daemon is a replica"), "{resp}");
    assert!(resp.contains(&primary_addr), "{resp}");

    // A diverged HELLO on the wire is refused with the primary's head.
    let mut sock = TcpStream::connect(primary.addr.expect("serving")).expect("connect");
    sock.write_all(b"REPL HELLO 999 MMAP\n").expect("hello");
    let mut reply = String::new();
    BufReader::new(&sock)
        .read_line(&mut reply)
        .expect("read reply");
    assert!(reply.starts_with("DIVERGED lsn="), "{reply:?}");
    let stats = wait_stats(&primary, "divergence counter", |s| {
        stat(s, "divergences") == Some("1")
    });
    assert!(stat(&stats, "reseeds").is_some(), "{stats}");
}
