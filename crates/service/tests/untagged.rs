//! End-to-end coverage of the untagged-query subsystem over the wire:
//! `ADD -` / `MATCH -` against both serving paths, the pinned Latin
//! fan-out union, byte-identical tagged-vs-untagged answers for
//! unambiguous scripts, per-script goldens (Cyrillic through the new
//! Russian converter, Hangul/Thai as `NORESOURCE`), and replica
//! convergence for untagged `ADD`s (the WAL carries the *resolved*
//! language, so replicas never need the routing table).

use lexequal_service::server::respond_with_ctx;
use lexequal_service::{
    serve_with, MatchService, Op, Replicator, ReqCtx, ServeMode, ServeOptions, ServiceConfig,
    ShutdownSignal, Wal, WalMetrics,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("write");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read");
        resp.trim_end().to_owned()
    }
}

struct Daemon {
    addr: std::net::SocketAddr,
    shutdown: ShutdownSignal,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    fn spawn(mode: ServeMode, shards: usize) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        let service = Arc::new(MatchService::new(ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }));
        let shutdown = ShutdownSignal::new().expect("shutdown signal");
        let sd = shutdown.clone();
        let handle = std::thread::spawn(move || {
            serve_with(mode, listener, service, ServeOptions::default(), sd)
        });
        Daemon {
            addr,
            shutdown,
            handle,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.handle.join().expect("serve thread").expect("serve");
    }
}

fn ids_of(line: &str) -> Vec<u32> {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix("ids="))
        .unwrap_or_else(|| panic!("no ids in {line:?}"))
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("id"))
        .collect()
}

fn stat(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key} in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key} not a number in {line:?}"))
}

/// Load the shared multiscript directory over the wire. Ids 0..=5.
fn load_directory(c: &mut Client) {
    assert_eq!(c.send("ADD en Nehru"), "OK 0");
    assert_eq!(c.send("ADD hi नेहरु"), "OK 1");
    assert_eq!(c.send("ADD ta நேரு"), "OK 2");
    assert_eq!(c.send("ADD fr Descartes"), "OK 3");
    assert_eq!(c.send("ADD es Nero"), "OK 4");
    assert_eq!(c.send("ADD ru Неру"), "OK 5");
    assert_eq!(c.send("BUILD QGRAM 3 STRICT"), "OK built=qgram");
}

#[test]
fn untagged_match_works_over_the_wire_in_both_modes() {
    for mode in [ServeMode::Evented, ServeMode::Threaded] {
        let daemon = Daemon::spawn(mode, 3);
        let mut c = Client::connect(daemon.addr);
        load_directory(&mut c);

        // Latin untagged: the merged answer equals the union of the
        // three tagged fan-out queries, pinned over the wire.
        let auto = c.send("MATCH - qgram 0.45 Nehru");
        assert!(auto.starts_with("OK "), "{mode:?}: {auto}");
        let auto_ids = ids_of(&auto);
        let mut union: Vec<u32> = Vec::new();
        for lang in ["en", "fr", "es"] {
            union.extend(ids_of(&c.send(&format!("MATCH {lang} qgram 0.45 Nehru"))));
        }
        union.sort_unstable();
        union.dedup();
        assert_eq!(auto_ids, union, "{mode:?}: fan-out merge is not the union");
        assert!(auto_ids.contains(&0), "{mode:?}: self match missing");
        assert!(auto_ids.contains(&1), "{mode:?}: Nehru ↔ नेहरु missing");

        // Unambiguous script: untagged answer byte-identical to tagged.
        let tagged = c.send("MATCH hi qgram 0.45 नेहरु");
        let auto = c.send("MATCH - qgram 0.45 नेहरु");
        assert_eq!(auto, tagged, "{mode:?}");

        // Cyrillic routes to the Russian converter; Неру renders to the
        // same phonemes as English Nehru, so both ids surface.
        let resp = c.send("MATCH - qgram 0.45 Неру");
        let ids = ids_of(&resp);
        assert!(ids.contains(&5), "{mode:?}: self match missing: {resp}");
        assert!(ids.contains(&0), "{mode:?}: Неру ↔ Nehru missing: {resp}");

        // Detected-but-converterless scripts answer NORESOURCE; scripts
        // with no tag at all and letterless input answer ERR.
        assert_eq!(
            c.send("MATCH - qgram - 네루"),
            "NORESOURCE Korean",
            "{mode:?}"
        );
        assert_eq!(
            c.send("MATCH - qgram - เนห์รู"),
            "NORESOURCE Thai",
            "{mode:?}"
        );
        assert!(
            c.send("MATCH - qgram - 北京").starts_with("ERR "),
            "{mode:?}"
        );
        assert!(c.send("MATCH - qgram - 42").starts_with("ERR "), "{mode:?}");

        // Untagged ADD resolves Latin to English (first fan-out tag).
        let resp = c.send("ADD - Gandhi");
        assert_eq!(resp, "OK 6 lang=English", "{mode:?}");
        let resp = c.send("ADD - Ельцин");
        assert_eq!(resp, "OK 7 lang=Russian", "{mode:?}");
        assert_eq!(c.send("ADD - 네루"), "NORESOURCE Korean", "{mode:?}");
        assert!(c.send("ADD - 42").starts_with("ERR bad input"), "{mode:?}");

        // STATS surfaces the untagged counters once the path is used.
        let stats = c.send("STATS");
        assert!(stat(&stats, "untagged_requests") >= 8, "{stats}");
        assert!(stat(&stats, "untagged_noresource") >= 2, "{stats}");
        assert!(stat(&stats, "untagged_fanout_max") >= 3, "{stats}");
        assert!(stat(&stats, "untagged_script_latin") >= 2, "{stats}");
        assert!(stat(&stats, "untagged_script_cyrillic") >= 2, "{stats}");
        assert!(stat(&stats, "untagged_script_hangul") >= 2, "{stats}");

        assert_eq!(c.send("QUIT"), "BYE");
        daemon.stop();
    }
}

#[test]
fn untagged_adds_replicate_with_the_resolved_language() {
    // Primary with a WAL: untagged ADDs resolve to a concrete tag
    // before the commit, so the log carries ordinary tagged ops.
    let wal_path =
        std::env::temp_dir().join(format!("lexequal_untagged_wal_{}.log", std::process::id()));
    std::fs::remove_file(&wal_path).ok();
    let metrics = Arc::new(WalMetrics::default());
    let (wal, tail) = Wal::open(&wal_path, 0, Arc::clone(&metrics)).expect("open wal");
    assert!(tail.is_empty());
    let repl = Replicator::new(wal, metrics);
    let primary = MatchService::new(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    let ctx = ReqCtx {
        repl: Some(Arc::clone(&repl)),
        ..ReqCtx::default()
    };

    let mut quit = false;
    let mut send = |line: &str| {
        let out = respond_with_ctx(line, &primary, &ctx, None, &mut quit);
        assert_eq!(out.len(), 1, "{line:?}: {out:?}");
        out.into_iter().next().unwrap()
    };
    assert_eq!(send("ADD - Nehru"), "OK 0 lang=English");
    assert_eq!(send("ADD - Неру"), "OK 1 lang=Russian");
    assert_eq!(send("ADD - नेहरु"), "OK 2 lang=Hindi");
    assert_eq!(send("ADD - 네루"), "NORESOURCE Korean");
    assert_eq!(send("BUILD QGRAM 3 STRICT"), "OK built=qgram");

    // Replay the WAL into a fresh replica: the ops are fully tagged
    // (no routing table needed) and the stores converge.
    let records = repl.read_from(0).expect("read wal");
    assert_eq!(records.len(), 4, "3 adds + 1 build");
    let langs: Vec<String> = records
        .iter()
        .filter_map(|r| match &r.op {
            Op::Add { language, .. } => Some(language.to_string()),
            Op::Build(_) => None,
        })
        .collect();
    assert_eq!(langs, ["English", "Russian", "Hindi"]);

    let replica = MatchService::new(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    for r in &records {
        replica.apply_op(&r.op).expect("apply");
    }
    assert_eq!(replica.len(), primary.len());

    // Byte-identical answers on both sides, tagged and untagged.
    let replica_ctx = ReqCtx::default();
    for query in ["MATCH ru qgram 0.45 Неру", "MATCH - qgram 0.45 Nehru"] {
        let mut q1 = false;
        let p = respond_with_ctx(query, &primary, &ctx, None, &mut q1);
        let r = respond_with_ctx(query, &replica, &replica_ctx, None, &mut q1);
        assert_eq!(p, r, "{query}");
    }

    repl.stop_and_join();
    std::fs::remove_file(&wal_path).ok();
}

#[test]
fn per_script_goldens_route_untagged() {
    // One entry per supported script; every untagged query must find
    // its own entry back (self-match at the default threshold).
    let daemon = Daemon::spawn(ServeMode::Evented, 2);
    let mut c = Client::connect(daemon.addr);
    let goldens = [
        ("en", "Nehru"),
        ("hi", "नेहरु"),
        ("ta", "நேரு"),
        ("el", "Νερού"),
        ("ru", "Неру"),
        ("ar", "العمارة"),
        ("ja", "ネルー"),
    ];
    for (i, (lang, text)) in goldens.iter().enumerate() {
        assert_eq!(c.send(&format!("ADD {lang} {text}")), format!("OK {i}"));
    }
    assert_eq!(c.send("BUILD QGRAM 3 STRICT"), "OK built=qgram");
    for (i, (_, text)) in goldens.iter().enumerate() {
        let resp = c.send(&format!("MATCH - qgram 0.45 {text}"));
        assert!(
            ids_of(&resp).contains(&(i as u32)),
            "{text}: self match missing: {resp}"
        );
    }
    assert_eq!(c.send("QUIT"), "BYE");
    daemon.stop();
}

#[test]
fn replicas_reject_untagged_writes_but_serve_untagged_reads() {
    use lexequal_service::ReplicaState;
    let service = MatchService::new(ServiceConfig::default());
    service
        .extend([("Nehru".to_owned(), lexequal::Language::English)])
        .unwrap();
    let ctx = ReqCtx {
        replica: Some(Arc::new(ReplicaState::new("10.0.0.1:7878".to_owned()))),
        ..ReqCtx::default()
    };
    let mut quit = false;
    let add = respond_with_ctx("ADD - Gandhi", &service, &ctx, None, &mut quit);
    assert!(add[0].starts_with("ERR read-only replica"), "{add:?}");
    let m = respond_with_ctx("MATCH - scan - Nehru", &service, &ctx, None, &mut quit);
    assert!(ids_of(&m[0]).contains(&0), "{m:?}");
}
