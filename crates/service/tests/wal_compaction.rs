//! In-process compaction tests: the crash-state matrix around a
//! checkpoint-and-truncate cycle (recovery must compose checkpoint +
//! surviving tail byte-identically at every intermediate filesystem
//! state), the straggler live re-seed path, divergence refusal on both
//! sides of the wire, and the incremental-serving edges around a
//! compacted base.

use lexequal::{Language, MatchConfig};
use lexequal_service::repl::{self, CompactionPolicy, ReplicaState, Replicator};
use lexequal_service::{
    bind_reusable, MatchRequest, MatchService, ServiceConfig, ShutdownSignal, Wal, WalMetrics,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p =
            std::env::temp_dir().join(format!("lexequal_compaction_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).expect("create temp dir");
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The i-th synthetic name: always alphabetic, always G2P-transformable.
fn name(i: usize) -> String {
    let heads = ["Ka", "Re", "Ni", "Mo", "Ta", "Lu"];
    let tails = ["ram", "vel", "din", "sha", "pur", "nak"];
    format!(
        "{}{}",
        heads[(i / tails.len()) % heads.len()],
        tails[i % tails.len()]
    )
}

fn fresh_service(config: &MatchConfig) -> Arc<MatchService> {
    Arc::new(MatchService::new(ServiceConfig {
        match_config: config.clone(),
        shards: 2,
        cache_capacity: 1024,
    }))
}

fn new_primary(wal_path: &Path, config: &MatchConfig) -> (Arc<MatchService>, Arc<Replicator>) {
    let service = fresh_service(config);
    let metrics = Arc::new(WalMetrics::default());
    let (wal, tail) = Wal::open(wal_path, 0, metrics.clone()).expect("open wal");
    assert!(tail.is_empty(), "fresh wal must be empty");
    (service, Replicator::new(wal, metrics))
}

/// Every answer the first `n` names produce — the byte-identical
/// equivalence check between two stores.
fn battery(service: &MatchService, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let out = service.lookup(&MatchRequest::new(name(i), Language::English));
            format!("{} => {out:?}", name(i))
        })
        .collect()
}

/// Recover a store exactly like the daemon does: checkpoint (if one
/// exists) as the base, then replay the WAL tail past it.
fn recover(wal_path: &Path, ckpt_path: &Path, config: &MatchConfig) -> Arc<MatchService> {
    let (service, base) = if ckpt_path.exists() {
        let load = MatchService::load_snapshot_auto(config.clone(), None, 1024, ckpt_path)
            .expect("load checkpoint");
        for spec in load.pending_builds {
            load.service.build(spec);
        }
        (Arc::new(load.service), load.lsn)
    } else {
        (fresh_service(config), 0)
    };
    let metrics = Arc::new(WalMetrics::default());
    let (_wal, tail) = Wal::open(wal_path, base, metrics).expect("open wal for recovery");
    for rec in tail {
        service.apply_op(&rec.op).expect("replay op");
    }
    service
}

fn wait_until(what: &str, pred: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Copy the current on-disk state (WAL, optionally checkpoint and a
/// scratch file) into a named crash-state directory.
fn capture_state(dir: &Path, state: &str, files: &[(&Path, &str)]) -> PathBuf {
    let d = dir.join(state);
    std::fs::create_dir_all(&d).expect("create state dir");
    for (src, dst) in files {
        std::fs::copy(src, d.join(dst)).expect("copy state file");
    }
    d
}

/// The crash-state matrix: every intermediate filesystem state a kill
/// can leave behind during a compaction cycle must recover to the same
/// answers as the never-crashed store. The cycle's ordering invariant
/// (checkpoint durable BEFORE any log byte is dropped) is exactly what
/// makes each of these states complete.
#[test]
fn recovery_composes_checkpoint_and_surviving_tail_at_every_crash_point() {
    let dir = TempDir::new("crash_matrix");
    let wal_path = dir.path().join("primary.wal");
    let ckpt_path = dir.path().join("primary.wal.checkpoint");
    let config = MatchConfig::default();
    let (service, repl) = new_primary(&wal_path, &config);
    repl.set_compaction_policy(CompactionPolicy {
        checkpoint: Some(ckpt_path.clone()),
        max_bytes: None,
        grace: Duration::from_secs(10),
    });

    for i in 0..18 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }

    // Crash BEFORE the checkpoint landed: the full log alone recovers.
    let pre = capture_state(dir.path(), "pre", &[(&wal_path, "primary.wal")]);

    // Step 1 of the cycle: durable checkpoint at the head.
    let ckpt_lsn = repl
        .save_snapshot_atomic(&service, &ckpt_path)
        .expect("write checkpoint");
    assert_eq!(ckpt_lsn, 18);

    // Crash AFTER the checkpoint rename, BEFORE truncation: checkpoint
    // and full log coexist; recovery takes the checkpoint and replays a
    // tail the checkpoint already covers... which is empty past lsn 18.
    let mid = capture_state(
        dir.path(),
        "mid",
        &[
            (&wal_path, "primary.wal"),
            (&ckpt_path, "primary.wal.checkpoint"),
        ],
    );

    // Crash MID-REWRITE: like `mid` plus a half-written rewrite scratch
    // that open() must sweep away.
    let tmp = capture_state(
        dir.path(),
        "tmp",
        &[
            (&wal_path, "primary.wal"),
            (&ckpt_path, "primary.wal.checkpoint"),
        ],
    );
    std::fs::write(
        tmp.join("primary.wal.compact.tmp"),
        b"#lexequal-wal v1\ntorn",
    )
    .expect("write scratch");

    // Finish the cycle for real: everything ≤ 18 is dropped.
    let report = repl.compact(&service).expect("compact");
    assert_eq!(report.horizon, 18);
    assert_eq!(report.dropped_records, 18);
    let post = capture_state(
        dir.path(),
        "post",
        &[
            (&wal_path, "primary.wal"),
            (&ckpt_path, "primary.wal.checkpoint"),
        ],
    );

    let reference18 = battery(&service, 18);
    for state in [&pre, &mid, &tmp, &post] {
        let recovered = recover(
            &state.join("primary.wal"),
            &state.join("primary.wal.checkpoint"),
            &config,
        );
        assert_eq!(recovered.len(), 18, "state {state:?} lost entries");
        assert_eq!(
            battery(&recovered, 18),
            reference18,
            "state {state:?} diverged"
        );
    }
    assert!(
        !tmp.join("primary.wal.compact.tmp").exists(),
        "stale rewrite scratch must be deleted on open"
    );

    // A tail committed past the checkpoint replays on top of it.
    for i in 18..24 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit tail");
    }
    let tail_state = capture_state(
        dir.path(),
        "tail",
        &[
            (&wal_path, "primary.wal"),
            (&ckpt_path, "primary.wal.checkpoint"),
        ],
    );
    let reference24 = battery(&service, 24);
    let recovered = recover(
        &tail_state.join("primary.wal"),
        &tail_state.join("primary.wal.checkpoint"),
        &config,
    );
    assert_eq!(recovered.len(), 24, "tail replay lost entries");
    assert_eq!(battery(&recovered, 24), reference24, "tail replay diverged");
}

/// A replica that disconnects, misses a compaction that truncates past
/// its position, and reconnects is re-seeded live via the snapshot
/// transfer — no restart, no error — and then continues incrementally.
#[test]
fn straggler_reseeds_live_after_compaction_passes_it() {
    let dir = TempDir::new("straggler");
    let wal_path = dir.path().join("primary.wal");
    let config = MatchConfig::default();
    let (service, repl) = new_primary(&wal_path, &config);
    repl.set_compaction_policy(CompactionPolicy {
        checkpoint: Some(dir.path().join("primary.wal.checkpoint")),
        max_bytes: None,
        grace: Duration::from_secs(10),
    });

    let listener = bind_reusable("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let shutdown = ShutdownSignal::new().expect("shutdown");
    let accept = {
        let service = Arc::clone(&service);
        let repl = Arc::clone(&repl);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || repl::serve_repl_listener(listener, service, repl, shutdown))
    };

    for i in 0..6 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }

    let state = Arc::new(ReplicaState::new(addr.clone()));
    let replica_shutdown = ShutdownSignal::new().expect("replica shutdown");
    let (replica, stream, reader) =
        repl::initial_sync(&addr, &config, Some(2), 1024, &state, &replica_shutdown)
            .expect("initial sync");
    let replica = Arc::new(replica);
    let apply = {
        let replica = Arc::clone(&replica);
        let state = Arc::clone(&state);
        let replica_shutdown = replica_shutdown.clone();
        std::thread::spawn(move || {
            repl::run_replica(&replica, &state, Some((stream, reader)), &replica_shutdown)
        })
    };
    for i in 6..10 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }
    wait_until("replica catch-up", || state.applied() == 10);

    // Disconnect the replica; the primary notices and stops counting it.
    replica_shutdown.trigger();
    apply.join().expect("apply thread").expect("clean stop");
    wait_until("primary to drop the dead link", || repl.replicas() == 0);

    // While it is away, the log is compacted past everything it holds.
    for i in 10..16 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }
    let report = repl.compact(&service).expect("compact");
    assert_eq!(report.horizon, 16);
    assert!(report.dropped_records > 0);
    assert!(
        !repl.can_serve_incremental(10),
        "the straggler's position must be gone from the log"
    );

    // Reconnect with the same state: run_replica re-seeds live.
    let replica_shutdown2 = ShutdownSignal::new().expect("replica shutdown 2");
    let apply2 = {
        let replica = Arc::clone(&replica);
        let state = Arc::clone(&state);
        let replica_shutdown2 = replica_shutdown2.clone();
        std::thread::spawn(move || repl::run_replica(&replica, &state, None, &replica_shutdown2))
    };
    wait_until("live re-seed", || state.applied() == 16);
    assert_eq!(state.reseeds(), 1, "replica must count its re-seed");
    wait_until("primary reseed counter", || repl.reseeds() == 1);
    assert_eq!(state.divergences(), 0);
    assert_eq!(repl.divergences(), 0);

    // The stream continues incrementally after the re-seed.
    for i in 16..18 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }
    wait_until("post-reseed catch-up", || state.applied() == 18);
    assert_eq!(replica.len(), service.len());
    assert_eq!(
        battery(&replica, 18),
        battery(&service, 18),
        "re-seeded replica diverged"
    );

    replica_shutdown2.trigger();
    shutdown.trigger();
    repl.stop_and_join();
    apply2.join().expect("apply2 thread").expect("clean stop");
    accept.join().expect("accept thread").ok();
}

/// A HELLO claiming an LSN past the primary's head is a diverged
/// lineage: the primary refuses loudly instead of serving a rollback.
#[test]
fn hello_ahead_of_the_head_is_refused_as_divergence() {
    let dir = TempDir::new("divergence_primary");
    let wal_path = dir.path().join("primary.wal");
    let config = MatchConfig::default();
    let (service, repl) = new_primary(&wal_path, &config);

    let listener = bind_reusable("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let shutdown = ShutdownSignal::new().expect("shutdown");
    let accept = {
        let service = Arc::clone(&service);
        let repl = Arc::clone(&repl);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || repl::serve_repl_listener(listener, service, repl, shutdown))
    };
    for i in 0..3 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }

    let mut sock = TcpStream::connect(&addr).expect("connect");
    sock.write_all(b"REPL HELLO 99 MMAP\n").expect("hello");
    let mut reply = String::new();
    BufReader::new(&sock)
        .read_line(&mut reply)
        .expect("read reply");
    assert_eq!(reply.trim_end(), "DIVERGED lsn=3", "{reply:?}");
    wait_until("divergence counter", || repl.divergences() == 1);

    shutdown.trigger();
    repl.stop_and_join();
    accept.join().expect("accept thread").ok();
}

/// The replica side of the same refusal: a primary answering `DIVERGED`
/// (here a scripted stand-in that took over the primary's address) is a
/// fatal `NeedsResync`, counted and loud — never a silent rollback.
#[test]
fn replica_treats_diverged_reply_as_fatal() {
    let dir = TempDir::new("divergence_replica");
    let wal_path = dir.path().join("primary.wal");
    let config = MatchConfig::default();
    let (service, repl) = new_primary(&wal_path, &config);

    let listener = bind_reusable("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let shutdown = ShutdownSignal::new().expect("shutdown");
    let accept = {
        let service = Arc::clone(&service);
        let repl = Arc::clone(&repl);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || repl::serve_repl_listener(listener, service, repl, shutdown))
    };
    for i in 0..3 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }

    // Seed a real replica at lsn 3, then tear the real primary down.
    let state = Arc::new(ReplicaState::new(addr.clone()));
    let replica_shutdown = ShutdownSignal::new().expect("replica shutdown");
    let (replica, stream, reader) =
        repl::initial_sync(&addr, &config, Some(2), 1024, &state, &replica_shutdown)
            .expect("initial sync");
    drop((stream, reader));
    assert_eq!(state.applied(), 3);
    shutdown.trigger();
    repl.stop_and_join();
    accept.join().expect("accept thread").ok();

    // A scripted impostor takes over the address and answers the
    // replica's `REPL HELLO 3` with a head behind it.
    let fake = bind_reusable(&addr).expect("rebind primary address");
    let impostor = std::thread::spawn(move || {
        let (conn, _) = fake.accept().expect("accept replica");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut hello = String::new();
        reader.read_line(&mut hello).expect("read hello");
        assert!(hello.starts_with("REPL HELLO 3"), "{hello:?}");
        let mut conn = conn;
        conn.write_all(b"DIVERGED lsn=1\n").expect("write diverged");
    });

    let outcome = repl::run_replica(&replica, &state, None, &replica_shutdown);
    let err = outcome.expect_err("a rollback offer must be fatal");
    assert!(
        matches!(err, repl::ReplError::NeedsResync(_)),
        "wrong error: {err}"
    );
    assert_eq!(state.divergences(), 1);
    impostor.join().expect("impostor thread");
}

/// `can_serve_incremental` edges around a compacted base: the retained
/// suffix serves exactly from its base onward, never before it.
#[test]
fn incremental_serving_edges_around_the_compacted_base() {
    let dir = TempDir::new("serve_edges");
    let wal_path = dir.path().join("primary.wal");
    let config = MatchConfig::default();
    let (service, repl) = new_primary(&wal_path, &config);
    repl.set_compaction_policy(CompactionPolicy {
        checkpoint: Some(dir.path().join("primary.wal.checkpoint")),
        max_bytes: None,
        grace: Duration::from_secs(10),
    });

    for i in 0..10 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }
    let report = repl.compact(&service).expect("compact");
    assert_eq!(report.horizon, 10);
    for i in 10..14 {
        repl.commit_add(&service, &name(i), Language::English)
            .expect("commit");
    }

    // Retained log: records 11..=14 anchored on base 10.
    assert!(!repl.can_serve_incremental(0), "fresh always snapshots");
    assert!(!repl.can_serve_incremental(9), "before the base: truncated");
    assert!(repl.can_serve_incremental(10), "exactly the base");
    assert!(repl.can_serve_incremental(12), "inside the suffix");
    assert!(repl.can_serve_incremental(14), "at the head: nothing owed");
    assert!(!repl.can_serve_incremental(15), "past the head");
}

/// Without a configured checkpoint path, compaction refuses to run —
/// truncating without a durable base would simply lose the prefix.
#[test]
fn compaction_refuses_without_a_checkpoint_path() {
    let dir = TempDir::new("no_checkpoint");
    let wal_path = dir.path().join("primary.wal");
    let config = MatchConfig::default();
    let (service, repl) = new_primary(&wal_path, &config);
    repl.commit_add(&service, &name(0), Language::English)
        .expect("commit");
    let err = repl.compact(&service).expect_err("must refuse");
    assert!(err.contains("checkpoint"), "{err}");
}
