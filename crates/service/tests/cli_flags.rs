//! Black-box tests of the `lexequald` command line: bad flag values
//! must name the flag *and* the value, print the usage line, and exit
//! non-zero — never panic, never start serving. Also covers the full
//! snapshot serving cycle: `--save-snapshot` on one run, `--snapshot`
//! on the next, with a bit-identical MATCH response across the restart.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

fn lexequald() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lexequald"))
}

/// Run the daemon with `args`, expecting it to exit immediately, and
/// return (exit-ok, stderr).
fn run_expect_exit(args: &[&str]) -> (bool, String) {
    let out = lexequald()
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("spawn lexequald");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Assert one bad invocation dies with a message containing every
/// `needles` fragment plus the usage line.
fn assert_usage_error(args: &[&str], needles: &[&str]) {
    let (ok, stderr) = run_expect_exit(args);
    assert!(!ok, "{args:?} must exit non-zero, stderr: {stderr}");
    for needle in needles {
        assert!(
            stderr.contains(needle),
            "{args:?}: {needle:?} not in {stderr:?}"
        );
    }
    assert!(
        stderr.contains("usage:"),
        "{args:?}: no usage line in {stderr:?}"
    );
}

#[test]
fn bad_flag_values_name_the_flag_and_value() {
    // Non-numeric values: the flag and the literal value both appear.
    assert_usage_error(&["--shards", "x"], &["--shards", "\"x\"", "invalid value"]);
    assert_usage_error(&["--cache", "many"], &["--cache", "\"many\""]);
    assert_usage_error(&["--preload", "abc"], &["--preload", "\"abc\""]);
    assert_usage_error(&["--threshold", "huge"], &["--threshold", "\"huge\""]);
    assert_usage_error(&["--workers", "-1"], &["--workers", "\"-1\""]);
    assert_usage_error(&["--max-pipeline", "1.5"], &["--max-pipeline", "\"1.5\""]);
    assert_usage_error(&["--queue", ""], &["--queue", "\"\""]);

    // Parseable but out of range: same shape.
    assert_usage_error(&["--shards", "0"], &["--shards", "\"0\"", "positive"]);
    assert_usage_error(&["--threshold", "9"], &["--threshold", "\"9\"", "[0,1]"]);
    assert_usage_error(&["--workers", "0"], &["--workers", "\"0\""]);
    assert_usage_error(&["--max-line", "4"], &["--max-line", "\"4\""]);

    // Structural errors.
    assert_usage_error(&["--shards"], &["--shards", "needs a value"]);
    assert_usage_error(&["--frobnicate"], &["--frobnicate", "unknown flag"]);
    assert_usage_error(&["--mode", "fast"], &["--mode", "\"fast\""]);
    assert_usage_error(
        &["--snapshot", "s.json", "--preload", "10"],
        &["--snapshot", "--preload", "mutually exclusive"],
    );
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = lexequald().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn missing_and_corrupt_snapshots_fail_cleanly() {
    let (ok, stderr) = run_expect_exit(&["--snapshot", "/nonexistent/lexequal.json"]);
    assert!(!ok);
    assert!(stderr.contains("cannot load snapshot"), "{stderr}");

    let path =
        std::env::temp_dir().join(format!("lexequal_cli_corrupt_{}.json", std::process::id()));
    std::fs::write(&path, b"{ not a snapshot").expect("write corrupt file");
    let (ok, stderr) = run_expect_exit(&["--snapshot", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!ok, "corrupt snapshot must not serve");
    assert!(stderr.contains("cannot load snapshot"), "{stderr}");
}

/// A running daemon child whose stderr is consumed line by line.
struct Server {
    child: Child,
    stderr: BufReader<std::process::ChildStderr>,
    addr: Option<std::net::SocketAddr>,
}

impl Server {
    fn spawn(args: &[&str]) -> Self {
        let mut child = lexequald()
            .args(args)
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn lexequald");
        let stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        Server {
            child,
            stderr,
            addr: None,
        }
    }

    /// Read stderr until the "serving on ADDR" line; return lines seen.
    fn wait_serving(&mut self) -> Vec<String> {
        let mut seen = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.stderr.read_line(&mut line).expect("read stderr");
            assert!(
                n > 0,
                "daemon exited before serving; stderr so far: {seen:?}"
            );
            let line = line.trim_end().to_owned();
            if let Some(rest) = line.strip_prefix("lexequald: serving on ") {
                let addr = rest.split_whitespace().next().expect("addr token");
                self.addr = Some(addr.parse().expect("socket addr"));
                seen.push(line);
                return seen;
            }
            seen.push(line);
        }
    }

    /// One request/response round trip on a fresh connection.
    fn request(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(self.addr.expect("serving")).expect("connect");
        writeln!(stream, "{line}").expect("write");
        let mut reader = BufReader::new(&stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        resp.trim_end().to_owned()
    }

    fn stop(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// The full serving cycle: preload + save a snapshot, restart from it,
/// and assert the restarted daemon answers a MATCH bit-identically.
#[test]
fn snapshot_written_by_one_run_serves_the_next() {
    let snap = std::env::temp_dir().join(format!("lexequal_cli_cycle_{}.json", std::process::id()));
    let snap_str = snap.to_str().unwrap().to_owned();

    let mut first = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "2",
        "--preload",
        "400",
        "--save-snapshot",
        &snap_str,
    ]);
    let lines = first.wait_serving();
    assert!(
        lines.iter().any(|l| l.contains("snapshot saved")),
        "no save line in {lines:?}"
    );
    let query = "MATCH en qgram 0.45 Nehru";
    let before = first.request(query);
    assert!(before.starts_with("OK "), "{before}");
    let names_before = first.request("STATS");
    first.stop();

    // Restart purely from the snapshot — no --preload, no --shards: the
    // store must come back with the snapshot's own shard count.
    let mut second = Server::spawn(&["--addr", "127.0.0.1:0", "--snapshot", &snap_str]);
    let lines = second.wait_serving();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("loaded via mmap") && l.contains("serve-ready")),
        "no mmap load line in {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("2 shard(s)")),
        "snapshot shard count not adopted: {lines:?}"
    );
    // An mmap load rebuilds recorded access paths in the background;
    // until the qgram index is back a method-pinned MATCH answers
    // NOTBUILT, so poll briefly.
    let mut after = second.request(query);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while after.starts_with("NOTBUILT") && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
        after = second.request(query);
    }
    assert_eq!(after, before, "MATCH diverged across the restart");
    // STATS agrees on the corpus size (strip the volatile counters).
    let names = |s: &str| {
        s.split_whitespace()
            .find(|kv| kv.starts_with("names="))
            .map(str::to_owned)
    };
    assert_eq!(names(&names_before), names(&second.request("STATS")));
    second.stop();

    // A --shards pin that disagrees with the snapshot is a clean startup
    // failure pointing at the open re-sharding item.
    let (ok, stderr) = run_expect_exit(&["--snapshot", &snap_str, "--shards", "5"]);
    assert!(!ok, "mismatched --shards must not serve");
    assert!(stderr.contains("2 shard"), "{stderr}");
    assert!(stderr.contains("rebalancing"), "{stderr}");

    std::fs::remove_file(&snap).ok();
}

/// Regression: `--snapshot X --save-snapshot Y` used to save while the
/// background index rebuild was still running, so Y recorded *zero*
/// access paths and a daemon later loaded from Y served scan-only
/// forever (the wire protocol has no BUILD command). Pending rebuilds
/// must now run synchronously before the save, and the written image
/// must record them.
#[test]
fn save_snapshot_after_mmap_load_records_access_paths() {
    let pid = std::process::id();
    let first_snap = std::env::temp_dir().join(format!("lexequal_cli_chain_a_{pid}.snap"));
    let second_snap = std::env::temp_dir().join(format!("lexequal_cli_chain_b_{pid}.snap"));
    let first_str = first_snap.to_str().unwrap().to_owned();
    let second_str = second_snap.to_str().unwrap().to_owned();

    // Seed run: preload builds every access path, then saves.
    let mut seed = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--shards",
        "2",
        "--preload",
        "200",
        "--save-snapshot",
        &first_str,
    ]);
    seed.wait_serving();
    seed.stop();

    // Chained run: load the image, save a new one. The builds the
    // image records must be re-run *before* the save, and the daemon
    // must say so.
    let mut chain = Server::spawn(&[
        "--addr",
        "127.0.0.1:0",
        "--snapshot",
        &first_str,
        "--save-snapshot",
        &second_str,
    ]);
    let lines = chain.wait_serving();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("rebuilt before snapshot save")),
        "no synchronous-rebuild line in {lines:?}"
    );
    // By serving time the paths are built — a method-pinned MATCH must
    // not answer NOTBUILT (no background-rebuild polling window).
    let resp = chain.request("MATCH en qgram 0.45 Nehru");
    assert!(resp.starts_with("OK "), "{resp}");
    chain.stop();

    // The chained image itself records the access paths: a third
    // daemon loading it knows what to rebuild.
    let image = lexequal_service::mmapstore::load_file(
        lexequal::MatchConfig::default(),
        None,
        &second_snap,
    )
    .expect("chained snapshot loads");
    assert_eq!(
        image.builds.len(),
        3,
        "chained snapshot must record qgram + phonetic + bk-tree, got {:?}",
        image.builds
    );

    std::fs::remove_file(&first_snap).ok();
    std::fs::remove_file(&second_snap).ok();
}

#[test]
fn replication_flags_reject_bad_combinations() {
    // Values are required and must look like addresses.
    assert_usage_error(&["--wal"], &["--wal", "needs a value"]);
    assert_usage_error(&["--replica-of"], &["--replica-of", "needs a value"]);
    assert_usage_error(
        &["--replica-of", "nohost"],
        &["--replica-of", "\"nohost\"", "HOST:PORT"],
    );
    assert_usage_error(
        &["--repl-listen", "9999"],
        &["--repl-listen", "\"9999\"", "HOST:PORT"],
    );
    assert_usage_error(
        &["--addr", "localhost"],
        &["--addr", "\"localhost\"", "HOST:PORT"],
    );

    // A replica seeds itself from the primary: local state flags clash.
    for flag in ["--wal", "--snapshot", "--save-snapshot"] {
        assert_usage_error(
            &["--replica-of", "127.0.0.1:9", flag, "x"],
            &["--replica-of", flag, "mutually exclusive"],
        );
    }
    assert_usage_error(
        &["--replica-of", "127.0.0.1:9", "--preload", "10"],
        &["--replica-of", "--preload", "mutually exclusive"],
    );
    assert_usage_error(
        &[
            "--replica-of",
            "127.0.0.1:9",
            "--repl-listen",
            "127.0.0.1:10",
        ],
        &["--replica-of", "--repl-listen", "mutually exclusive"],
    );

    // A dedicated replication listener is a primary-only concept.
    assert_usage_error(
        &["--repl-listen", "127.0.0.1:10"],
        &["--repl-listen", "requires --wal"],
    );
}

#[test]
fn compaction_flags_validate_and_require_a_wal() {
    // Values must parse, and zero bytes is a nonsense bound.
    assert_usage_error(&["--wal-max-bytes"], &["--wal-max-bytes", "needs a value"]);
    assert_usage_error(
        &["--wal", "w", "--wal-max-bytes", "lots"],
        &["--wal-max-bytes", "\"lots\"", "invalid value"],
    );
    assert_usage_error(
        &["--wal", "w", "--wal-max-bytes", "0"],
        &["--wal-max-bytes", "\"0\"", "positive"],
    );
    assert_usage_error(
        &["--wal", "w", "--wal-ack-grace", "soon"],
        &["--wal-ack-grace", "\"soon\"", "invalid value"],
    );

    // Compaction bounds the WAL — without one, both flags are errors.
    assert_usage_error(
        &["--wal-max-bytes", "4096"],
        &["--wal-max-bytes", "requires --wal"],
    );
    assert_usage_error(
        &["--wal-ack-grace", "5"],
        &["--wal-ack-grace", "requires --wal"],
    );
}

#[test]
fn help_lists_the_replication_flags() {
    let out = lexequald().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in [
        "--wal",
        "--replica-of",
        "--repl-listen",
        "--wal-max-bytes",
        "--wal-ack-grace",
    ] {
        assert!(stdout.contains(flag), "{flag} missing from usage: {stdout}");
    }
}
