//! Snapshot round-trip equivalence: a store restored from a snapshot
//! must be indistinguishable from the store that wrote it — bit-identical
//! `SearchResult`s on all four access paths, identical entries under
//! every global id, and identical serving behaviour through
//! `MatchService`. Corrupt or truncated snapshot files must come back
//! as clean `DbError`s, never panics.

use lexequal::{Language, MatchConfig, SearchMethod};
use lexequal_service::loadgen::build_dataset;
use lexequal_service::{MatchOutcome, MatchRequest, MatchService, ServiceConfig, ShardedStore};
use std::path::PathBuf;

/// A self-cleaning temp path.
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        TempPath(std::env::temp_dir().join(format!("lexequal_{}_{name}", std::process::id())))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A populated service: the paper's flagship names plus a slice of the
/// synthetic §5 corpus, all access paths built.
fn populated_service(shards: usize) -> MatchService {
    let config = MatchConfig::default();
    let service = MatchService::new(ServiceConfig {
        match_config: config.clone(),
        shards,
        cache_capacity: 256,
    });
    service
        .extend(
            [
                ("Nehru", Language::English),
                ("नेहरु", Language::Hindi),
                ("நேரு", Language::Tamil),
                ("Nero", Language::English),
                ("Gandhi", Language::English),
                ("गांधी", Language::Hindi),
                ("Krishnan", Language::English),
            ]
            .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
    service.extend_transformed(build_dataset(&config, 150));
    service.build_all(3, lexequal::QgramMode::Strict);
    service
}

const METHODS: [SearchMethod; 4] = [
    SearchMethod::Scan,
    SearchMethod::Qgram,
    SearchMethod::PhoneticIndex,
    SearchMethod::BkTree,
];

/// The query battery both stores must answer identically.
fn battery() -> Vec<(String, Language, f64)> {
    let mut queries = Vec::new();
    for (text, language) in [
        ("Nehru", Language::English),
        ("नेहरु", Language::Hindi),
        ("நேரு", Language::Tamil),
        ("Gandhi", Language::English),
        ("गांधी", Language::Hindi),
        ("Krishnan", Language::English),
        ("Bose", Language::English), // not stored: empty result sets must agree too
    ] {
        for e in [0.0, 0.35, 0.45] {
            queries.push((text.to_owned(), language, e));
        }
    }
    queries
}

#[test]
fn reloaded_service_is_bit_identical_on_all_four_access_paths() {
    let original = populated_service(3);
    let path = TempPath::new("roundtrip.json");
    original.save_snapshot(&path.0).expect("save");

    let loaded =
        MatchService::load_snapshot(MatchConfig::default(), None, 256, &path.0).expect("load");
    assert_eq!(loaded.len(), original.len());
    assert_eq!(loaded.store().shards(), 3);

    // Every rebuilt access path serves without a BUILD.
    for m in METHODS {
        assert!(loaded.is_built(m), "{m:?} lost across the round trip");
    }
    assert_eq!(loaded.default_method(), original.default_method());

    for (text, language, e) in battery() {
        for method in METHODS {
            let req = MatchRequest {
                text: text.clone(),
                language,
                threshold: Some(e),
                method: Some(method),
            };
            let a = original.lookup(&req);
            let b = loaded.lookup(&req);
            assert_eq!(a, b, "{text} e={e} {method:?} diverged after reload");
            // `MatchOutcome` equality covers ids, verifications, method
            // and threshold bit-for-bit; make the match case explicit.
            assert!(
                matches!(a, MatchOutcome::Matches { .. }),
                "{text} {method:?}"
            );
        }
    }
}

#[test]
fn store_level_search_results_survive_the_round_trip() {
    let original = populated_service(2);
    let mut buf = Vec::new();
    original.store().save_to(&mut buf).expect("save");
    let loaded =
        ShardedStore::load_from(MatchConfig::default(), None, buf.as_slice()).expect("load");

    for (text, language, e) in battery() {
        for method in METHODS {
            let a = original.store().search(&text, language, e, method).unwrap();
            let b = loaded.search(&text, language, e, method).unwrap();
            assert_eq!(a, b, "{text} e={e} {method:?}");
        }
    }
}

/// Regression for the `g % N` / `g / N` striping: every global id must
/// resolve to the same `NameEntry` before save and after load — any
/// remap drift in `Cmd::Get` routing would scramble this immediately.
#[test]
fn get_by_global_id_is_stable_across_reload() {
    for shards in [1, 2, 3, 5] {
        let original = populated_service(shards);
        let path = TempPath::new(&format!("idstable_{shards}.json"));
        original.save_snapshot(&path.0).expect("save");
        let loaded =
            MatchService::load_snapshot(MatchConfig::default(), None, 16, &path.0).expect("load");

        assert_eq!(loaded.len(), original.len());
        for id in 0..original.len() as u32 {
            let a = original
                .store()
                .get(id)
                .unwrap_or_else(|| panic!("id {id} before save"));
            let b = loaded
                .store()
                .get(id)
                .unwrap_or_else(|| panic!("id {id} after load"));
            assert_eq!(a.text, b.text, "shards={shards} id={id}");
            assert_eq!(a.language, b.language, "shards={shards} id={id}");
            assert_eq!(a.phonemes, b.phonemes, "shards={shards} id={id}");
        }
        // One past the end stays out of range.
        assert!(loaded.store().get(original.len() as u32).is_none());
    }
}

#[test]
fn corrupted_and_truncated_snapshot_files_error_cleanly() {
    let original = populated_service(2);
    let path = TempPath::new("corrupt.json");
    original.save_snapshot(&path.0).expect("save");
    let full = std::fs::read(&path.0).expect("read snapshot back");

    // Truncations at several offsets, plus outright garbage.
    let mut corpses: Vec<Vec<u8>> = [full.len() / 2, full.len() / 4, 1, 0]
        .iter()
        .map(|&n| full[..n].to_vec())
        .collect();
    corpses.push(b"this is not a snapshot".to_vec());
    corpses.push(vec![0xff, 0xfe, 0x00]); // not even UTF-8

    for (i, bytes) in corpses.iter().enumerate() {
        std::fs::write(&path.0, bytes).expect("write corpse");
        let r = MatchService::load_snapshot(MatchConfig::default(), None, 16, &path.0);
        let err = match r {
            Err(e) => e,
            Ok(_) => panic!("corpse {i} ({} bytes) loaded", bytes.len()),
        };
        // A clean DbError with a message, not a panic.
        assert!(!err.to_string().is_empty());
    }

    // A missing file is also a clean error.
    let gone = TempPath::new("never_written.json");
    assert!(MatchService::load_snapshot(MatchConfig::default(), None, 16, &gone.0).is_err());
}

#[test]
fn shard_count_pin_must_match_the_snapshot() {
    let original = populated_service(2);
    let path = TempPath::new("shardpin.json");
    original.save_snapshot(&path.0).expect("save");

    let err = match MatchService::load_snapshot(MatchConfig::default(), Some(4), 16, &path.0) {
        Err(e) => e,
        Ok(_) => panic!("4-shard load of a 2-shard snapshot must fail"),
    };
    let msg = err.to_string();
    assert!(msg.contains("2 shard"), "{msg}");
    assert!(msg.contains("rebalancing"), "{msg}");

    let ok = MatchService::load_snapshot(MatchConfig::default(), Some(2), 16, &path.0);
    assert!(ok.is_ok(), "matching pin must load");
}

#[test]
fn reloaded_service_keeps_serving_writes_and_rebuilds() {
    // The restored store is a first-class store: appends, rebuilds and
    // a second snapshot generation all work.
    let original = populated_service(2);
    let path = TempPath::new("generations.json");
    original.save_snapshot(&path.0).expect("save");
    let loaded =
        MatchService::load_snapshot(MatchConfig::default(), None, 16, &path.0).expect("load");

    let id = loaded.add("Bose", Language::English).expect("add");
    assert_eq!(id as usize, original.len());
    // The append invalidated the accelerators (scan still serves)...
    assert_eq!(loaded.default_method(), SearchMethod::Scan);
    loaded.build_all(3, lexequal::QgramMode::Strict);
    // ...and a second-generation snapshot round-trips the larger store.
    let path2 = TempPath::new("generations2.json");
    loaded.save_snapshot(&path2.0).expect("save gen2");
    let gen2 =
        MatchService::load_snapshot(MatchConfig::default(), None, 16, &path2.0).expect("load gen2");
    assert_eq!(gen2.len(), loaded.len());
    let req = MatchRequest {
        threshold: Some(0.35),
        ..MatchRequest::new("Bose", Language::English)
    };
    assert_eq!(gen2.lookup(&req), loaded.lookup(&req));
}
