//! Hostile-binary battery for the mmap snapshot format: every
//! corruption an attacker (or a dying disk) can inflict on an image —
//! truncation at every prefix, a full header byte sweep, bad
//! magic/version/endianness, out-of-bounds and misaligned section
//! offsets, checksum flips, and hostile entry records — must come back
//! as a *named* `DbError`, never a panic and never undefined behaviour.
//!
//! The test speaks the on-disk layout directly (header offsets, record
//! shapes, the word-folded FNV-1a section checksum), deliberately
//! re-implementing them here so the format is pinned independently of
//! `mmapstore`'s own constants.

use lexequal::{Language, MatchConfig, SearchMethod};
use lexequal_mdb::DbError;
use lexequal_service::{mmapstore, MatchService, ServiceConfig};

/// Fixed header size: 40 bytes + 6 section-table entries of 24 bytes
/// (a version-2 image; version 1 had 5 entries and a 160-byte header).
const HEADER_LEN: usize = 184;
/// Section-table start and record size.
const TABLE_AT: usize = 40;
const TABLE_RECORD: usize = 24;
/// Section indices in a version-2 image.
const SEC_SPECS: usize = 0;
const SEC_ENTRIES: usize = 1;
const SEC_TEXTS: usize = 2;
const SEC_PHONEMES: usize = 3;
const SEC_CLUSTERS: usize = 4;
const SEC_EMBEDS: usize = 5;
/// Section count in each format version.
const V1_SECTIONS: u32 = 5;
const V2_SECTIONS: usize = 6;
/// Bytes per entry-table record.
const ENTRY_RECORD: usize = 16;

/// The section checksum, re-implemented: FNV-1a folded over
/// little-endian u64 words, the zero-padded tail hashed as one final
/// word. A drift in `mmapstore`'s algorithm fails the pinning test.
fn section_checksum(bytes: &[u8]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = BASIS;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

/// A small populated image: the seven flagship names on two shards,
/// all access paths recorded, covering LSN 9.
fn small_image() -> Vec<u8> {
    let service = MatchService::new(ServiceConfig {
        match_config: MatchConfig::default(),
        shards: 2,
        cache_capacity: 16,
    });
    service
        .extend(
            [
                ("Nehru", Language::English),
                ("नेहरु", Language::Hindi),
                ("நேரு", Language::Tamil),
                ("Nero", Language::English),
                ("Gandhi", Language::English),
                ("गांधी", Language::Hindi),
                ("Krishnan", Language::English),
            ]
            .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
    service.build_all(3, lexequal::QgramMode::Strict);
    mmapstore::encode(service.store(), 9).expect("encode")
}

fn load(bytes: Vec<u8>) -> Result<mmapstore::LoadedImage, DbError> {
    mmapstore::load_bytes(MatchConfig::default(), None, bytes)
}

/// Read section `i`'s (offset, length) from the table.
fn section(image: &[u8], i: usize) -> (usize, usize) {
    let at = TABLE_AT + i * TABLE_RECORD;
    let off = u64::from_le_bytes(image[at..at + 8].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(image[at + 8..at + 16].try_into().unwrap()) as usize;
    (off, len)
}

/// Recompute and store section `i`'s checksum after a payload edit, so
/// a test reaches the *semantic* validation behind the checksum wall.
fn reseal(image: &mut [u8], i: usize) {
    let (off, len) = section(image, i);
    let sum = section_checksum(&image[off..off + len]);
    let at = TABLE_AT + i * TABLE_RECORD + 16;
    image[at..at + 8].copy_from_slice(&sum.to_le_bytes());
}

/// Load must fail with a `Parse` error naming the problem.
fn expect_named_err(bytes: Vec<u8>, needle: &str) {
    match load(bytes) {
        Err(DbError::Parse(msg)) => assert!(
            msg.contains(needle),
            "error {msg:?} does not name {needle:?}"
        ),
        Err(other) => panic!("expected Parse({needle:?}), got {other:?}"),
        Ok(_) => panic!("hostile image loaded instead of erroring with {needle:?}"),
    }
}

#[test]
fn pristine_image_loads_and_checksums_are_pinned() {
    let image = small_image();
    let loaded = load(image.clone()).expect("pristine image");
    assert_eq!(loaded.lsn, 9);
    assert_eq!(loaded.store.len(), 7);
    assert_eq!(loaded.builds.len(), 3);
    assert!(!loaded.pending_embeds, "v2 images persist embeddings");
    // Every stored checksum matches this test's independent FNV — the
    // algorithm is pinned, not just internally consistent.
    for i in 0..V2_SECTIONS {
        let (off, len) = section(&image, i);
        let at = TABLE_AT + i * TABLE_RECORD + 16;
        let stored = u64::from_le_bytes(image[at..at + 8].try_into().unwrap());
        assert_eq!(
            stored,
            section_checksum(&image[off..off + len]),
            "section {i} checksum algorithm drifted"
        );
    }
}

#[test]
fn truncation_at_every_prefix_errors_cleanly() {
    let image = small_image();
    for len in 0..image.len() {
        let outcome = load(image[..len].to_vec());
        assert!(
            outcome.is_err(),
            "truncation to {len}/{} bytes loaded successfully",
            image.len()
        );
    }
}

#[test]
fn header_byte_sweep_never_panics() {
    let image = small_image();
    for i in 0..HEADER_LEN {
        let mut hostile = image.clone();
        hostile[i] ^= 0xFF;
        let outcome = load(hostile);
        // Magic, version, endianness, entry count, section count and
        // the whole section table are integrity-critical: any flipped
        // byte there must be rejected. The LSN, the reserved word and
        // (some) shard-count bytes are data, not framing — a flip there
        // may load, but must never panic (the call returning at all is
        // that assertion).
        let must_reject = i < 16 || (20..24).contains(&i) || (32..36).contains(&i) || i >= TABLE_AT;
        if must_reject {
            assert!(outcome.is_err(), "flipped header byte {i} loaded anyway");
        }
    }
}

#[test]
fn bad_magic_version_endianness_and_counts_are_named() {
    let image = small_image();

    let mut bad_magic = image.clone();
    bad_magic[0] = b'X';
    expect_named_err(bad_magic, "bad magic");

    let mut bad_version = image.clone();
    bad_version[8..12].copy_from_slice(&3u32.to_le_bytes());
    expect_named_err(bad_version, "unsupported format version 3");

    let mut bad_endian = image.clone();
    bad_endian[12..16].copy_from_slice(&0x0403_0201u32.to_le_bytes());
    expect_named_err(bad_endian, "endianness tag");

    let mut zero_shards = image.clone();
    zero_shards[16..20].copy_from_slice(&0u32.to_le_bytes());
    expect_named_err(zero_shards, "zero shard count");

    // A hostile shard count would spawn that many worker threads; the
    // loader caps it long before the allocator or the OS has to.
    let mut huge_shards = image.clone();
    huge_shards[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    expect_named_err(huge_shards, "implausible shard count");

    let mut bad_entry_count = image.clone();
    bad_entry_count[20..24].copy_from_slice(&6u32.to_le_bytes());
    expect_named_err(bad_entry_count, "6 entries need");

    let mut bad_section_count = image.clone();
    bad_section_count[32..36].copy_from_slice(&4u32.to_le_bytes());
    expect_named_err(bad_section_count, "section count 4");
}

#[test]
fn oob_and_misaligned_sections_are_named() {
    let image = small_image();
    let off_at = TABLE_AT + SEC_TEXTS * TABLE_RECORD;
    let len_at = off_at + 8;

    // Offset far past the file (kept 8-byte aligned so the bounds
    // check, not the alignment check, fires).
    let mut far = image.clone();
    far[off_at..off_at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    expect_named_err(far, "section 2 is out of bounds");

    // Offset pointing back into the header.
    let mut inside_header = image.clone();
    inside_header[off_at..off_at + 8].copy_from_slice(&8u64.to_le_bytes());
    expect_named_err(inside_header, "section 2 overlaps the header");

    // Offset off the 8-byte grid.
    let (text_off, _) = section(&image, SEC_TEXTS);
    let mut misaligned = image.clone();
    misaligned[off_at..off_at + 8].copy_from_slice(&((text_off as u64) + 4).to_le_bytes());
    expect_named_err(misaligned, "section 2 is misaligned");

    // Length that overflows offset + length.
    let mut huge_len = image.clone();
    huge_len[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    expect_named_err(huge_len, "section 2 is out of bounds");
}

#[test]
fn checksum_flip_in_every_section_is_caught() {
    let image = small_image();
    for i in 0..V2_SECTIONS {
        let (off, len) = section(&image, i);
        assert!(len > 0, "section {i} unexpectedly empty");
        let mut flipped = image.clone();
        flipped[off] ^= 0xFF;
        expect_named_err(flipped, &format!("section {i} checksum mismatch"));
    }
}

#[test]
fn hostile_entry_records_are_named() {
    let image = small_image();
    let (ent_off, ent_len) = section(&image, SEC_ENTRIES);
    assert_eq!(ent_len % ENTRY_RECORD, 0);

    // Text window pointing far outside the arena. The checksum is
    // resealed so the *window* validation, not the checksum, answers.
    let mut oob_text = image.clone();
    oob_text[ent_off..ent_off + 4].copy_from_slice(&0xFFFF_0000u32.to_le_bytes());
    reseal(&mut oob_text, SEC_ENTRIES);
    expect_named_err(oob_text, "entry 0: text window is out of bounds");

    // Phoneme window likewise.
    let mut oob_phon = image.clone();
    oob_phon[ent_off + 4..ent_off + 8].copy_from_slice(&0xFFFF_0000u32.to_le_bytes());
    reseal(&mut oob_phon, SEC_ENTRIES);
    expect_named_err(oob_phon, "entry 0: phoneme window is out of bounds");

    // A language tag past `Language::ALL`.
    let mut bad_lang = image.clone();
    bad_lang[ent_off + 12] = 200;
    reseal(&mut bad_lang, SEC_ENTRIES);
    expect_named_err(bad_lang, "entry 0: unknown language tag 200");

    // Shift a multiscript entry's window one byte right: the start now
    // lands inside a Devanagari/Tamil UTF-8 sequence (the end stays on
    // a boundary because the length shrinks by one).
    let (text_off, _) = section(&image, SEC_TEXTS);
    let mut split = image.clone();
    let mut split_entry = None;
    for g in 0..ent_len / ENTRY_RECORD {
        let rec = ent_off + g * ENTRY_RECORD;
        let t_off = u32::from_le_bytes(image[rec..rec + 4].try_into().unwrap());
        let t_len = u16::from_le_bytes(image[rec + 8..rec + 10].try_into().unwrap());
        if t_len > 1 && image[text_off + t_off as usize] >= 0xC0 {
            split[rec..rec + 4].copy_from_slice(&(t_off + 1).to_le_bytes());
            split[rec + 8..rec + 10].copy_from_slice(&(t_len - 1).to_le_bytes());
            split_entry = Some(g);
            break;
        }
    }
    let g = split_entry.expect("corpus holds a multibyte-script entry");
    reseal(&mut split, SEC_ENTRIES);
    expect_named_err(
        split,
        &format!("entry {g}: text window splits a UTF-8 sequence"),
    );
}

#[test]
fn hostile_arenas_and_specs_are_named() {
    let image = small_image();

    // A text-arena byte smashed to a UTF-8 continuation-only value.
    let (text_off, text_len) = section(&image, SEC_TEXTS);
    assert!(text_len > 0);
    let mut bad_utf8 = image.clone();
    bad_utf8[text_off] = 0xFF;
    reseal(&mut bad_utf8, SEC_TEXTS);
    expect_named_err(bad_utf8, "text arena is not valid UTF-8");

    // A phoneme byte outside the inventory.
    let (phon_off, phon_len) = section(&image, SEC_PHONEMES);
    assert!(phon_len > 0);
    let mut bad_phoneme = image.clone();
    bad_phoneme[phon_off] = 0xFE;
    reseal(&mut bad_phoneme, SEC_PHONEMES);
    expect_named_err(bad_phoneme, "outside the inventory");

    // A cluster id that disagrees with the configured cost model.
    let (clus_off, clus_len) = section(&image, SEC_CLUSTERS);
    assert_eq!(clus_len, phon_len, "arenas must be parallel twins");
    let mut bad_cluster = image.clone();
    bad_cluster[clus_off] ^= 1;
    reseal(&mut bad_cluster, SEC_CLUSTERS);
    expect_named_err(bad_cluster, "disagree with the configured cost model");

    // Cluster arena shorter than the phoneme arena (checksum resealed
    // over the shortened payload, so the parallel-twin check answers).
    let len_at = TABLE_AT + SEC_CLUSTERS * TABLE_RECORD + 8;
    let mut short_clusters = image.clone();
    short_clusters[len_at..len_at + 8].copy_from_slice(&((clus_len as u64) - 1).to_le_bytes());
    reseal(&mut short_clusters, SEC_CLUSTERS);
    expect_named_err(short_clusters, "not parallel to the phoneme arena");

    // Unknown build-spec tag and q-gram mode.
    let (spec_off, spec_len) = section(&image, SEC_SPECS);
    assert!(spec_len >= 8, "three recorded builds expected");
    let mut bad_tag = image.clone();
    bad_tag[spec_off] = 9;
    reseal(&mut bad_tag, SEC_SPECS);
    expect_named_err(bad_tag, "unknown build-spec tag 9");

    let qgram_rec = (0..spec_len / 8)
        .map(|i| spec_off + i * 8)
        .find(|&at| image[at] == 0)
        .expect("a recorded q-gram spec");
    let mut bad_mode = image.clone();
    bad_mode[qgram_rec + 2] = 7;
    reseal(&mut bad_mode, SEC_SPECS);
    expect_named_err(bad_mode, "unknown q-gram mode 7");

    // Spec section length that is not a record multiple.
    let spec_len_at = TABLE_AT + SEC_SPECS * TABLE_RECORD + 8;
    let mut ragged = image.clone();
    ragged[spec_len_at..spec_len_at + 8].copy_from_slice(&((spec_len as u64) - 1).to_le_bytes());
    reseal(&mut ragged, SEC_SPECS);
    expect_named_err(ragged, "not a record multiple");
}

/// Bytes per stored phonetic embedding, pinned independently of
/// `lexequal::EMBED_DIM`.
const EMBED_BYTES: usize = 32;

/// A version-1 image — synthesized by re-tagging a v2 image, since v1
/// differs only in the version word, the section count, and the absent
/// embedding arena (the sixth table record reads back as pre-section
/// padding) — must keep loading: entries come up without embeddings,
/// answers are identical with the embedding screen bypassing per row,
/// and `build_embeddings` backfills off the critical path.
#[test]
fn v1_images_load_with_deferred_embeddings() {
    let image = small_image();
    let mut v1 = image.clone();
    v1[8..12].copy_from_slice(&1u32.to_le_bytes());
    v1[32..36].copy_from_slice(&V1_SECTIONS.to_le_bytes());

    let modern = load(image).expect("v2 image");
    let legacy = load(v1).expect("v1 image must keep loading");
    assert!(legacy.pending_embeds, "v1 loads defer the embedding column");
    assert_eq!(legacy.store.pending_embeddings(), 7);
    assert_eq!(legacy.lsn, modern.lsn);
    assert_eq!(legacy.store.len(), modern.store.len());
    assert_eq!(legacy.builds.len(), modern.builds.len());

    // Identical answers while the column is missing (the screen
    // bypasses per entry rather than guessing)...
    let a = modern
        .store
        .search("Nehru", Language::English, 0.45, SearchMethod::Scan)
        .unwrap();
    let b = legacy
        .store
        .search("Nehru", Language::English, 0.45, SearchMethod::Scan)
        .unwrap();
    assert_eq!(a, b);
    let screens = legacy.store.screen_totals();
    assert!(screens.embed_bypass > 0, "{screens:?}");
    assert_eq!(screens.embed_reject, 0, "{screens:?}");

    // ...and identical again once the backfill restores the screen.
    assert_eq!(legacy.store.build_embeddings(), 7);
    assert_eq!(legacy.store.pending_embeddings(), 0);
    let c = legacy
        .store
        .search("Nehru", Language::English, 0.45, SearchMethod::Scan)
        .unwrap();
    assert_eq!(a, c);
}

#[test]
fn hostile_embedding_arenas_are_named() {
    let image = small_image();
    let (emb_off, emb_len) = section(&image, SEC_EMBEDS);
    assert_eq!(emb_len, 7 * EMBED_BYTES, "arena stride drifted");

    // A doctored embedding behind a resealed checksum: the per-entry
    // recompute-and-compare, not the checksum wall, must answer — a
    // wrong vector could silently drop true matches.
    let mut doctored = image.clone();
    doctored[emb_off] ^= 0xFF;
    reseal(&mut doctored, SEC_EMBEDS);
    expect_named_err(doctored, "entry 0: stored embedding disagrees");

    // Arena length off the per-entry stride (resealed over the
    // shortened payload, so the shape check answers).
    let len_at = TABLE_AT + SEC_EMBEDS * TABLE_RECORD + 8;
    let mut ragged = image.clone();
    ragged[len_at..len_at + 8].copy_from_slice(&((emb_len as u64) - 1).to_le_bytes());
    reseal(&mut ragged, SEC_EMBEDS);
    expect_named_err(ragged, "embedding arena holds");

    // A whole missing row is the same shape violation: v2 images may
    // not smuggle in a partially-populated column.
    let mut missing_row = image.clone();
    missing_row[len_at..len_at + 8]
        .copy_from_slice(&((emb_len - EMBED_BYTES) as u64).to_le_bytes());
    reseal(&mut missing_row, SEC_EMBEDS);
    expect_named_err(missing_row, "embedding arena holds");

    // An unsealed payload flip trips the checksum first (the sweep in
    // `checksum_flip_in_every_section_is_caught` covers every section;
    // this pins the message for the new one).
    let mut bad_sum = image.clone();
    bad_sum[emb_off] ^= 0xFF;
    expect_named_err(bad_sum, &format!("section {SEC_EMBEDS} checksum mismatch"));
}

#[test]
fn garbage_and_tiny_files_error_cleanly() {
    expect_named_err(Vec::new(), "file too small");
    expect_named_err(vec![0x41; 32], "file too small");
    expect_named_err(vec![0xAB; 4096], "bad magic");

    // Correct magic, garbage everything else.
    let mut magic_only = vec![0xAB; 4096];
    magic_only[..8].copy_from_slice(&mmapstore::MAGIC);
    expect_named_err(magic_only, "unsupported format version");
}

#[test]
fn shard_pin_mismatch_is_a_contract_error_not_corruption() {
    let image = small_image();
    match mmapstore::load_bytes(MatchConfig::default(), Some(3), image) {
        Err(DbError::Unsupported(msg)) => {
            assert!(msg.contains("2 shard(s) but 3 were requested"), "{msg}");
            assert!(msg.contains("re-striping"), "{msg}");
        }
        Err(other) => panic!("expected Unsupported, got {other:?}"),
        Ok(_) => panic!("shard-pinned load succeeded against a 2-shard image"),
    }
}
