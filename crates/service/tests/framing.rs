//! Socket-level framing edge cases against the evented daemon: request
//! lines split across arbitrarily small writes, many lines arriving in
//! one write, CRLF endings, and oversized-line rejection. These are the
//! cases a readiness loop must get right that a blocking
//! `BufReader::read_line` handler gets for free.

use lexequal_service::event_loop::{serve_evented, ShutdownSignal};
use lexequal_service::{MatchService, ServeOptions, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn spawn_evented(
    opts: ServeOptions,
) -> (
    std::net::SocketAddr,
    ShutdownSignal,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let service = Arc::new(MatchService::new(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    }));
    service
        .extend([
            ("Nehru".to_owned(), lexequal::Language::English),
            ("नेहरु".to_owned(), lexequal::Language::Hindi),
        ])
        .expect("seed names");
    service.build_all(3, lexequal::QgramMode::Strict);
    let shutdown = ShutdownSignal::new().expect("shutdown");
    let sd = shutdown.clone();
    let handle = std::thread::spawn(move || serve_evented(listener, service, opts, sd));
    (addr, shutdown, handle)
}

#[test]
fn a_request_split_into_single_bytes_still_parses() {
    let (addr, shutdown, handle) = spawn_evented(ServeOptions::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Dribble the request one byte per write — including mid-UTF-8
    // splits inside नेहरु — with small pauses so each byte lands in its
    // own readiness event.
    let request = "MATCH hi qgram 0.45 नेहरु\n";
    for chunk in request.as_bytes().chunks(1) {
        stream.write_all(chunk).expect("write byte");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("OK n="), "{line}");
    assert!(
        line.contains("ids=0,1"),
        "cross-script pair missing: {line}"
    );
    shutdown.trigger();
    handle.join().unwrap().unwrap();
}

#[test]
fn many_lines_in_one_write_pipeline_in_order() {
    let (addr, shutdown, handle) = spawn_evented(ServeOptions::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    // One write, five requests, mixed endings and a blank line (which
    // produces no response). Responses must come back in order. The
    // MATCH uses scan because the preceding ADD invalidates built
    // indexes (this test is about framing, not index lifecycle).
    let burst = "ADD en Bose\r\nMATCH en scan 0.45 Nehru\n\nADD en Tagore\nSTATS\n";
    stream.write_all(burst.as_bytes()).expect("write burst");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut lines = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        lines.push(line.trim_end().to_owned());
    }
    assert_eq!(lines[0], "OK 2", "{lines:?}");
    assert!(lines[1].starts_with("OK n="), "{lines:?}");
    assert!(lines[1].contains("ids=0,1"), "{lines:?}");
    assert_eq!(lines[2], "OK 3", "{lines:?}");
    assert!(lines[3].starts_with("OK names=4"), "{lines:?}");
    // The daemon saw the whole burst as a pipeline, depth > 1.
    let depth: u64 = lines[3]
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("pipeline_max="))
        .expect("pipeline_max in STATS")
        .parse()
        .expect("number");
    assert!(depth >= 2, "burst not pipelined: {}", lines[3]);
    shutdown.trigger();
    handle.join().unwrap().unwrap();
}

#[test]
fn an_oversized_line_answers_err_and_closes() {
    let opts = ServeOptions {
        max_line: 64,
        ..ServeOptions::default()
    };
    let (addr, shutdown, handle) = spawn_evented(opts);
    let mut stream = TcpStream::connect(addr).expect("connect");
    // 200 bytes with no newline: rejected on length alone, no waiting
    // for a terminator that may never come.
    stream.write_all(&[b'A'; 200]).expect("write oversized");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.starts_with("ERR line exceeds"),
        "expected oversized rejection, got {line:?}"
    );
    // The daemon closes the connection after the error: EOF follows.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "{rest:?}");

    // A fresh connection still works; the daemon survived.
    let mut c2 = TcpStream::connect(addr).expect("reconnect");
    c2.write_all(b"MATCH en qgram 0.45 Nehru\n").expect("write");
    let mut reader = BufReader::new(c2);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("OK n="), "{line}");
    shutdown.trigger();
    handle.join().unwrap().unwrap();
}

#[test]
fn invalid_utf8_answers_err_and_closes() {
    let (addr, shutdown, handle) = spawn_evented(ServeOptions::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"MATCH en qgram 0.45 \xff\xfe\n")
        .expect("write bad bytes");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR invalid utf-8"), "{line:?}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "{rest:?}");
    shutdown.trigger();
    handle.join().unwrap().unwrap();
}
