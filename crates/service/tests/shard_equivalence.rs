//! Sharding must be invisible: a [`ShardedStore`] with any shard count
//! returns exactly the same global id set as an unsharded [`NameStore`]
//! over the same data, for every access path.
//!
//! This holds because every access path's candidate predicate is
//! pairwise (query vs one stored string) — partitioning the collection
//! cannot change which pairs pass — and because global id striping is a
//! bijection (`id % N` → shard, `id / N` → local slot). The tests pin
//! both facts: shard counts that divide the data evenly (2, 4) and one
//! that doesn't (7), all four methods, and concurrent searchers racing
//! the same store.

use lexequal::{MatchConfig, NameStore, QgramMode, SearchMethod};
use lexequal_lexicon::Corpus;
use lexequal_service::shard::{BuildSpec, ShardedStore};
use std::sync::Arc;

const THRESHOLD: f64 = 0.3;

const METHODS: [SearchMethod; 4] = [
    SearchMethod::Scan,
    SearchMethod::Qgram,
    SearchMethod::PhoneticIndex,
    SearchMethod::BkTree,
];

fn corpus_rows() -> Vec<(String, lexequal::Language)> {
    let corpus = Corpus::build(&MatchConfig::default());
    corpus
        .entries
        .iter()
        .filter(|e| e.tag % 7 == 0) // a multiscript slice, kept fast
        .map(|e| (e.text.clone(), e.language))
        .collect()
}

fn reference_store(rows: &[(String, lexequal::Language)]) -> NameStore {
    let mut store = NameStore::new(MatchConfig::default());
    store.extend(rows.iter().cloned()).expect("bulk load");
    store.build_qgram(3, QgramMode::Strict);
    store.build_phonetic_index();
    store.build_bktree();
    store
}

fn sharded_store(rows: &[(String, lexequal::Language)], shards: usize) -> ShardedStore {
    let store = ShardedStore::new(MatchConfig::default(), shards);
    store.extend(rows.iter().cloned()).expect("bulk load");
    store.build(BuildSpec::Qgram {
        q: 3,
        mode: QgramMode::Strict,
    });
    store.build(BuildSpec::PhoneticIndex);
    store.build(BuildSpec::BkTree);
    store
}

fn query_ids(len: usize) -> impl Iterator<Item = u32> {
    (0..len as u32).step_by(29)
}

#[test]
fn every_shard_count_matches_the_unsharded_store_on_every_method() {
    let rows = corpus_rows();
    assert!(rows.len() > 100, "slice too small: {}", rows.len());
    let reference = reference_store(&rows);

    for shards in [2, 4, 7] {
        let sharded = sharded_store(&rows, shards);
        assert_eq!(sharded.len(), reference.len());

        // Ids address the same entries in both stores.
        for id in query_ids(rows.len()) {
            let a = reference.get(id).expect("reference id");
            let b = sharded.get(id).expect("sharded id");
            assert_eq!(a.text, b.text, "id {id} diverges at {shards} shards");
            assert_eq!(a.phonemes, b.phonemes);
        }

        for method in METHODS {
            for id in query_ids(rows.len()) {
                let q = &reference.get(id).expect("valid id").phonemes;
                let want = reference.search_phonemes(q, THRESHOLD, method);
                let got = sharded.search_phonemes(q, THRESHOLD, method);
                assert_eq!(
                    got.ids, want.ids,
                    "{method:?} diverges for id {id} at {shards} shards"
                );
                assert_eq!(
                    got.verifications, want.verifications,
                    "{method:?} does different verification work at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn concurrent_searchers_agree_with_sequential_answers() {
    let rows = corpus_rows();
    let reference = reference_store(&rows);
    let sharded = Arc::new(sharded_store(&rows, 4));

    // Sequential ground truth for a spread of queries, via the q-gram
    // path (strict: no dismissals) and the scan.
    let cases: Vec<(u32, SearchMethod)> = query_ids(rows.len())
        .flat_map(|id| [(id, SearchMethod::Scan), (id, SearchMethod::Qgram)])
        .collect();
    let expected: Vec<Vec<u32>> = cases
        .iter()
        .map(|&(id, m)| {
            let q = &reference.get(id).expect("valid id").phonemes;
            reference.search_phonemes(q, THRESHOLD, m).ids
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let sharded = Arc::clone(&sharded);
            let reference = &reference;
            let cases = &cases;
            let expected = &expected;
            scope.spawn(move || {
                // Each thread walks the cases at a different phase so the
                // in-flight mix differs per thread.
                for k in 0..cases.len() {
                    let i = (k + t * 13) % cases.len();
                    let (id, m) = cases[i];
                    let q = &reference.get(id).expect("valid id").phonemes;
                    let got = sharded.search_phonemes(q, THRESHOLD, m);
                    assert_eq!(got.ids, expected[i], "thread {t}, case {i}");
                }
            });
        }
    });
}
