//! Binary mmap snapshot round-trip equivalence: a store served out of
//! the mapping must be indistinguishable from the store that wrote the
//! image — bit-identical `MatchOutcome`s on all four access paths,
//! identical entries under every global id, identical answers through
//! both serving modes, and a replica seeded from the raw transfer bytes
//! answering exactly like its primary.

use lexequal::{Language, MatchConfig, SearchMethod};
use lexequal_service::loadgen::build_dataset;
use lexequal_service::service::SnapshotFormat;
use lexequal_service::{
    mmapstore, serve_with, MatchOutcome, MatchRequest, MatchService, ServeMode, ServeOptions,
    ServiceConfig, ShutdownSignal,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

/// A self-cleaning temp path.
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        TempPath(std::env::temp_dir().join(format!("lexequal_mm_{}_{name}", std::process::id())))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A populated service: the paper's flagship names plus a slice of the
/// synthetic §5 corpus, all access paths built.
fn populated_service(shards: usize) -> MatchService {
    let config = MatchConfig::default();
    let service = MatchService::new(ServiceConfig {
        match_config: config.clone(),
        shards,
        cache_capacity: 256,
    });
    service
        .extend(
            [
                ("Nehru", Language::English),
                ("नेहरु", Language::Hindi),
                ("நேரு", Language::Tamil),
                ("Nero", Language::English),
                ("Gandhi", Language::English),
                ("गांधी", Language::Hindi),
                ("Krishnan", Language::English),
            ]
            .map(|(t, l)| (t.to_owned(), l)),
        )
        .unwrap();
    service.extend_transformed(build_dataset(&config, 150));
    service.build_all(3, lexequal::QgramMode::Strict);
    service
}

const METHODS: [SearchMethod; 4] = [
    SearchMethod::Scan,
    SearchMethod::Qgram,
    SearchMethod::PhoneticIndex,
    SearchMethod::BkTree,
];

/// Wire-protocol tag for a battery language.
fn lang_tag(language: Language) -> &'static str {
    match language {
        Language::English => "en",
        Language::Hindi => "hi",
        Language::Tamil => "ta",
        other => panic!("battery uses no {other:?} queries"),
    }
}

/// The query battery both stores must answer identically.
fn battery() -> Vec<(String, Language, f64)> {
    let mut queries = Vec::new();
    for (text, language) in [
        ("Nehru", Language::English),
        ("नेहरु", Language::Hindi),
        ("நேரு", Language::Tamil),
        ("Gandhi", Language::English),
        ("गांधी", Language::Hindi),
        ("Krishnan", Language::English),
        ("Bose", Language::English), // not stored: empty result sets must agree too
    ] {
        for e in [0.0, 0.35, 0.45] {
            queries.push((text.to_owned(), language, e));
        }
    }
    queries
}

/// Run the battery over every access path on both services and demand
/// bit-identical outcomes.
fn assert_identical(original: &MatchService, loaded: &MatchService, what: &str) {
    for method in METHODS {
        for (text, language, threshold) in battery() {
            let req = MatchRequest {
                threshold: Some(threshold),
                method: Some(method),
                ..MatchRequest::new(&text, language)
            };
            let a = original.lookup(&req);
            let b = loaded.lookup(&req);
            assert_eq!(
                a, b,
                "{what}: {method:?} {text:?} e={threshold} diverged across the round trip"
            );
            assert!(
                matches!(a, MatchOutcome::Matches { .. }),
                "{what}: expected a served outcome, got {a:?}"
            );
        }
    }
    // Every entry under every global id survives byte-for-byte.
    assert_eq!(original.len(), loaded.len(), "{what}: corpus size");
    for id in 0..original.len() as u32 {
        let a = original
            .store()
            .get(id)
            .unwrap_or_else(|| panic!("{what}: id {id} missing in original"));
        let b = loaded
            .store()
            .get(id)
            .unwrap_or_else(|| panic!("{what}: id {id} missing in loaded"));
        assert_eq!(a.text, b.text, "{what}: entry {id} text");
        assert_eq!(a.language, b.language, "{what}: entry {id} language");
        assert_eq!(a.phonemes, b.phonemes, "{what}: entry {id} phonemes");
    }
    assert!(loaded.store().get(original.len() as u32).is_none());
}

#[test]
fn default_save_writes_the_binary_format() {
    let service = populated_service(2);
    let path = TempPath::new("default.snap");
    service.save_snapshot(&path.0).expect("save");
    assert!(
        mmapstore::sniff_file(&path.0),
        "default save is not the binary format"
    );
    let bytes = std::fs::read(&path.0).expect("read image");
    assert!(mmapstore::is_binary(&bytes));
    assert_eq!(
        mmapstore::peek(&bytes).map(|(_, n)| n as usize),
        Some(service.len())
    );
}

#[test]
fn mmap_reload_is_bit_identical_on_all_four_access_paths() {
    let original = populated_service(3);
    let path = TempPath::new("roundtrip.snap");
    original.save_snapshot(&path.0).expect("save");

    // `load_snapshot` rebuilds the recorded access paths synchronously.
    let loaded =
        MatchService::load_snapshot(MatchConfig::default(), None, 256, &path.0).expect("load");
    assert_eq!(loaded.load_info().format, "mmap");
    assert!(loaded.load_info().mapped_bytes > 0);
    assert_identical(&original, &loaded, "mmap reload");
}

#[test]
fn deferred_builds_serve_scans_first_then_everything() {
    let original = populated_service(2);
    let path = TempPath::new("deferred.snap");
    original.save_snapshot(&path.0).expect("save");

    let load =
        MatchService::load_snapshot_auto(MatchConfig::default(), None, 256, &path.0).expect("load");
    assert_eq!(load.pending_builds.len(), 3, "three recorded access paths");
    // Serve-ready means the scan path answers before any index exists.
    let req = MatchRequest {
        threshold: Some(0.45),
        method: Some(SearchMethod::Scan),
        ..MatchRequest::new("Nehru", Language::English)
    };
    let scan_before = load.service.lookup(&req);
    assert_eq!(scan_before, original.lookup(&req), "scan before builds");
    // A method-pinned lookup on an unbuilt path degrades, not errors.
    let qgram_req = MatchRequest {
        method: Some(SearchMethod::Qgram),
        ..req.clone()
    };
    assert!(matches!(
        load.service.lookup(&qgram_req),
        MatchOutcome::NotBuilt { .. }
    ));
    for spec in load.pending_builds {
        load.service.build(spec);
    }
    assert_identical(&original, &load.service, "after deferred builds");
}

#[test]
fn json_and_mmap_loads_agree_with_each_other() {
    let original = populated_service(2);
    let json_path = TempPath::new("agree.json");
    let mmap_path = TempPath::new("agree.snap");
    original
        .save_snapshot_with_lsn_format(&json_path.0, 7, SnapshotFormat::Json)
        .expect("save json");
    original
        .save_snapshot_with_lsn_format(&mmap_path.0, 7, SnapshotFormat::Mmap)
        .expect("save mmap");
    assert!(!mmapstore::sniff_file(&json_path.0));
    assert!(mmapstore::sniff_file(&mmap_path.0));

    let (from_json, json_lsn) =
        MatchService::load_snapshot_with_lsn(MatchConfig::default(), None, 256, &json_path.0)
            .expect("load json");
    let (from_mmap, mmap_lsn) =
        MatchService::load_snapshot_with_lsn(MatchConfig::default(), None, 256, &mmap_path.0)
            .expect("load mmap");
    assert_eq!(json_lsn, 7);
    assert_eq!(mmap_lsn, 7);
    assert_eq!(from_json.load_info().format, "json");
    assert_eq!(from_mmap.load_info().format, "mmap");
    assert_identical(&from_json, &from_mmap, "json vs mmap");
}

#[test]
fn second_generation_image_stays_identical() {
    let original = populated_service(2);
    let first = TempPath::new("gen1.snap");
    let second = TempPath::new("gen2.snap");
    original.save_snapshot(&first.0).expect("save gen1");
    let gen1 =
        MatchService::load_snapshot(MatchConfig::default(), None, 256, &first.0).expect("load");
    gen1.save_snapshot(&second.0).expect("save gen2");
    let gen2 =
        MatchService::load_snapshot(MatchConfig::default(), None, 256, &second.0).expect("load");
    assert_identical(&original, &gen2, "second generation");
    // Shared views round-trip through `encode` byte-for-byte, so the
    // two generations are the same file.
    assert_eq!(
        std::fs::read(&first.0).expect("gen1 bytes"),
        std::fs::read(&second.0).expect("gen2 bytes"),
        "second-generation image diverged"
    );
}

#[test]
fn replica_seeded_from_raw_transfer_bytes_matches_the_primary() {
    let primary = populated_service(2);
    // What the primary's sender thread ships: the encoded image, raw.
    let transfer = mmapstore::encode(primary.store(), 42).expect("encode");
    let image =
        mmapstore::load_bytes(MatchConfig::default(), None, transfer).expect("load transfer");
    assert_eq!(image.lsn, 42);
    let replica = MatchService::from_store(image.store, 256);
    for spec in image.builds {
        replica.build(spec);
    }
    assert_identical(&primary, &replica, "replica seeding");
}

/// Line-protocol client against an in-process daemon.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("write");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        reply.trim_end().to_owned()
    }
}

struct Daemon {
    addr: std::net::SocketAddr,
    shutdown: ShutdownSignal,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    fn spawn(mode: ServeMode, service: Arc<MatchService>) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = ShutdownSignal::new().expect("shutdown signal");
        let sd = shutdown.clone();
        let handle = std::thread::spawn(move || {
            serve_with(mode, listener, service, ServeOptions::default(), sd)
        });
        Daemon {
            addr,
            shutdown,
            handle,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.handle.join().expect("serve thread").expect("serve");
    }
}

#[test]
fn both_serve_modes_answer_identically_from_the_mapping() {
    let original = populated_service(2);
    let path = TempPath::new("serve.snap");
    original.save_snapshot(&path.0).expect("save");
    let loaded = Arc::new(
        MatchService::load_snapshot(MatchConfig::default(), None, 256, &path.0).expect("load"),
    );
    let reference = Arc::new(original);

    for mode in [ServeMode::Evented, ServeMode::Threaded] {
        let want = Daemon::spawn(mode, Arc::clone(&reference));
        let got = Daemon::spawn(mode, Arc::clone(&loaded));
        let mut want_client = Client::connect(want.addr);
        let mut got_client = Client::connect(got.addr);
        for method in ["scan", "qgram", "phonidx", "bktree"] {
            for (text, language, threshold) in battery() {
                let line = format!("MATCH {} {method} {threshold} {text}", lang_tag(language));
                assert_eq!(
                    want_client.send(&line),
                    got_client.send(&line),
                    "{mode:?} {line:?} diverged between rebuilt and mmap-loaded daemons"
                );
            }
        }
        // STATS names the provenance on the mmap side.
        let stats = got_client.send("STATS");
        assert!(stats.contains("snapshot_format=mmap"), "{stats}");
        assert!(!stats.contains("mmap_bytes=0 "), "{stats}");
        let ref_stats = want_client.send("STATS");
        assert!(ref_stats.contains("snapshot_format=rebuild"), "{ref_stats}");
        want.stop();
        got.stop();
    }
}
