//! WAL corruption and recovery battery.
//!
//! Every case feeds `Wal::open` a damaged file and demands one of two
//! outcomes: clean recovery (torn tails from a crashed append) or a
//! clean *named* error (bit rot, sequence breaks, anchoring mismatches,
//! wrong file). Nothing here may panic, and nothing may silently drop a
//! record that a crash did not tear.

use lexequal::Language;
use lexequal_service::wal::{Op, Wal, WalError, WAL_MAGIC};
use lexequal_service::WalMetrics;
use std::path::PathBuf;
use std::sync::Arc;

/// A temp path that cleans up after itself.
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("lexequal_walrec_{}_{name}", std::process::id()));
        std::fs::remove_file(&p).ok();
        TempPath(p)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn metrics() -> Arc<WalMetrics> {
    Arc::new(WalMetrics::default())
}

fn add(text: &str) -> Op {
    Op::Add {
        language: Language::English,
        text: text.to_owned(),
    }
}

/// Write a healthy three-record log and return its bytes.
fn healthy_log(path: &TempPath) -> Vec<u8> {
    let (mut wal, _) = Wal::open(&path.0, 0, metrics()).expect("open fresh");
    for text in ["Nehru", "Gandhi", "Krishnan"] {
        wal.append(&add(text)).expect("append");
    }
    drop(wal);
    std::fs::read(&path.0).expect("read log")
}

/// FNV-1a 64 with the WAL's constants — a test-local copy so these
/// tests can forge records the implementation would never write.
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Forge one wire-exact record with an arbitrary (possibly wrong) LSN.
fn forge_record(lsn: u64, payload: &str) -> Vec<u8> {
    let len_le = (payload.len() as u32).to_le_bytes();
    let lsn_le = lsn.to_le_bytes();
    let sum = fnv1a(&[&len_le, &lsn_le, payload.as_bytes()]);
    let mut out = Vec::new();
    out.extend_from_slice(&len_le);
    out.extend_from_slice(&lsn_le);
    out.extend_from_slice(payload.as_bytes());
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

#[test]
fn truncation_at_every_byte_offset_recovers() {
    let path = TempPath::new("everycut");
    let full = healthy_log(&path);
    // Every possible crash point, from one byte short of complete down
    // to the empty file, must open cleanly with a sequential prefix.
    for cut in (0..full.len()).rev() {
        std::fs::write(&path.0, &full[..cut]).expect("write truncated");
        let (wal, replay) = match Wal::open(&path.0, 0, metrics()) {
            Ok(v) => v,
            Err(e) => panic!("cut at {cut}/{} bytes must recover, got {e}", full.len()),
        };
        assert!(replay.len() <= 3, "cut {cut}: {} records", replay.len());
        for (i, rec) in replay.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64 + 1, "cut {cut}");
        }
        assert_eq!(wal.head_lsn(), replay.len() as u64, "cut {cut}");
    }
}

#[test]
fn recovered_log_accepts_appends_and_reopens() {
    let path = TempPath::new("appendafter");
    let full = healthy_log(&path);
    // Tear the final record in half.
    std::fs::write(&path.0, &full[..full.len() - 10]).expect("write torn");
    let (mut wal, replay) = Wal::open(&path.0, 0, metrics()).expect("recover");
    assert_eq!(replay.len(), 2);
    assert_eq!(wal.append(&add("Patel")).expect("append"), 3);
    drop(wal);
    let (wal, replay) = Wal::open(&path.0, 0, metrics()).expect("reopen");
    assert_eq!(wal.head_lsn(), 3);
    let texts: Vec<&str> = replay
        .iter()
        .map(|r| match &r.op {
            Op::Add { text, .. } => text.as_str(),
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert_eq!(texts, vec!["Nehru", "Gandhi", "Patel"]);
}

#[test]
fn flipped_byte_mid_file_is_a_named_corruption() {
    let path = TempPath::new("midrot");
    let mut bytes = healthy_log(&path);
    // Flip one payload byte inside the FIRST record: bit rot, not a torn
    // tail, so recovery must refuse rather than silently skip.
    let offset = WAL_MAGIC.len() + 12 + 2;
    bytes[offset] ^= 0x40;
    std::fs::write(&path.0, &bytes).expect("write rotted");
    match Wal::open(&path.0, 0, metrics()) {
        Err(WalError::Corrupt { what, .. }) => {
            assert!(what.contains("checksum"), "{what}");
        }
        other => panic!("mid-file rot must be Corrupt, got {other:?}"),
    }
}

#[test]
fn flipped_checksum_byte_in_final_record_truncates_to_the_good_prefix() {
    let path = TempPath::new("tailrot");
    let mut bytes = healthy_log(&path);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path.0, &bytes).expect("write rotted");
    // Indistinguishable from a crash mid-append of the final record:
    // recover to the 2-record prefix.
    let (wal, replay) = Wal::open(&path.0, 0, metrics()).expect("recover");
    assert_eq!(replay.len(), 2);
    assert_eq!(wal.head_lsn(), 2);
    // And the truncation is physical: a fresh scan sees a clean file.
    drop(wal);
    let (_, replay) = Wal::open(&path.0, 0, metrics()).expect("reopen");
    assert_eq!(replay.len(), 2);
}

#[test]
fn duplicate_lsn_is_a_sequence_break() {
    let path = TempPath::new("duplsn");
    let mut bytes = Vec::from(WAL_MAGIC);
    bytes.extend_from_slice(&forge_record(1, "A en Nehru"));
    bytes.extend_from_slice(&forge_record(1, "A en Gandhi"));
    std::fs::write(&path.0, &bytes).expect("write forged");
    match Wal::open(&path.0, 0, metrics()) {
        Err(WalError::SequenceBreak {
            expected, found, ..
        }) => {
            assert_eq!((expected, found), (2, 1));
        }
        other => panic!("duplicate lsn must be SequenceBreak, got {other:?}"),
    }
}

#[test]
fn skipped_lsn_is_a_sequence_break() {
    let path = TempPath::new("skiplsn");
    let mut bytes = Vec::from(WAL_MAGIC);
    bytes.extend_from_slice(&forge_record(1, "A en Nehru"));
    bytes.extend_from_slice(&forge_record(3, "A en Gandhi"));
    std::fs::write(&path.0, &bytes).expect("write forged");
    match Wal::open(&path.0, 0, metrics()) {
        Err(WalError::SequenceBreak {
            expected, found, ..
        }) => assert_eq!((expected, found), (2, 3)),
        other => panic!("skipped lsn must be SequenceBreak, got {other:?}"),
    }
}

#[test]
fn empty_file_is_a_fresh_log() {
    let path = TempPath::new("empty");
    std::fs::write(&path.0, b"").expect("write empty");
    let (wal, replay) = Wal::open(&path.0, 0, metrics()).expect("open empty");
    assert!(replay.is_empty());
    assert_eq!(wal.head_lsn(), 0);
    drop(wal);
    // The magic was written on open.
    let bytes = std::fs::read(&path.0).expect("read");
    assert_eq!(bytes, WAL_MAGIC);
}

#[test]
fn oversized_record_length_is_corrupt_even_at_the_tail() {
    let path = TempPath::new("oversized");
    let mut bytes = Vec::from(WAL_MAGIC);
    bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
    bytes.extend_from_slice(&1u64.to_le_bytes());
    std::fs::write(&path.0, &bytes).expect("write forged");
    match Wal::open(&path.0, 0, metrics()) {
        Err(WalError::Corrupt { what, .. }) => assert!(what.contains("bound"), "{what}"),
        other => panic!("absurd length must be Corrupt, got {other:?}"),
    }
}

#[test]
fn undecodable_payload_mid_file_is_corrupt() {
    let path = TempPath::new("badop");
    let mut bytes = Vec::from(WAL_MAGIC);
    bytes.extend_from_slice(&forge_record(1, "Z not an op"));
    bytes.extend_from_slice(&forge_record(2, "A en Nehru"));
    std::fs::write(&path.0, &bytes).expect("write forged");
    match Wal::open(&path.0, 0, metrics()) {
        Err(WalError::Corrupt { what, .. }) => assert!(what.contains("unknown tag"), "{what}"),
        other => panic!("bad op must be Corrupt, got {other:?}"),
    }
}

#[test]
fn a_file_that_is_not_a_wal_is_bad_magic() {
    let path = TempPath::new("notawal");
    std::fs::write(&path.0, b"{\"version\": 1}\n").expect("write json");
    match Wal::open(&path.0, 0, metrics()) {
        Err(WalError::BadMagic { path: p }) => assert_eq!(p, path.0),
        other => panic!("non-wal file must be BadMagic, got {other:?}"),
    }
}

#[test]
fn snapshot_anchoring_rejects_gaps_and_stale_logs() {
    let path = TempPath::new("anchor");
    healthy_log(&path); // lsns 1..=3

    // Snapshot newer than the whole log: stale lineage.
    match Wal::open(&path.0, 5, metrics()) {
        Err(WalError::SnapshotAhead {
            snapshot_lsn,
            wal_head,
        }) => assert_eq!((snapshot_lsn, wal_head), (5, 3)),
        other => panic!("expected SnapshotAhead, got {other:?}"),
    }

    // Log starting after the snapshot: lost ops in between.
    let mut bytes = Vec::from(WAL_MAGIC);
    bytes.extend_from_slice(&forge_record(5, "A en Nehru"));
    bytes.extend_from_slice(&forge_record(6, "A en Gandhi"));
    std::fs::write(&path.0, &bytes).expect("write forged");
    match Wal::open(&path.0, 2, metrics()) {
        Err(WalError::Gap {
            snapshot_lsn,
            wal_first,
        }) => assert_eq!((snapshot_lsn, wal_first), (2, 5)),
        other => panic!("expected Gap, got {other:?}"),
    }

    // The exact boundaries are fine: base == first-1 and base == head.
    let (_, replay) = Wal::open(&path.0, 4, metrics()).expect("base = first-1");
    assert_eq!(replay.len(), 2);
    let (_, replay) = Wal::open(&path.0, 6, metrics()).expect("base = head");
    assert!(replay.is_empty());
}

#[test]
fn every_wal_error_displays_without_panicking() {
    let cases: Vec<WalError> = vec![
        WalError::Io(std::io::Error::other("boom")),
        WalError::BadMagic {
            path: PathBuf::from("/tmp/x"),
        },
        WalError::Corrupt {
            offset: 17,
            what: "checksum".to_owned(),
        },
        WalError::SequenceBreak {
            offset: 17,
            expected: 2,
            found: 9,
        },
        WalError::SnapshotAhead {
            snapshot_lsn: 9,
            wal_head: 3,
        },
        WalError::Gap {
            snapshot_lsn: 1,
            wal_first: 5,
        },
    ];
    for e in cases {
        assert!(!e.to_string().is_empty());
    }
}
