//! Totality properties: the converters must never panic and must emit
//! only inventory-valid IPA, for *any* input in their script — the
//! database deployment (UDF called on arbitrary column values) depends
//! on it.

use lexequal_g2p::{G2pRegistry, Language};
use proptest::prelude::*;

fn registry() -> G2pRegistry {
    G2pRegistry::standard()
}

proptest! {
    /// English: any ASCII-ish text converts without panicking; outputs
    /// parse back into the inventory (guaranteed by the Ok type) and are
    /// deterministic.
    #[test]
    fn english_total_on_ascii(s in "[A-Za-z' -]{0,24}") {
        let r = registry();
        let a = r.transform(&s, Language::English);
        let b = r.transform(&s, Language::English);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a, b);
        }
    }

    /// English with accented Latin: accents fold, never panic.
    #[test]
    fn english_total_on_accented(s in "[A-Za-zàâéèêëïîôùûüçñ]{0,16}") {
        let _ = registry().transform(&s, Language::English);
    }

    /// Hindi: arbitrary Devanagari-block text either converts or reports
    /// a specific untranslatable character — never panics.
    #[test]
    fn hindi_total_on_devanagari(cp in proptest::collection::vec(0x0900u32..0x097F, 0..16)) {
        let s: String = cp.into_iter().filter_map(char::from_u32).collect();
        let _ = registry().transform(&s, Language::Hindi);
    }

    /// Tamil block totality.
    #[test]
    fn tamil_total_on_tamil_block(cp in proptest::collection::vec(0x0B80u32..0x0BFF, 0..16)) {
        let s: String = cp.into_iter().filter_map(char::from_u32).collect();
        let _ = registry().transform(&s, Language::Tamil);
    }

    /// Greek block totality.
    #[test]
    fn greek_total(cp in proptest::collection::vec(0x0370u32..0x03FF, 0..16)) {
        let s: String = cp.into_iter().filter_map(char::from_u32).collect();
        let _ = registry().transform(&s, Language::Greek);
    }

    /// Arabic block totality.
    #[test]
    fn arabic_total(cp in proptest::collection::vec(0x0600u32..0x06FF, 0..16)) {
        let s: String = cp.into_iter().filter_map(char::from_u32).collect();
        let _ = registry().transform(&s, Language::Arabic);
    }

    /// Kana block totality.
    #[test]
    fn japanese_total(cp in proptest::collection::vec(0x3040u32..0x30FF, 0..16)) {
        let s: String = cp.into_iter().filter_map(char::from_u32).collect();
        let _ = registry().transform(&s, Language::Japanese);
    }

    /// Completely arbitrary Unicode: conversion may fail but not panic,
    /// in every language.
    #[test]
    fn never_panics_on_arbitrary_unicode(s in "\\PC{0,12}") {
        let r = registry();
        for lang in Language::ALL {
            let _ = r.transform(&s, lang);
        }
    }

    /// Transliteration round trips: any English conversion result can be
    /// rendered in both Indic scripts and read back by the respective
    /// converters without error.
    #[test]
    fn translit_roundtrip_total(s in "[A-Za-z]{1,16}") {
        let r = registry();
        if let Ok(p) = r.transform(&s, Language::English) {
            if p.is_empty() {
                return Ok(());
            }
            let deva = lexequal_g2p::translit::to_devanagari(&p);
            let tamil = lexequal_g2p::translit::to_tamil(&p);
            if !deva.is_empty() {
                prop_assert!(
                    r.transform(&deva, Language::Hindi).is_ok(),
                    "Hindi G2P rejected transliterator output {deva:?} for {s:?}"
                );
            }
            if !tamil.is_empty() {
                prop_assert!(
                    r.transform(&tamil, Language::Tamil).is_ok(),
                    "Tamil G2P rejected transliterator output {tamil:?} for {s:?}"
                );
            }
        }
    }
}
