//! English grapheme-to-phoneme conversion.
//!
//! A context-sensitive rule set in the tradition of the NRL letter-to-sound
//! rules (Elovitz et al., NRL Report 7948, 1976), adapted to emit IPA and
//! tuned for proper names — the only word class LexEQUAL matches. English
//! is the one genuinely irregular orthography in the evaluation corpus;
//! these rules produce deterministic, phonetically plausible renderings
//! (the paper used OED pronunciations and third-party TTP converters — see
//! DESIGN.md for the substitution argument).
//!
//! The table is consulted first-match-wins per letter; the final
//! single-letter rule in each block is the default and guarantees totality.

use crate::error::G2pError;
use crate::rules::{rule, Rule, RuleEngine};
use lexequal_phoneme::PhonemeString;
use std::sync::OnceLock;

/// The English letter-to-sound rules. Contexts use the NRL classes
/// documented in [`crate::rules`].
#[rustfmt::skip]
pub static ENGLISH_RULES: &[Rule] = &[
    // ------------------------------------------------------------- A
    rule(" ", "A", " ", "ə"),
    // Romanized Indic long a (Aakash, Baalu).
    rule("", "AA", "", "ɑ"),
    rule(" ", "ARE", " ", "ɑr"),
    rule(" ", "AR", "O", "ər"),
    rule("", "AR", "#", "ɛr"),
    rule("^", "AS", "#", "eɪs"),
    rule("", "A", "WA", "ə"),
    rule("", "AW", "", "ɔ"),
    rule(" :", "ANY", "", "ɛni"),
    rule("", "A", "^+#", "eɪ"),
    rule("#:", "ALLY", "", "əli"),
    rule(" ", "AL", "#", "əl"),
    rule("", "AGAIN", "", "əgɛn"),
    rule("#:", "AG", "E", "ɪdʒ"),
    rule("", "A", "^+:#", "æ"),
    rule(" :", "A", "^+ ", "eɪ"),
    rule("", "A", "^%", "eɪ"),
    rule(" ", "ARR", "", "ər"),
    rule("", "ARR", "", "ær"),
    rule(" :", "AR", " ", "ɑr"),
    rule("", "AR", " ", "ər"),
    rule("", "AR", "", "ɑr"),
    rule("", "AIR", "", "ɛr"),
    rule("", "AI", "", "eɪ"),
    // Latinized ae (Qaeda, Aegis) reads as the ay diphthong.
    rule("", "AE", "", "eɪ"),
    rule("", "AY", "", "eɪ"),
    rule("", "AU", "", "ɔ"),
    rule("#:", "AL", " ", "əl"),
    rule("#:", "ALS", " ", "əlz"),
    rule("", "ALK", "", "ɔk"),
    rule("", "AL", "^", "ɔl"),
    rule(" :", "ABLE", "", "eɪbəl"),
    rule("", "ABLE", "", "əbəl"),
    rule("", "ANG", "+", "eɪndʒ"),
    // Word-final a is the open vowel (sofa, Radha, Deepika).
    rule("", "A", " ", "ɑ"),
    rule("", "A", "", "æ"),
    // ------------------------------------------------------------- B
    // Romanized Indic aspirate (Bhatt, Bharat).
    rule("", "BH", "", "bʱ"),
    rule(" ", "BE", "^#", "bɪ"),
    rule("", "BEING", "", "biɪŋ"),
    rule(" ", "BOTH", " ", "boθ"),
    rule(" ", "BUS", "#", "bɪz"),
    rule("", "BUIL", "", "bɪl"),
    rule("", "B", "", "b"),
    // ------------------------------------------------------------- C
    rule(" ", "CH", "^", "k"),
    rule("^E", "CH", "", "k"),
    rule("", "CH", "", "tʃ"),
    rule(" S", "CI", "#", "saɪ"),
    rule("", "CI", "A", "ʃ"),
    rule("", "CI", "O", "ʃ"),
    rule("", "CI", "EN", "ʃ"),
    rule("", "C", "+", "s"),
    rule("", "CK", "", "k"),
    rule("", "COM", "%", "kʌm"),
    rule("", "C", "", "k"),
    // ------------------------------------------------------------- D
    // Romanized Indic aspirate (Gandhi, Radha, Dhoni).
    rule("", "DH", "", "dʱ"),
    rule("#:", "DED", " ", "dɪd"),
    rule(".E", "D", " ", "d"),
    rule("#^:E", "D", " ", "t"),
    rule(" ", "DE", "^#", "dɪ"),
    rule(" ", "DO", " ", "du"),
    rule(" ", "DOES", "", "dʌz"),
    rule(" ", "DOING", "", "duɪŋ"),
    rule(" ", "DOW", "", "daʊ"),
    rule("", "DU", "A", "dʒu"),
    rule("", "D", "", "d"),
    // ------------------------------------------------------------- E
    rule("#:", "E", " ", ""),
    rule("^:", "E", " ", ""),
    rule(" :", "E", " ", "i"),
    rule("#", "ED", " ", "d"),
    rule("#:", "E", "D ", ""),
    rule("", "EV", "ER", "ɛv"),
    rule("", "E", "^%", "i"),
    rule("", "ERI", "#", "iri"),
    rule("", "ERI", "", "ɛrɪ"),
    rule("#:", "ER", "#", "ər"),
    rule("", "ER", "#", "ɛr"),
    rule("", "ER", "", "ər"),
    rule(" ", "EVEN", "", "ivɛn"),
    rule("#:", "E", "W", ""),
    rule("@", "EW", "", "u"),
    rule("", "EW", "", "ju"),
    rule("", "E", "O", "i"),
    rule("#:&", "ES", " ", "ɪz"),
    rule("#:", "E", "S ", ""),
    rule("#:", "ELY", " ", "li"),
    rule("#:", "EMENT", "", "mɛnt"),
    rule("", "EFUL", "", "fʊl"),
    rule("", "EE", "", "i"),
    rule("", "EARN", "", "ɜrn"),
    rule(" ", "EAR", "^", "ɜr"),
    rule("", "EAD", "", "ɛd"),
    rule("#:", "EA", " ", "iə"),
    rule("", "EA", "SU", "ɛ"),
    rule("", "EA", "", "i"),
    rule("", "EIGH", "", "eɪ"),
    rule("", "EI", "", "i"),
    rule(" ", "EYE", "", "aɪ"),
    rule("", "EY", "", "i"),
    rule("", "EU", "", "ju"),
    rule("", "E", "", "ɛ"),
    // ------------------------------------------------------------- F
    rule("", "FUL", "", "fʊl"),
    rule("", "F", "", "f"),
    // ------------------------------------------------------------- G
    rule("", "GIV", "", "gɪv"),
    rule(" ", "G", "I^", "g"),
    rule("", "GE", "T", "gɛ"),
    rule("SU", "GGES", "", "gdʒɛs"),
    rule("", "GG", "", "g"),
    rule(" B#", "G", "", "g"),
    rule("", "G", "+", "dʒ"),
    rule("", "GREAT", "", "greɪt"),
    // Word-initial GH is hard g (Ghosh, Ghana); after a vowel it stays
    // silent (high, sigh).
    rule(" ", "GH", "", "g"),
    rule("^", "GH", "", "gʱ"), // Singh, Jangharh-style clusters
    rule("#", "GH", "", ""),
    rule("", "G", "", "g"),
    // ------------------------------------------------------------- H
    rule(" ", "HAV", "", "hæv"),
    rule(" ", "HERE", "", "hir"),
    rule(" ", "HOUR", "", "aʊər"),
    rule("", "HOW", "", "haʊ"),
    rule("", "H", "#", "h"),
    rule("", "H", "", ""),
    // ------------------------------------------------------------- I
    rule(" ", "IN", "", "ɪn"),
    rule(" ", "I", " ", "aɪ"),
    rule("", "IN", "D", "aɪn"),
    rule("", "IER", "", "iər"),
    rule("#:R", "IED", "", "id"),
    rule("", "IED", " ", "aɪd"),
    rule("", "IEN", "", "iɛn"),
    rule("", "IE", "T", "aɪɛ"),
    rule(" :", "I", "%", "aɪ"),
    rule("", "I", "%", "i"),
    rule("", "IE", "", "i"),
    rule("", "I", "^+:#", "ɪ"),
    rule("", "IR", "#", "aɪr"),
    rule("", "IZ", "%", "aɪz"),
    rule("", "IS", "%", "aɪz"),
    rule("", "I", "D%", "aɪ"),
    rule("+^", "I", "^+", "ɪ"),
    rule("", "I", "T%", "aɪ"),
    rule("#^:", "I", "^+", "ɪ"),
    rule("", "I", "^+", "aɪ"),
    rule("", "IR", "", "ɜr"),
    rule("", "IGH", "", "aɪ"),
    rule("", "ILD", "", "aɪld"),
    rule("", "IGN", " ", "aɪn"),
    rule("", "IGN", "^", "aɪn"),
    rule("", "IGN", "%", "aɪn"),
    rule("", "IQUE", "", "ik"),
    rule("", "I", "", "ɪ"),
    // ------------------------------------------------------------- J
    // Romanized Indic aspirate (Jharkhand).
    rule("", "JH", "", "dʒʱ"),
    rule("", "J", "", "dʒ"),
    // ------------------------------------------------------------- K
    rule(" ", "K", "N", ""),
    // Romanized Indic/Arabic aspirate (Khan, Sikh, khaki).
    rule("", "KH", "", "kʰ"),
    rule("", "K", "", "k"),
    // ------------------------------------------------------------- L
    rule("", "LO", "C#", "lo"),
    rule("L", "L", "", ""),
    rule("#^:", "L", "% ", "əl"),
    rule("", "LEAD", "", "lid"),
    rule("", "L", "", "l"),
    // ------------------------------------------------------------- M
    rule("", "MOV", "", "muv"),
    rule("", "M", "", "m"),
    // ------------------------------------------------------------- N
    rule("E", "NG", "+", "ndʒ"),
    rule("", "NG", "R", "ŋg"),
    rule("", "NG", "#", "ŋg"),
    rule("", "NGL", "%", "ŋgəl"),
    rule("", "NG", "", "ŋ"),
    rule("", "NK", "", "ŋk"),
    rule(" ", "NOW", " ", "naʊ"),
    rule("", "N", "", "n"),
    // ------------------------------------------------------------- O
    rule("", "OF", " ", "əv"),
    rule("", "OROUGH", "", "ɜro"),
    rule("#:", "OR", " ", "ər"),
    rule("#:", "ORS", " ", "ərz"),
    rule("", "OR", "", "ɔr"),
    rule(" ", "ONE", "", "wʌn"),
    rule("", "OW", "", "o"),
    rule(" ", "OVER", "", "ovər"),
    rule("", "OV", "", "ʌv"),
    rule("", "O", "^%", "o"),
    rule("", "O", "^EN", "o"),
    rule("", "O", "^I#", "o"),
    rule("", "OL", "D", "ol"),
    rule("", "OUGHT", "", "ɔt"),
    rule("", "OUGH", "", "ʌf"),
    rule(" ", "OU", "", "aʊ"),
    rule("H", "OU", "S#", "aʊ"),
    rule("", "OUS", "", "əs"),
    rule("", "OUR", "", "ɔr"),
    rule("", "OULD", "", "ʊd"),
    rule("^", "OU", "^L", "ʌ"),
    rule("", "OUP", "", "up"),
    rule("", "OU", "", "aʊ"),
    rule("", "OY", "", "ɔɪ"),
    rule("", "OING", "", "oɪŋ"),
    rule("", "OI", "", "ɔɪ"),
    rule("", "OOR", "", "ɔr"),
    rule("", "OOK", "", "ʊk"),
    rule("", "OOD", "", "ʊd"),
    rule("", "OO", "", "u"),
    rule("", "O", "E", "o"),
    rule("", "O", " ", "o"),
    rule("", "OA", "", "o"),
    rule(" ", "ONLY", "", "onli"),
    rule(" ", "ONCE", "", "wʌns"),
    rule("C", "O", "N", "ɑ"),
    rule("", "O", "NG", "ɔ"),
    rule(" ^:", "O", "N", "ʌ"),
    rule("I", "ON", "", "ən"),
    rule("#:", "ON", " ", "ən"),
    rule("#^", "ON", "", "ən"),
    rule("", "O", "ST ", "o"),
    rule("", "OF", "^", "ɔf"),
    rule("", "OTHER", "", "ʌðər"),
    rule("", "OSS", " ", "ɔs"),
    rule("#^:", "OM", "", "ʌm"),
    rule("", "O", "", "ɑ"),
    // ------------------------------------------------------------- P
    rule("", "PH", "", "f"),
    rule("", "PEOP", "", "pip"),
    rule("", "POW", "", "paʊ"),
    rule("", "PUT", " ", "pʊt"),
    rule("", "P", "", "p"),
    // ------------------------------------------------------------- Q
    rule("", "QUAR", "", "kwɔr"),
    rule("", "QU", "", "kw"),
    rule("", "Q", "", "k"),
    // ------------------------------------------------------------- R
    rule(" ", "RE", "^#", "ri"),
    rule("", "R", "", "r"),
    // ------------------------------------------------------------- S
    rule("", "SH", "", "ʃ"),
    rule("#", "SION", "", "ʒən"),
    rule("", "SOME", "", "sʌm"),
    rule("#", "SUR", "#", "ʒər"),
    rule("", "SUR", "#", "ʃər"),
    rule("#", "SU", "#", "ʒu"),
    rule("#", "SSU", "#", "ʃu"),
    rule("#", "SED", " ", "zd"),
    rule("#", "S", "#", "z"),
    rule("", "SAID", "", "sɛd"),
    rule("^", "SION", "", "ʃən"),
    rule("", "S", "S", ""),
    rule(".", "S", " ", "z"),
    rule("#:.E", "S", " ", "z"),
    rule("#^:##", "S", " ", "z"),
    rule("#^:#", "S", " ", "s"),
    rule("U", "S", " ", "s"),
    rule(" :#", "S", " ", "z"),
    rule(" ", "SCH", "", "sk"),
    rule("", "S", "C+", ""),
    rule("#", "SM", "", "zəm"),
    rule("", "S", "", "s"),
    // ------------------------------------------------------------- T
    rule(" ", "THE", " ", "ðə"),
    rule("", "TO", " ", "tu"),
    rule("", "THAT", " ", "ðæt"),
    rule(" ", "THIS", " ", "ðɪs"),
    rule(" ", "THEY", "", "ðeɪ"),
    rule(" ", "THERE", "", "ðɛr"),
    rule("", "THER", "", "ðər"),
    rule("", "THEIR", "", "ðɛr"),
    rule(" ", "THAN", " ", "ðæn"),
    rule(" ", "THEM", " ", "ðɛm"),
    rule("", "THESE", " ", "ðiz"),
    rule(" ", "THEN", "", "ðɛn"),
    rule("", "THROUGH", "", "θru"),
    rule("", "THOSE", "", "ðoz"),
    rule("", "THOUGH", " ", "ðo"),
    rule(" ", "THUS", "", "ðʌs"),
    rule("", "TH", "", "θ"),
    rule("#:", "TED", " ", "tɪd"),
    rule("S", "TI", "#N", "tʃ"),
    rule("", "TI", "O", "ʃ"),
    rule("", "TI", "A", "ʃ"),
    rule("", "TIEN", "", "ʃən"),
    rule("", "TUR", "#", "tʃər"),
    rule("", "TU", "A", "tʃu"),
    rule(" ", "TWO", "", "tu"),
    rule("", "T", "", "t"),
    // ------------------------------------------------------------- U
    rule(" ", "UN", "I", "jun"),
    rule(" ", "UN", "", "ʌn"),
    rule(" ", "UPON", "", "əpɔn"),
    rule("@", "UR", "#", "ʊr"),
    rule("", "UR", "#", "jʊr"),
    rule("", "UR", "", "ɜr"),
    rule("", "U", "^ ", "ʌ"),
    rule("", "U", "^^", "ʌ"),
    rule("", "UY", "", "aɪ"),
    rule(" G", "U", "#", ""),
    rule("G", "U", "%", ""),
    rule("G", "U", "#", "w"),
    rule("#N", "U", "", "ju"),
    rule("@", "U", "", "u"),
    rule("", "U", "", "ju"),
    // ------------------------------------------------------------- V
    rule("", "VIEW", "", "vju"),
    rule("", "V", "", "v"),
    // ------------------------------------------------------------- W
    rule(" ", "WERE", "", "wɜr"),
    rule("", "WA", "S", "wɑ"),
    rule("", "WA", "T", "wɑ"),
    rule("", "WHERE", "", "wɛr"),
    rule("", "WHAT", "", "wɑt"),
    rule("", "WHOL", "", "hol"),
    rule("", "WHO", "", "hu"),
    rule("", "WH", "", "w"),
    rule("", "WAR", "", "wɔr"),
    rule("", "WOR", "^", "wɜr"),
    rule("", "WR", "", "r"),
    rule("", "W", "", "w"),
    // ------------------------------------------------------------- X
    rule(" ", "X", "", "z"),
    rule("", "X", "", "ks"),
    // ------------------------------------------------------------- Y
    rule("", "YOUNG", "", "jʌŋ"),
    rule(" ", "YOU", "", "ju"),
    rule(" ", "YES", "", "jɛs"),
    rule(" ", "Y", "", "j"),
    rule("#^:", "Y", " ", "i"),
    rule("#^:", "Y", "I", "i"),
    rule(" :", "Y", " ", "aɪ"),
    rule(" :", "Y", "#", "aɪ"),
    rule(" :", "Y", "^+:#", "ɪ"),
    rule(" :", "Y", "^#", "aɪ"),
    rule(" :", "Y", ":#", "aɪ"),
    rule("", "Y", "", "ɪ"),
    // ------------------------------------------------------------- Z
    rule("", "Z", "", "z"),
];

fn engine() -> &'static RuleEngine {
    static ENGINE: OnceLock<RuleEngine> = OnceLock::new();
    ENGINE.get_or_init(|| RuleEngine::new(ENGLISH_RULES))
}

/// The English text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnglishG2p;

impl EnglishG2p {
    /// Convert English text to its phonemic representation. Multi-word
    /// input is converted word by word (spaces and hyphens are word
    /// boundaries); the emissions are concatenated.
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        Ok(engine().convert(text)?)
    }

    /// The raw IPA emission before parsing (useful for debugging rules).
    pub fn apply_rules(&self, text: &str) -> String {
        engine().apply(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(word: &str) -> String {
        EnglishG2p.convert(word).unwrap().to_string()
    }

    #[test]
    fn names_from_the_paper() {
        // English H before a consonant is silent (NAY-roo), which makes
        // Nehru and Nero phonemically near-identical — exactly the paper's
        // threshold-driven false positive (Fig. 1 discussion).
        assert_eq!(ipa("Nehru"), "nɛru");
        assert_eq!(ipa("Nero"), "nɛro");
    }

    #[test]
    fn common_english_words_are_plausible() {
        assert_eq!(ipa("university"), "junɪvərsɪti");
        assert_eq!(ipa("hydrogen"), "haɪdrodʒɛn");
        // "chemistry" is a known NRL-rules miss (Greek-origin ch): the
        // rules read CH as the affricate. Deterministic and documented.
        assert_eq!(ipa("chemistry"), "tʃɛmɪstri");
    }

    #[test]
    fn silent_letters() {
        assert_eq!(ipa("knight"), "naɪt");
        assert_eq!(ipa("wright"), "raɪt");
        assert_eq!(ipa("hour")[..1], *"a"); // initial H silent in HOUR
    }

    #[test]
    fn c_softening_before_front_vowels() {
        assert!(ipa("cell").starts_with('s'));
        assert!(ipa("call").starts_with('k'));
        assert!(ipa("city").starts_with('s'));
    }

    #[test]
    fn g_softening_before_front_vowels() {
        assert!(ipa("george").starts_with("dʒ"));
        assert!(ipa("gandhi").starts_with('g'));
    }

    #[test]
    fn digraphs() {
        assert!(ipa("philip").starts_with('f'));
        assert!(ipa("shah").starts_with('ʃ'));
        assert!(ipa("thomas").starts_with('θ') || ipa("thomas").starts_with('t'));
        assert!(ipa("church").starts_with("tʃ"));
    }

    #[test]
    fn final_e_is_silent_after_vowel_consonant() {
        let kate = ipa("kate");
        assert!(
            kate.ends_with('t'),
            "final E should be silent in 'kate', got {kate}"
        );
    }

    #[test]
    fn accented_names_fold() {
        // René folds to RENE.
        let rene = ipa("René");
        assert!(rene.starts_with('r'), "got {rene}");
        assert!(!rene.is_empty());
    }

    #[test]
    fn multiword_and_hyphenated_names() {
        let two = ipa("Mary-Jane");
        let cat = format!("{}{}", ipa("Mary"), ipa("Jane"));
        assert_eq!(two, cat);
    }

    #[test]
    fn every_letter_has_a_default_rule() {
        // Totality: single letters never produce empty phoneme strings,
        // except letters whose default is silence (H has h/silent split,
        // E final is silent).
        for c in 'a'..='z' {
            let out = EnglishG2p.apply_rules(&c.to_string());
            // just must not panic; emission may be empty for E (final-E rule)
            let _ = out;
        }
    }

    #[test]
    fn output_parses_into_inventory() {
        // A broad sweep: every emission must tokenize as IPA.
        for w in [
            "Krishnamurthy",
            "Venkatesh",
            "Lakshmi",
            "Elizabeth",
            "Jacqueline",
            "Xavier",
            "Quentin",
            "Yvonne",
            "Zachary",
            "Ootacamund",
            "Tchaikovsky",
        ] {
            let p = EnglishG2p.convert(w);
            assert!(p.is_ok(), "{w}: {p:?}");
            assert!(!p.unwrap().is_empty(), "{w} produced empty phonemes");
        }
    }
}
