//! Hindi (Devanagari) grapheme-to-phoneme conversion.
//!
//! Devanagari is an abugida: each consonant letter carries an inherent
//! schwa /ə/ that vowel signs (matras) replace and the virama kills.
//! The script is close to phonemic, so conversion is a letter map plus:
//!
//! * **inherent-vowel logic** — consonant + matra / virama / inherent ə;
//! * **final schwa deletion** — Hindi does not pronounce the inherent
//!   vowel of a word-final consonant (राम is /raːm/, not /raːmə/);
//! * **anusvara** — the nasal dot ं is homorganic with the following
//!   consonant (ŋ before velars, m before labials, n otherwise);
//! * **nukta forms** — the Perso-Arabic loan consonants क़ ख़ ग़ ज़ फ़ ड़ ढ़.
//!
//! The paper used the Dhvani TTS system for this step; this module is the
//! from-scratch replacement (see DESIGN.md).

use crate::error::G2pError;
use lexequal_phoneme::PhonemeString;

/// IPA for an independent (standalone) vowel letter.
fn independent_vowel(c: char) -> Option<&'static str> {
    Some(match c {
        'अ' => "ə",
        'आ' => "aː",
        'इ' => "ɪ",
        'ई' => "iː",
        'उ' => "ʊ",
        'ऊ' => "uː",
        'ऋ' => "rɪ",
        'ए' => "e",
        'ऐ' => "ɛ",
        'ओ' => "o",
        'औ' => "ɔ",
        'ऑ' => "ɒ",
        'ऍ' => "æ",
        _ => return None,
    })
}

/// IPA for a vowel sign (matra).
fn matra(c: char) -> Option<&'static str> {
    Some(match c {
        '\u{093E}' => "aː", // ा
        '\u{093F}' => "ɪ",  // ि
        '\u{0940}' => "iː", // ी
        '\u{0941}' => "ʊ",  // ु
        '\u{0942}' => "uː", // ू
        '\u{0943}' => "rɪ", // ृ
        '\u{0947}' => "e",  // े
        '\u{0948}' => "ɛ",  // ै
        '\u{094B}' => "o",  // ो
        '\u{094C}' => "ɔ",  // ौ
        '\u{0949}' => "ɒ",  // ॉ
        '\u{0945}' => "æ",  // ॅ
        _ => return None,
    })
}

/// IPA for a consonant letter (including nukta forms), with its place
/// class for anusvara resolution: 'v' velar, 'l' labial, 'o' other.
fn consonant(c: char) -> Option<(&'static str, char)> {
    Some(match c {
        'क' => ("k", 'v'),
        'ख' => ("kʰ", 'v'),
        'ग' => ("g", 'v'),
        'घ' => ("gʱ", 'v'),
        'ङ' => ("ŋ", 'v'),
        'च' => ("tʃ", 'o'),
        'छ' => ("tʃʰ", 'o'),
        'ज' => ("dʒ", 'o'),
        'झ' => ("dʒʱ", 'o'),
        'ञ' => ("ɲ", 'o'),
        'ट' => ("ʈ", 'o'),
        'ठ' => ("ʈʰ", 'o'),
        'ड' => ("ɖ", 'o'),
        'ढ' => ("ɖʱ", 'o'),
        'ण' => ("ɳ", 'o'),
        'त' => ("t", 'o'),
        'थ' => ("tʰ", 'o'),
        'द' => ("d", 'o'),
        'ध' => ("dʱ", 'o'),
        'न' => ("n", 'o'),
        'प' => ("p", 'l'),
        'फ' => ("pʰ", 'l'),
        'ब' => ("b", 'l'),
        'भ' => ("bʱ", 'l'),
        'म' => ("m", 'l'),
        'य' => ("j", 'o'),
        'र' => ("r", 'o'),
        'ल' => ("l", 'o'),
        'व' => ("ʋ", 'l'),
        'श' => ("ʃ", 'o'),
        'ष' => ("ʂ", 'o'),
        'स' => ("s", 'o'),
        'ह' => ("ɦ", 'o'),
        // Nukta (loan) consonants — precomposed forms U+0958..U+095E.
        '\u{0958}' => ("q", 'v'), // क़
        '\u{0959}' => ("x", 'v'), // ख़
        '\u{095A}' => ("ɣ", 'v'), // ग़
        '\u{095B}' => ("z", 'o'), // ज़
        '\u{095E}' => ("f", 'l'), // फ़
        '\u{095C}' => ("ɽ", 'o'), // ड़
        '\u{095D}' => ("ɽ", 'o'), // ढ़
        _ => return None,
    })
}

/// Apply a combining nukta (U+093C) to a base consonant, yielding the loan
/// consonant it denotes.
fn apply_nukta(base: char) -> Option<(&'static str, char)> {
    let precomposed = match base {
        'क' => '\u{0958}',
        'ख' => '\u{0959}',
        'ग' => '\u{095A}',
        'ज' => '\u{095B}',
        'फ' => '\u{095E}',
        'ड' => '\u{095C}',
        'ढ' => '\u{095D}',
        _ => return None,
    };
    consonant(precomposed)
}

const VIRAMA: char = '\u{094D}'; // ्
const ANUSVARA: char = '\u{0902}'; // ं
const CHANDRABINDU: char = '\u{0901}'; // ँ
const VISARGA: char = '\u{0903}'; // ः
const NUKTA: char = '\u{093C}';

/// The Hindi (Devanagari) text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct HindiG2p;

/// A segment of a word's underlying form, before schwa deletion.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Seg {
    /// A fixed IPA fragment (one or more segments).
    Fixed(&'static str),
    /// An inherent schwa, candidate for the deletion rule.
    InherentSchwa,
}

impl HindiG2p {
    /// Convert Devanagari text to IPA phonemes.
    ///
    /// Characters outside the Devanagari block (and whitespace) act as word
    /// boundaries; other unknown characters yield
    /// [`G2pError::UntranslatableChar`].
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let mut ipa = String::new();
        for word in text
            .split(|c: char| c.is_whitespace() || c == '-' || c == '\u{200C}' || c == '\u{200D}')
        {
            if word.is_empty() {
                continue;
            }
            let segs = underlying_form(word)?;
            ipa.push_str(&delete_schwas(segs));
        }
        Ok(ipa.parse()?)
    }
}

/// First pass: the underlying form with every non-final inherent schwa
/// present (word-final schwas are never realized in Hindi, so they are
/// dropped here already).
fn underlying_form(word: &str) -> Result<Vec<Seg>, G2pError> {
    let chars: Vec<char> = word.chars().collect();
    let mut segs = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if let Some(v) = independent_vowel(c) {
            segs.push(Seg::Fixed(v));
            i += 1;
            continue;
        }
        if let Some((mut cons_ipa, _)) = consonant(c) {
            i += 1;
            // Combining nukta modifies the consonant just parsed.
            if i < chars.len() && chars[i] == NUKTA {
                if let Some((n_ipa, _)) = apply_nukta(c) {
                    cons_ipa = n_ipa;
                }
                i += 1;
            }
            segs.push(Seg::Fixed(cons_ipa));
            match chars.get(i) {
                Some(&m) if matra(m).is_some() => {
                    segs.push(Seg::Fixed(matra(m).expect("checked above")));
                    i += 1;
                }
                Some(&v) if v == VIRAMA => {
                    i += 1; // vowel killed
                }
                Some(_) => segs.push(Seg::InherentSchwa),
                None => {} // word-final schwa deleted outright
            }
            continue;
        }
        match c {
            ANUSVARA | CHANDRABINDU => {
                // Homorganic nasal: peek at the next consonant.
                let nasal = match chars.get(i + 1).and_then(|&n| consonant(n)) {
                    Some((_, 'v')) => "ŋ",
                    Some((_, 'l')) => "m",
                    _ => "n",
                };
                segs.push(Seg::Fixed(nasal));
                i += 1;
            }
            VISARGA => {
                segs.push(Seg::Fixed("h"));
                i += 1;
            }
            other => {
                return Err(G2pError::UntranslatableChar {
                    ch: other,
                    language: crate::language::Language::Hindi,
                })
            }
        }
    }
    Ok(segs)
}

/// Second pass: the standard Hindi schwa-deletion rule, applied right to
/// left — delete an inherent schwa in the context `V C _ C V` (vowel,
/// consonant, schwa, consonant, vowel). Right-to-left application gets
/// जवाहरलाल → /dʒəʋaːɦərlaːl/ and नेहरु → /neɦru/ both correct.
fn delete_schwas(segs: Vec<Seg>) -> String {
    // Flatten to phoneme-level symbols, remembering which are deletable.
    let mut syms: Vec<(&'static str, bool)> = Vec::with_capacity(segs.len());
    for seg in segs {
        match seg {
            Seg::InherentSchwa => syms.push(("ə", true)),
            Seg::Fixed(f) => {
                // Fragments like "rɪ" (for ऋ) hold two segments; split
                // them so context checks see individual phonemes.
                match f {
                    "rɪ" => {
                        syms.push(("r", false));
                        syms.push(("ɪ", false));
                    }
                    other => syms.push((other, false)),
                }
            }
        }
    }
    let is_vowel = |s: &str| {
        matches!(
            s,
            "ə" | "aː" | "ɪ" | "iː" | "ʊ" | "uː" | "e" | "ɛ" | "o" | "ɔ" | "ɒ" | "æ"
        )
    };
    // Right-to-left deletion pass.
    let mut keep: Vec<bool> = vec![true; syms.len()];
    for idx in (0..syms.len()).rev() {
        let (sym, deletable) = syms[idx];
        if !deletable || sym != "ə" {
            continue;
        }
        // Find live neighbours.
        let prev = (0..idx).rev().find(|&k| keep[k]);
        let next = (idx + 1..syms.len()).find(|&k| keep[k]);
        let (Some(p1), Some(n1)) = (prev, next) else {
            continue;
        };
        let prev2 = (0..p1).rev().find(|&k| keep[k]);
        let next2 = (n1 + 1..syms.len()).find(|&k| keep[k]);
        let (Some(p2), Some(n2)) = (prev2, next2) else {
            continue;
        };
        let vcv = is_vowel(syms[p2].0)
            && !is_vowel(syms[p1].0)
            && !is_vowel(syms[n1].0)
            && is_vowel(syms[n2].0);
        if vcv {
            keep[idx] = false;
        }
    }
    let mut out = String::new();
    for (idx, (sym, _)) in syms.iter().enumerate() {
        if keep[idx] {
            out.push_str(sym);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        HindiG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn nehru_from_the_paper() {
        // नेहरु = न े ह र ु
        assert_eq!(ipa("नेहरु"), "neɦrʊ");
    }

    #[test]
    fn final_schwa_is_deleted() {
        // राम = र ा म -> raːm, not raːmə
        assert_eq!(ipa("राम"), "raːm");
        // कमल = क म ल -> kəməl (medial schwas kept, final deleted)
        assert_eq!(ipa("कमल"), "kəməl");
    }

    #[test]
    fn virama_kills_inherent_vowel() {
        // हिन्दी = ह ि न ् द ी
        assert_eq!(ipa("हिन्दी"), "ɦɪndiː");
    }

    #[test]
    fn matras_replace_schwa() {
        assert_eq!(ipa("की"), "kiː");
        assert_eq!(ipa("कू"), "kuː");
        assert_eq!(ipa("के"), "ke");
        assert_eq!(ipa("को"), "ko");
    }

    #[test]
    fn aspirated_consonants() {
        assert_eq!(ipa("खा"), "kʰaː");
        assert_eq!(ipa("भारत"), "bʱaːrət");
    }

    #[test]
    fn anusvara_is_homorganic() {
        // गंगा: anusvara before velar ग -> ŋ
        assert_eq!(ipa("गंगा"), "gəŋgaː");
        // लंबा: before labial ब -> m
        assert_eq!(ipa("लंबा"), "ləmbaː");
        // हिंदी: before द -> n
        assert_eq!(ipa("हिंदी"), "ɦɪndiː");
    }

    #[test]
    fn nukta_consonants() {
        assert_eq!(ipa("ज़रा"), "zəraː");
        assert_eq!(ipa("फ़ोन"), "fon");
        // combining nukta form (base + U+093C)
        assert_eq!(ipa("ज\u{093C}रा"), "zəraː");
    }

    #[test]
    fn independent_vowels() {
        assert_eq!(ipa("आम"), "aːm");
        assert_eq!(ipa("ईद"), "iːd");
        assert_eq!(ipa("ओम"), "om");
    }

    #[test]
    fn paper_figure9_hydrogen() {
        // हैड्रोजन (hydrogen): ह ै ड ् र ो ज न
        assert_eq!(ipa("हैड्रोजन"), "ɦɛɖrodʒən");
    }

    #[test]
    fn multiword_input() {
        assert_eq!(
            ipa("जवाहरलाल नेहरु"),
            format!("{}{}", ipa("जवाहरलाल"), ipa("नेहरु"))
        );
    }

    #[test]
    fn untranslatable_char_is_reported() {
        let err = HindiG2p.convert("न#").unwrap_err();
        assert!(matches!(err, G2pError::UntranslatableChar { ch: '#', .. }));
    }

    #[test]
    fn latin_digits_are_rejected_not_skipped() {
        assert!(HindiG2p.convert("राम2").is_err());
    }
}
