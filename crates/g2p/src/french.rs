//! French grapheme-to-phoneme conversion (compact).
//!
//! French appears in the paper only through the Figure 1 catalog (René
//! Descartes, *Les Méditations Metaphysiques*) and the Figure 9 sample
//! (École → /eikøl/-like). This converter covers the major digraphs,
//! soft c/g, and final-consonant silencing — enough to phonetize French
//! proper names plausibly; it does not attempt nasal-vowel subtleties
//! (French nasal vowels are rendered as vowel + /n/, matching the paper's
//! segmental IPA subset).

use crate::error::G2pError;
use crate::language::Language;
use lexequal_phoneme::PhonemeString;

fn fold(c: char) -> char {
    match c.to_lowercase().next().unwrap_or(c) {
        'à' | 'â' => 'a',
        'î' | 'ï' => 'i',
        'ô' => 'o',
        'û' | 'ù' => 'u',
        'ë' => 'e',
        other => other,
    }
}

fn is_vowel_letter(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'y' | 'é' | 'è' | 'ê')
}

/// The French text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrenchG2p;

impl FrenchG2p {
    /// Convert French text to IPA phonemes, word by word.
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let mut ipa = String::new();
        for word in text.split(|c: char| c.is_whitespace() || c == '-' || c == '\'') {
            if word.is_empty() {
                continue;
            }
            convert_word(word, &mut ipa)?;
        }
        Ok(ipa.parse()?)
    }
}

fn convert_word(word: &str, ipa: &mut String) -> Result<(), G2pError> {
    let chars: Vec<char> = word.chars().map(fold).collect();
    let n = chars.len();
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        let is_final = |k: usize| k >= n;
        // Final silent consonants: s, t, d, x, z, p (not in clusters we
        // care about for names).
        if i + 1 == n && matches!(c, 's' | 't' | 'd' | 'x' | 'z' | 'p') && n > 2 {
            break;
        }
        match (c, next) {
            ('e', Some('a')) if chars.get(i + 2) == Some(&'u') => {
                ipa.push('o');
                i += 3;
            }
            ('a', Some('u')) => {
                ipa.push('o');
                i += 2;
            }
            ('o', Some('u')) => {
                ipa.push('u');
                i += 2;
            }
            ('o', Some('i')) => {
                ipa.push_str("wa");
                i += 2;
            }
            ('a', Some('i')) | ('e', Some('i')) => {
                ipa.push('ɛ');
                i += 2;
            }
            ('c', Some('h')) => {
                ipa.push('ʃ');
                i += 2;
            }
            ('g', Some('n')) => {
                ipa.push('ɲ');
                i += 2;
            }
            ('q', Some('u')) => {
                ipa.push('k');
                i += 2;
            }
            ('p', Some('h')) => {
                ipa.push('f');
                i += 2;
            }
            ('c', Some('e' | 'i' | 'y' | 'é' | 'è' | 'ê')) => {
                ipa.push('s');
                i += 1;
            }
            ('g', Some('e' | 'i' | 'y' | 'é' | 'è' | 'ê')) => {
                ipa.push('ʒ');
                i += 1;
            }
            _ => {
                let s = match c {
                    'a' => "a",
                    'b' => "b",
                    'c' => "k",
                    'ç' => "s",
                    'd' => "d",
                    'e' => {
                        if i + 1 == n {
                            "" // final e silent
                        } else {
                            "ə"
                        }
                    }
                    'é' => "e",
                    'è' | 'ê' => "ɛ",
                    'f' => "f",
                    'g' => "g",
                    'h' => "", // h is silent
                    'i' => {
                        if next.is_some_and(is_vowel_letter) {
                            "j"
                        } else {
                            "i"
                        }
                    }
                    'j' => "ʒ",
                    'k' => "k",
                    'l' => "l",
                    'm' => "m",
                    'n' => "n",
                    'o' => "ø", // French closed o in École per paper Fig. 9
                    'p' => "p",
                    'r' => "r",
                    's' => {
                        // intervocalic s is /z/
                        let prev_vowel = i > 0 && is_vowel_letter(chars[i - 1]);
                        let next_vowel = next.is_some_and(is_vowel_letter);
                        if prev_vowel && next_vowel {
                            "z"
                        } else {
                            "s"
                        }
                    }
                    't' => "t",
                    'u' => "y",
                    'v' => "v",
                    'w' => "v",
                    'x' => "ks",
                    'y' => "i",
                    'z' => "z",
                    other => {
                        return Err(G2pError::UntranslatableChar {
                            ch: other,
                            language: Language::French,
                        })
                    }
                };
                let _ = is_final;
                ipa.push_str(s);
                i += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        FrenchG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn ecole_resembles_paper_figure9() {
        // Paper Fig. 9 gives /eikøl/ for École; ours: e-k-ø-l (final e silent).
        assert_eq!(ipa("École"), "ekøl");
    }

    #[test]
    fn rene_descartes() {
        assert_eq!(ipa("René"), "rəne");
        // Descartes: final -es silent-ish; we keep it segmental.
        assert!(ipa("Descartes").starts_with("d"));
    }

    #[test]
    fn digraphs() {
        assert_eq!(ipa("eau"), "o");
        assert_eq!(ipa("oui"), "ui"); // ou -> u, then i
    }

    #[test]
    fn soft_c_and_g() {
        assert!(ipa("céline").starts_with('s'));
        assert!(ipa("georges").starts_with('ʒ'));
        assert!(ipa("gare").starts_with('g'));
    }

    #[test]
    fn silent_h_and_final_consonants() {
        assert_eq!(ipa("hôtel"), "øtəl");
        assert!(!ipa("paris").ends_with('s'));
    }

    #[test]
    fn u_is_front_rounded() {
        assert_eq!(ipa("but"), "by"); // final t silent
    }
}
