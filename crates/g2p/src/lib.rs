//! Text-to-phoneme (TTP) conversion for the LexEQUAL multiscript stack.
//!
//! The LexEQUAL operator (Kumaran & Haritsa, EDBT 2004) transforms each
//! lexicographic string into its phonemic representation before matching;
//! the paper integrates third-party TTP converters (OED pronunciations for
//! English, the Dhvani system for Hindi, hand conversion for Tamil). This
//! crate is the from-scratch equivalent: deterministic *rule-based*
//! grapheme-to-phoneme converters that emit segmental IPA
//! ([`PhonemeString`]) for:
//!
//! * **English** — a context-sensitive rewrite-rule engine in the style of
//!   the classic NRL letter-to-sound rules (Elovitz et al., 1976), tuned
//!   for proper names. See [`english`].
//! * **Hindi** — Devanagari is close to phonemic; an akshara-based
//!   converter with inherent-schwa and final-schwa-deletion handling.
//!   See [`hindi`].
//! * **Tamil** — the Tamil script underspecifies voicing; positional
//!   voicing rules (word-initial voiceless, post-nasal and intervocalic
//!   voiced/lenited) recreate the phoneme-set mismatch the paper leans on.
//!   See [`tamil`].
//! * **Greek**, **French**, **Spanish**, **Russian** — letter/digraph
//!   maps sufficient for the paper's Figure 1 catalog and Figure 9
//!   samples (Russian adds Cyrillic coverage for untagged traffic).
//!
//! [`script`] profiles *untagged* input (per-script histogram, primary
//! script, confidence) and routes it to one converter or a fan-out set
//! ([`Router`]); Korean/Thai are detected but converterless, yielding the
//! paper's `NORESOURCE` outcome.
//!
//! [`translit`] goes the *other* way (IPA → Devanagari / Tamil script) and
//! is how the evaluation corpus renders English names into Indic scripts,
//! replacing the paper's hand conversion.
//!
//! The entry point is [`G2pRegistry`], which maps a [`Language`] tag to a
//! converter and mirrors the paper's `S_L` — "languages with IPA
//! transformations" — including the `NORESOURCE` outcome for languages
//! without one.
//!
//! # Example
//!
//! ```
//! use lexequal_g2p::{G2pRegistry, Language};
//!
//! let registry = G2pRegistry::standard();
//! let en = registry.transform("Nehru", Language::English).unwrap();
//! let hi = registry.transform("नेहरु", Language::Hindi).unwrap();
//! // Both render to phonemically close strings.
//! assert_eq!(en.to_string(), "nɛru");
//! assert_eq!(hi.to_string(), "neɦrʊ");
//! ```

pub mod arabic;
pub mod english;
pub mod error;
pub mod french;
pub mod greek;
pub mod hindi;
pub mod japanese;
pub mod language;
pub mod registry;
pub mod rules;
pub mod russian;
pub mod script;
pub mod spanish;
pub mod tamil;
pub mod translit;

pub use error::G2pError;
pub use language::{detect_language, detect_script, Language, Script};
pub use registry::{G2pRegistry, TextToPhoneme};
pub use script::{Route, Router, ScriptProfile, LATIN_FANOUT};

pub use lexequal_phoneme::PhonemeString;
