//! Language and script tags, and Unicode-block-based script detection.
//!
//! The paper assumes each attribute value is "tagged with its language, or
//! in an equivalent format" (§1, footnote 1), and notes that automatic
//! language identification from Unicode blocks is imperfect because many
//! languages share a script (§2.1). [`detect_language`] implements exactly
//! that imperfect-but-useful heuristic: script is determined from Unicode
//! blocks, and each script maps to its most likely language among the ones
//! we support (Latin defaults to English).

use std::fmt;
use std::str::FromStr;

/// Writing system, detected from Unicode code-point blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Script {
    /// Basic Latin and Latin-1/Extended letters.
    Latin,
    /// Devanagari block (U+0900–U+097F).
    Devanagari,
    /// Tamil block (U+0B80–U+0BFF).
    Tamil,
    /// Greek and Coptic block (U+0370–U+03FF).
    Greek,
    /// Arabic block (U+0600–U+06FF) and presentation forms.
    Arabic,
    /// Japanese kana blocks (hiragana U+3040–U+309F, katakana U+30A0–U+30FF).
    Kana,
    /// Anything else (Han, Hangul, …) — recognized but unsupported.
    Other,
}

/// The languages the LexEQUAL prototype ships converters for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// English (Latin script, NRL-style rules).
    English,
    /// Hindi (Devanagari script).
    Hindi,
    /// Tamil (Tamil script).
    Tamil,
    /// Modern Greek (Greek script).
    Greek,
    /// French (Latin script).
    French,
    /// Spanish (Latin script).
    Spanish,
    /// Modern Standard Arabic (Arabic script).
    Arabic,
    /// Japanese, kana only (katakana is how foreign names are written).
    Japanese,
}

impl Language {
    /// All supported languages, in a stable order.
    pub const ALL: [Language; 8] = [
        Language::English,
        Language::Hindi,
        Language::Tamil,
        Language::Greek,
        Language::French,
        Language::Spanish,
        Language::Arabic,
        Language::Japanese,
    ];

    /// The script this language is written in.
    pub fn script(self) -> Script {
        match self {
            Language::English | Language::French | Language::Spanish => Script::Latin,
            Language::Hindi => Script::Devanagari,
            Language::Tamil => Script::Tamil,
            Language::Greek => Script::Greek,
            Language::Arabic => Script::Arabic,
            Language::Japanese => Script::Kana,
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Language::English => "English",
            Language::Hindi => "Hindi",
            Language::Tamil => "Tamil",
            Language::Greek => "Greek",
            Language::French => "French",
            Language::Spanish => "Spanish",
            Language::Arabic => "Arabic",
            Language::Japanese => "Japanese",
        };
        f.write_str(name)
    }
}

impl FromStr for Language {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "english" | "en" => Ok(Language::English),
            "hindi" | "hi" => Ok(Language::Hindi),
            "tamil" | "ta" => Ok(Language::Tamil),
            "greek" | "el" => Ok(Language::Greek),
            "french" | "fr" => Ok(Language::French),
            "spanish" | "es" => Ok(Language::Spanish),
            "arabic" | "ar" => Ok(Language::Arabic),
            "japanese" | "ja" => Ok(Language::Japanese),
            other => Err(format!("unknown language {other:?}")),
        }
    }
}

/// Script of a single character by Unicode block.
pub fn script_of_char(c: char) -> Option<Script> {
    let u = c as u32;
    match u {
        0x0041..=0x005A | 0x0061..=0x007A | 0x00C0..=0x024F => Some(Script::Latin),
        0x0900..=0x097F => Some(Script::Devanagari),
        0x0B80..=0x0BFF => Some(Script::Tamil),
        0x0370..=0x03FF | 0x1F00..=0x1FFF => Some(Script::Greek),
        0x0600..=0x06FF | 0xFB50..=0xFDFF | 0xFE70..=0xFEFF => Some(Script::Arabic),
        0x3040..=0x30FF => Some(Script::Kana),
        _ if c.is_alphabetic() => Some(Script::Other),
        _ => None,
    }
}

/// Dominant script of a string: the script of the majority of its letters,
/// or `None` if it contains no letters.
pub fn detect_script(text: &str) -> Option<Script> {
    let mut counts = [0usize; 7];
    for c in text.chars() {
        if let Some(s) = script_of_char(c) {
            let i = match s {
                Script::Latin => 0,
                Script::Devanagari => 1,
                Script::Tamil => 2,
                Script::Greek => 3,
                Script::Arabic => 4,
                Script::Kana => 5,
                Script::Other => 6,
            };
            counts[i] += 1;
        }
    }
    let (best, &n) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| *n)
        .expect("array is non-empty");
    if n == 0 {
        return None;
    }
    Some(match best {
        0 => Script::Latin,
        1 => Script::Devanagari,
        2 => Script::Tamil,
        3 => Script::Greek,
        4 => Script::Arabic,
        5 => Script::Kana,
        _ => Script::Other,
    })
}

/// Best-effort language identification from script (the paper's §2.1
/// caveat applies: Latin-script text defaults to English even though it
/// could be French or Spanish).
pub fn detect_language(text: &str) -> Option<Language> {
    match detect_script(text)? {
        Script::Latin => Some(Language::English),
        Script::Devanagari => Some(Language::Hindi),
        Script::Tamil => Some(Language::Tamil),
        Script::Greek => Some(Language::Greek),
        Script::Arabic => Some(Language::Arabic),
        Script::Kana => Some(Language::Japanese),
        Script::Other => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_detected_from_blocks() {
        assert_eq!(detect_script("Nehru"), Some(Script::Latin));
        assert_eq!(detect_script("नेहरु"), Some(Script::Devanagari));
        assert_eq!(detect_script("நேரு"), Some(Script::Tamil));
        assert_eq!(detect_script("Σαρρη"), Some(Script::Greek));
        assert_eq!(detect_script("北京"), Some(Script::Other));
        assert_eq!(detect_script("123 !?"), None);
    }

    #[test]
    fn accented_latin_is_latin() {
        assert_eq!(detect_script("René"), Some(Script::Latin));
        assert_eq!(detect_script("École"), Some(Script::Latin));
    }

    #[test]
    fn language_defaults_per_script() {
        assert_eq!(detect_language("Nehru"), Some(Language::English));
        assert_eq!(detect_language("नेहरु"), Some(Language::Hindi));
        assert_eq!(detect_language("நேரு"), Some(Language::Tamil));
        assert_eq!(detect_language("Νερού"), Some(Language::Greek));
        assert_eq!(detect_language("العمارة"), Some(Language::Arabic));
        assert_eq!(detect_language("ネルー"), Some(Language::Japanese));
        assert_eq!(detect_language("北京"), None);
    }

    #[test]
    fn mixed_script_majority_wins() {
        assert_eq!(
            detect_script("Nehru नेहरु जवाहरलाल"),
            Some(Script::Devanagari)
        );
    }

    #[test]
    fn language_parses_from_names_and_codes() {
        assert_eq!("english".parse::<Language>(), Ok(Language::English));
        assert_eq!("TA".parse::<Language>(), Ok(Language::Tamil));
        assert_eq!("el".parse::<Language>(), Ok(Language::Greek));
        assert!("klingon".parse::<Language>().is_err());
    }

    #[test]
    fn language_script_mapping() {
        assert_eq!(Language::English.script(), Script::Latin);
        assert_eq!(Language::Hindi.script(), Script::Devanagari);
        assert_eq!(Language::French.script(), Script::Latin);
        for l in Language::ALL {
            let _ = l.script(); // total
        }
    }
}
