//! Language and script tags, and Unicode-block-based script detection.
//!
//! The paper assumes each attribute value is "tagged with its language, or
//! in an equivalent format" (§1, footnote 1), and notes that automatic
//! language identification from Unicode blocks is imperfect because many
//! languages share a script (§2.1). [`detect_language`] implements exactly
//! that imperfect-but-useful heuristic: script is determined from Unicode
//! blocks, and each script maps to its most likely language among the ones
//! we support (Latin defaults to English).

use std::fmt;
use std::str::FromStr;

/// Writing system, detected from Unicode code-point blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Script {
    /// Basic Latin and Latin-1/Extended letters.
    Latin,
    /// Devanagari block (U+0900–U+097F).
    Devanagari,
    /// Tamil block (U+0B80–U+0BFF).
    Tamil,
    /// Greek and Coptic block (U+0370–U+03FF).
    Greek,
    /// Cyrillic blocks (U+0400–U+04FF, supplement U+0500–U+052F).
    Cyrillic,
    /// Arabic block (U+0600–U+06FF) and presentation forms.
    Arabic,
    /// Japanese kana blocks (hiragana U+3040–U+309F, katakana U+30A0–U+30FF).
    Kana,
    /// Hangul jamo and syllables (U+1100–U+11FF, U+3130–U+318F,
    /// U+AC00–U+D7AF) — detected, but no converter ships (`NORESOURCE`).
    Hangul,
    /// Thai block (U+0E00–U+0E7F) — detected, but no converter ships
    /// (`NORESOURCE`).
    Thai,
    /// Anything else (Han, …) — recognized but unsupported.
    Other,
}

impl Script {
    /// Every script the detector distinguishes, in a stable order. The
    /// order doubles as the tie-break for mixed-script plurality votes:
    /// earlier wins.
    pub const ALL: [Script; 10] = [
        Script::Latin,
        Script::Devanagari,
        Script::Tamil,
        Script::Greek,
        Script::Cyrillic,
        Script::Arabic,
        Script::Kana,
        Script::Hangul,
        Script::Thai,
        Script::Other,
    ];

    /// Number of distinguished scripts (histogram width).
    pub const COUNT: usize = Script::ALL.len();

    /// This script's position in [`Script::ALL`] — a stable histogram /
    /// counter index.
    pub fn index(self) -> usize {
        match self {
            Script::Latin => 0,
            Script::Devanagari => 1,
            Script::Tamil => 2,
            Script::Greek => 3,
            Script::Cyrillic => 4,
            Script::Arabic => 5,
            Script::Kana => 6,
            Script::Hangul => 7,
            Script::Thai => 8,
            Script::Other => 9,
        }
    }

    /// Lowercase stable name (used as a `STATS` key).
    pub fn name(self) -> &'static str {
        match self {
            Script::Latin => "latin",
            Script::Devanagari => "devanagari",
            Script::Tamil => "tamil",
            Script::Greek => "greek",
            Script::Cyrillic => "cyrillic",
            Script::Arabic => "arabic",
            Script::Kana => "kana",
            Script::Hangul => "hangul",
            Script::Thai => "thai",
            Script::Other => "other",
        }
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The languages the LexEQUAL prototype ships converters for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// English (Latin script, NRL-style rules).
    English,
    /// Hindi (Devanagari script).
    Hindi,
    /// Tamil (Tamil script).
    Tamil,
    /// Modern Greek (Greek script).
    Greek,
    /// French (Latin script).
    French,
    /// Spanish (Latin script).
    Spanish,
    /// Modern Standard Arabic (Arabic script).
    Arabic,
    /// Japanese, kana only (katakana is how foreign names are written).
    Japanese,
    /// Russian (Cyrillic script, transliteration-style rules).
    Russian,
    /// Korean (Hangul script) — a *tag* only: the detector recognizes the
    /// script but no converter ships, modeling the paper's `NORESOURCE`
    /// outcome for languages outside `S_L`.
    Korean,
    /// Thai (Thai script) — a tag without a converter, like [`Korean`].
    ///
    /// [`Korean`]: Language::Korean
    Thai,
}

impl Language {
    /// All known language tags, in a stable order. This includes tags the
    /// detector can assign but no converter serves (Korean, Thai); use
    /// [`Language::CONVERTIBLE`] for the paper's `S_L` set.
    pub const ALL: [Language; 11] = [
        Language::English,
        Language::Hindi,
        Language::Tamil,
        Language::Greek,
        Language::French,
        Language::Spanish,
        Language::Arabic,
        Language::Japanese,
        Language::Russian,
        Language::Korean,
        Language::Thai,
    ];

    /// The languages a converter ships for — the paper's `S_L`,
    /// "languages with IPA transformations". Everything in `ALL` but not
    /// here transforms to the `NORESOURCE` outcome.
    pub const CONVERTIBLE: [Language; 9] = [
        Language::English,
        Language::Hindi,
        Language::Tamil,
        Language::Greek,
        Language::French,
        Language::Spanish,
        Language::Arabic,
        Language::Japanese,
        Language::Russian,
    ];

    /// The script this language is written in.
    pub fn script(self) -> Script {
        match self {
            Language::English | Language::French | Language::Spanish => Script::Latin,
            Language::Hindi => Script::Devanagari,
            Language::Tamil => Script::Tamil,
            Language::Greek => Script::Greek,
            Language::Arabic => Script::Arabic,
            Language::Japanese => Script::Kana,
            Language::Russian => Script::Cyrillic,
            Language::Korean => Script::Hangul,
            Language::Thai => Script::Thai,
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Language::English => "English",
            Language::Hindi => "Hindi",
            Language::Tamil => "Tamil",
            Language::Greek => "Greek",
            Language::French => "French",
            Language::Spanish => "Spanish",
            Language::Arabic => "Arabic",
            Language::Japanese => "Japanese",
            Language::Russian => "Russian",
            Language::Korean => "Korean",
            Language::Thai => "Thai",
        };
        f.write_str(name)
    }
}

impl FromStr for Language {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "english" | "en" => Ok(Language::English),
            "hindi" | "hi" => Ok(Language::Hindi),
            "tamil" | "ta" => Ok(Language::Tamil),
            "greek" | "el" => Ok(Language::Greek),
            "french" | "fr" => Ok(Language::French),
            "spanish" | "es" => Ok(Language::Spanish),
            "arabic" | "ar" => Ok(Language::Arabic),
            "japanese" | "ja" => Ok(Language::Japanese),
            "russian" | "ru" => Ok(Language::Russian),
            "korean" | "ko" => Ok(Language::Korean),
            "thai" | "th" => Ok(Language::Thai),
            other => Err(format!("unknown language {other:?}")),
        }
    }
}

/// Script of a single character by Unicode block.
pub fn script_of_char(c: char) -> Option<Script> {
    let u = c as u32;
    match u {
        0x0041..=0x005A | 0x0061..=0x007A | 0x00C0..=0x024F => Some(Script::Latin),
        0x0900..=0x097F => Some(Script::Devanagari),
        0x0B80..=0x0BFF => Some(Script::Tamil),
        0x0370..=0x03FF | 0x1F00..=0x1FFF => Some(Script::Greek),
        0x0400..=0x052F => Some(Script::Cyrillic),
        0x0600..=0x06FF | 0xFB50..=0xFDFF | 0xFE70..=0xFEFF => Some(Script::Arabic),
        0x0E00..=0x0E7F => Some(Script::Thai),
        0x3040..=0x30FF => Some(Script::Kana),
        0x1100..=0x11FF | 0x3130..=0x318F | 0xAC00..=0xD7AF => Some(Script::Hangul),
        _ if c.is_alphabetic() => Some(Script::Other),
        _ => None,
    }
}

/// Dominant script of a string: the plurality script of its letters, or
/// `None` if it contains no letters. Thin wrapper over
/// [`crate::script::ScriptProfile`], which also exposes the full
/// per-script histogram, mixed-script flags, and a confidence score. On a
/// tie, the earlier entry in [`Script::ALL`] wins — deterministic and
/// documented, so mixed inputs like `"Tokyo東京"` (5 Latin letters vs. 2
/// Han) always resolve the same way.
pub fn detect_script(text: &str) -> Option<Script> {
    crate::script::ScriptProfile::of(text).primary()
}

/// Best-effort language identification from script (the paper's §2.1
/// caveat applies: Latin-script text defaults to English even though it
/// could be French or Spanish — [`crate::script::Router`] fans out over
/// all three instead of guessing). Thin wrapper over
/// [`crate::script::ScriptProfile`]; mixed-script input resolves by
/// plurality with the [`Script::ALL`] tie-break. Scripts without a
/// converter still return their tag (Hangul → Korean, Thai → Thai) so the
/// caller can surface the paper's `NORESOURCE` outcome; only scripts with
/// no tag at all (Han, …) return `None`.
pub fn detect_language(text: &str) -> Option<Language> {
    crate::script::default_language(detect_script(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_detected_from_blocks() {
        assert_eq!(detect_script("Nehru"), Some(Script::Latin));
        assert_eq!(detect_script("नेहरु"), Some(Script::Devanagari));
        assert_eq!(detect_script("நேரு"), Some(Script::Tamil));
        assert_eq!(detect_script("Σαρρη"), Some(Script::Greek));
        assert_eq!(detect_script("Неру"), Some(Script::Cyrillic));
        assert_eq!(detect_script("네루"), Some(Script::Hangul));
        assert_eq!(detect_script("เนห์รู"), Some(Script::Thai));
        assert_eq!(detect_script("北京"), Some(Script::Other));
        assert_eq!(detect_script("123 !?"), None);
    }

    #[test]
    fn accented_latin_is_latin() {
        assert_eq!(detect_script("René"), Some(Script::Latin));
        assert_eq!(detect_script("École"), Some(Script::Latin));
    }

    #[test]
    fn language_defaults_per_script() {
        assert_eq!(detect_language("Nehru"), Some(Language::English));
        assert_eq!(detect_language("नेहरु"), Some(Language::Hindi));
        assert_eq!(detect_language("நேரு"), Some(Language::Tamil));
        assert_eq!(detect_language("Νερού"), Some(Language::Greek));
        assert_eq!(detect_language("العمارة"), Some(Language::Arabic));
        assert_eq!(detect_language("ネルー"), Some(Language::Japanese));
        assert_eq!(detect_language("Неру"), Some(Language::Russian));
        // Tags without converters still detect (→ NORESOURCE downstream).
        assert_eq!(detect_language("네루"), Some(Language::Korean));
        assert_eq!(detect_language("เนห์รู"), Some(Language::Thai));
        assert_eq!(detect_language("北京"), None);
    }

    #[test]
    fn mixed_script_is_deterministic() {
        // 5 Latin letters vs. 2 Han: plurality → Latin → English.
        assert_eq!(detect_script("Tokyo東京"), Some(Script::Latin));
        assert_eq!(detect_language("Tokyo東京"), Some(Language::English));
        // Exact tie: earlier entry in Script::ALL wins (Latin < Other).
        assert_eq!(detect_script("ab東京"), Some(Script::Latin));
    }

    #[test]
    fn mixed_script_majority_wins() {
        assert_eq!(
            detect_script("Nehru नेहरु जवाहरलाल"),
            Some(Script::Devanagari)
        );
    }

    #[test]
    fn language_parses_from_names_and_codes() {
        assert_eq!("english".parse::<Language>(), Ok(Language::English));
        assert_eq!("TA".parse::<Language>(), Ok(Language::Tamil));
        assert_eq!("el".parse::<Language>(), Ok(Language::Greek));
        assert_eq!("ru".parse::<Language>(), Ok(Language::Russian));
        assert_eq!("korean".parse::<Language>(), Ok(Language::Korean));
        assert_eq!("th".parse::<Language>(), Ok(Language::Thai));
        assert!("klingon".parse::<Language>().is_err());
    }

    #[test]
    fn language_script_mapping() {
        assert_eq!(Language::English.script(), Script::Latin);
        assert_eq!(Language::Hindi.script(), Script::Devanagari);
        assert_eq!(Language::French.script(), Script::Latin);
        assert_eq!(Language::Russian.script(), Script::Cyrillic);
        assert_eq!(Language::Korean.script(), Script::Hangul);
        assert_eq!(Language::Thai.script(), Script::Thai);
        for l in Language::ALL {
            let _ = l.script(); // total
        }
    }

    #[test]
    fn script_index_matches_all_order() {
        for (i, s) in Script::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Script::COUNT, Script::ALL.len());
    }

    #[test]
    fn convertible_is_a_subset_of_all() {
        for l in Language::CONVERTIBLE {
            assert!(Language::ALL.contains(&l));
        }
        assert!(!Language::CONVERTIBLE.contains(&Language::Korean));
        assert!(!Language::CONVERTIBLE.contains(&Language::Thai));
    }
}
