//! Phoneme → Indic-script transliteration.
//!
//! The paper's evaluation corpus was built by *hand-converting* ~800
//! English names into Hindi and Tamil scripts (§4.1). This module
//! mechanizes that step: it renders a [`PhonemeString`] into Devanagari or
//! Tamil orthography, respecting each script's conventions (inherent
//! vowels, matras, virama/pulli, Tamil's collapsed voicing distinction).
//!
//! The composition *English name → IPA → Indic script → per-language G2P →
//! IPA* purposely does **not** round-trip exactly: Tamil cannot write
//! voicing, Devanagari has no /æ/-/ɛ/ contrast in common use, short /u/
//! surfaces as /ʊ/, and so on. These are the very phoneme-set mismatches
//! the LexEQUAL evaluation measures (recall at threshold 0 is far below 1
//! because of them — see Figure 11).

use lexequal_phoneme::{Phoneme, PhonemeString};

/// How a script writes a vowel: standalone letter and combining sign.
struct VowelForm {
    independent: &'static str,
    matra: &'static str, // empty string = the inherent vowel (no sign)
}

/// Script-specific transliteration tables.
struct ScriptTable {
    /// Map an IPA consonant to a letter (None if the phoneme is a vowel
    /// or unmappable).
    consonant: fn(&str) -> Option<&'static str>,
    /// Map an IPA vowel to its written forms.
    vowel: fn(&str) -> Option<VowelForm>,
    /// The virama / pulli sign.
    virama: char,
    /// Whether a word-final consonant takes an explicit virama (Tamil:
    /// yes — கமல்; Devanagari: no — final schwa is deleted in speech).
    final_virama: bool,
}

fn devanagari_consonant(sym: &str) -> Option<&'static str> {
    Some(match sym {
        "p" => "प",
        "b" => "ब",
        "t" => "त",
        "d" => "द",
        "ʈ" => "ट",
        "ɖ" => "ड",
        "k" => "क",
        "g" => "ग",
        "q" => "क़",
        "pʰ" => "फ",
        "bʱ" => "भ",
        "tʰ" => "थ",
        "dʱ" => "ध",
        "ʈʰ" => "ठ",
        "ɖʱ" => "ढ",
        "kʰ" => "ख",
        "gʱ" => "घ",
        "m" => "म",
        "n" => "न",
        "ɳ" => "ण",
        "ɲ" => "ञ",
        "ŋ" => "ङ",
        "f" | "ɸ" => "फ़",
        "v" | "β" | "ʋ" | "w" => "व",
        "θ" => "थ",
        "ð" => "द",
        "s" => "स",
        "z" => "ज़",
        "ʃ" | "ç" => "श",
        "ʒ" => "ज़",
        "ʂ" => "ष",
        "x" => "ख़",
        "ɣ" => "ग़",
        "h" | "ɦ" => "ह",
        "ts" | "tʃ" => "च",
        "dz" | "dʒ" => "ज",
        "tʃʰ" => "छ",
        "dʒʱ" => "झ",
        "r" | "ɾ" | "ɻ" => "र",
        "ɽ" => "ड़",
        "l" | "ɭ" | "ʎ" => "ल",
        "j" => "य",
        _ => return None,
    })
}

fn devanagari_vowel(sym: &str) -> Option<VowelForm> {
    let (independent, matra) = match sym {
        "ə" | "ʌ" | "ɜ" | "ɜː" => ("अ", ""),
        // All open vowels render with the long-a series, as romanized
        // Indian names do (Aakash -> आकाश).
        "a" | "ɑ" | "aː" | "æ" => ("आ", "\u{093E}"),
        "ɛ" | "ɛː" => ("ऐ", "\u{0948}"),
        "i" | "ɪ" => ("इ", "\u{093F}"),
        "iː" => ("ई", "\u{0940}"),
        "u" | "ʊ" | "y" => ("उ", "\u{0941}"),
        "uː" => ("ऊ", "\u{0942}"),
        "e" | "eː" => ("ए", "\u{0947}"),
        "o" | "oː" | "ø" => ("ओ", "\u{094B}"),
        "ɔ" | "ɔː" => ("औ", "\u{094C}"),
        "ɒ" => ("ऑ", "\u{0949}"),
        _ => return None,
    };
    Some(VowelForm { independent, matra })
}

fn tamil_consonant(sym: &str) -> Option<&'static str> {
    Some(match sym {
        // Tamil writes one letter per plosive series — voicing collapses.
        "p" | "b" | "pʰ" | "bʱ" | "ɸ" | "β" => "ப",
        "f" => "ஃப", // aytham + pa
        "t" | "d" | "tʰ" | "dʱ" | "θ" | "ð" => "த",
        "ʈ" | "ɖ" | "ʈʰ" | "ɖʱ" | "ɽ" => "ட",
        "k" | "g" | "kʰ" | "gʱ" | "q" | "x" | "ɣ" => "க",
        "tʃ" | "tʃʰ" | "ts" | "ç" => "ச",
        "dʒ" | "dʒʱ" | "dz" => "ஜ",
        "s" | "z" => "ஸ",
        "ʃ" | "ʒ" | "ʂ" => "ஷ",
        "m" => "ம",
        "n" => "ந",
        "ɳ" => "ண",
        "ɲ" => "ஞ",
        "ŋ" => "ங",
        "r" | "ɾ" => "ர",
        "l" | "ʎ" => "ல",
        "ɭ" => "ள",
        "ɻ" => "ழ",
        "j" => "ய",
        "v" | "ʋ" | "w" => "வ",
        "h" | "ɦ" => "ஹ",
        _ => return None,
    })
}

fn tamil_vowel(sym: &str) -> Option<VowelForm> {
    let (independent, matra) = match sym {
        "a" | "ə" | "ʌ" | "ɜ" | "ɜː" => ("அ", ""),
        "aː" | "ɑ" | "ɒ" | "æ" => ("ஆ", "\u{0BBE}"),
        "i" | "ɪ" => ("இ", "\u{0BBF}"),
        "iː" => ("ஈ", "\u{0BC0}"),
        "u" | "ʊ" | "y" => ("உ", "\u{0BC1}"),
        "uː" => ("ஊ", "\u{0BC2}"),
        "e" | "ɛ" | "ø" | "ɛː" => ("எ", "\u{0BC6}"),
        "eː" => ("ஏ", "\u{0BC7}"),
        "o" | "ɔ" => ("ஒ", "\u{0BCA}"),
        "oː" | "ɔː" => ("ஓ", "\u{0BCB}"),
        _ => return None,
    };
    Some(VowelForm { independent, matra })
}

static DEVANAGARI: ScriptTable = ScriptTable {
    consonant: devanagari_consonant,
    vowel: devanagari_vowel,
    virama: '\u{094D}',
    final_virama: false,
};

static TAMIL: ScriptTable = ScriptTable {
    consonant: tamil_consonant,
    vowel: tamil_vowel,
    virama: '\u{0BCD}',
    final_virama: true,
};

fn transliterate(phonemes: &PhonemeString, table: &ScriptTable) -> String {
    let mut out = String::new();
    let mut pending_consonant = false; // last emitted unit is a bare consonant
    for &p in phonemes.iter() {
        let sym = p.symbol();
        if let Some(letter) = (table.consonant)(sym) {
            if pending_consonant {
                out.push(table.virama); // consonant cluster
            }
            out.push_str(letter);
            pending_consonant = true;
        } else if let Some(form) = (table.vowel)(sym) {
            if pending_consonant {
                out.push_str(form.matra); // empty for the inherent vowel
            } else {
                out.push_str(form.independent);
            }
            pending_consonant = false;
        } else {
            // Unmappable phoneme (e.g. glottal stop): skip, as a human
            // transliterator would.
        }
    }
    if pending_consonant && table.final_virama {
        out.push(table.virama);
    }
    out
}

/// Render a phoneme string in Devanagari orthography.
pub fn to_devanagari(phonemes: &PhonemeString) -> String {
    transliterate(phonemes, &DEVANAGARI)
}

/// Render a phoneme string in Tamil orthography.
pub fn to_tamil(phonemes: &PhonemeString) -> String {
    transliterate(phonemes, &TAMIL)
}

/// Convenience: phoneme symbol of each segment — used by tests.
#[allow(dead_code)]
fn syms(s: &PhonemeString) -> Vec<&'static str> {
    s.iter().map(|p: &Phoneme| p.symbol()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hindi::HindiG2p;
    use crate::tamil::TamilG2p;

    fn ps(ipa: &str) -> PhonemeString {
        ipa.parse().unwrap()
    }

    #[test]
    fn nehru_to_devanagari() {
        // n-e-h-r-u -> ने + ह् + रु. The transliterator writes the hr
        // cluster explicitly with a virama (native orthography नेहरु relies
        // on schwa deletion instead); both read back as /neɦru/-like.
        assert_eq!(to_devanagari(&ps("nehru")), "नेह\u{094D}रु");
        let back = HindiG2p.convert("नेह\u{094D}रु").unwrap().to_string();
        assert_eq!(back, HindiG2p.convert("नेहरु").unwrap().to_string());
    }

    #[test]
    fn nehru_to_tamil() {
        assert_eq!(to_tamil(&ps("neːru")), "நேரு");
    }

    #[test]
    fn clusters_get_virama() {
        // "indra" has the -ndr- cluster.
        let d = to_devanagari(&ps("ɪndra"));
        assert!(d.contains('\u{094D}'), "expected virama in {d}");
    }

    #[test]
    fn tamil_final_consonant_takes_pulli() {
        let t = to_tamil(&ps("kamal"));
        assert!(t.ends_with('\u{0BCD}'), "expected pulli at end of {t}");
        assert_eq!(t, "கமல்");
    }

    #[test]
    fn devanagari_final_consonant_is_bare() {
        assert_eq!(to_devanagari(&ps("raːm")), "राम");
    }

    #[test]
    fn inherent_vowel_is_invisible() {
        // kə -> क alone (schwa is inherent)
        assert_eq!(to_devanagari(&ps("kə")), "क");
        assert_eq!(to_tamil(&ps("ka")), "க");
    }

    #[test]
    fn roundtrip_through_hindi_g2p_is_phonetically_close() {
        // IPA -> Devanagari -> Hindi G2P -> IPA must be *close* but not
        // necessarily identical (that's the paper's fuzziness).
        let original = ps("dʒəʋaɦərlaːl");
        let script = to_devanagari(&original);
        let back = HindiG2p.convert(&script).unwrap();
        // Lengths stay equal here; segments may differ in quality (a~ə).
        assert_eq!(back.len(), original.len());
    }

    #[test]
    fn roundtrip_through_tamil_loses_voicing() {
        // "gopal" written in Tamil begins with க which reads back /k/.
        let original = ps("goːpaːl");
        let script = to_tamil(&original);
        let back = TamilG2p.convert(&script).unwrap().to_string();
        assert!(back.starts_with('k'), "Tamil voicing collapse: {back}");
    }

    #[test]
    fn f_spelled_with_aytham_in_tamil() {
        let t = to_tamil(&ps("fan"));
        assert!(t.starts_with('ஃ'), "got {t}");
        // and reads back as f
        let back = TamilG2p.convert(&t).unwrap().to_string();
        assert!(back.starts_with('f'), "got {back}");
    }

    #[test]
    fn every_inventory_phoneme_maps_or_skips_cleanly() {
        use lexequal_phoneme::Inventory;
        for p in Inventory::iter() {
            let s = PhonemeString::new(vec![p]);
            // Must not panic:
            let _ = to_devanagari(&s);
            let _ = to_tamil(&s);
        }
    }

    #[test]
    fn unmappable_phonemes_are_skipped() {
        // Glottal stop has no Devanagari spelling.
        assert_eq!(to_devanagari(&ps("ʔə")), "अ");
    }
}

/// Render a phoneme string as a plain-ASCII romanization — for showing
/// matches from any script to a Latin-script user (the search-engine use
/// case of paper §5.3). Lossy by design: aspiration becomes `h`,
/// length doubles the vowel, retroflex/dental distinctions collapse.
pub fn to_latin(phonemes: &PhonemeString) -> String {
    let mut out = String::new();
    for &p in phonemes.iter() {
        let s = match p.symbol() {
            "ʈ" => "t",
            "ɖ" => "d",
            "q" => "q",
            "ʔ" => "'",
            "pʰ" => "ph",
            "bʱ" => "bh",
            "tʰ" => "th",
            "dʱ" => "dh",
            "ʈʰ" => "th",
            "ɖʱ" => "dh",
            "kʰ" => "kh",
            "gʱ" => "gh",
            "ɳ" | "ɲ" => "n",
            "ŋ" => "ng",
            "ɸ" => "f",
            "β" | "ʋ" => "v",
            "θ" => "th",
            "ð" => "dh",
            "ʃ" | "ʂ" | "ç" => "sh",
            "ʒ" => "zh",
            "x" => "kh",
            "ɣ" => "gh",
            "ɦ" => "h",
            "ts" => "ts",
            "dz" => "dz",
            "tʃ" => "ch",
            "dʒ" => "j",
            "tʃʰ" => "chh",
            "dʒʱ" => "jh",
            "ɾ" | "ɻ" | "ɽ" => "r",
            "ɭ" | "ʎ" => "l",
            "j" => "y",
            "ɪ" => "i",
            "iː" => "ee",
            "y" => "u",
            "ɛ" | "ɛː" => "e",
            "ø" => "o",
            "æ" => "a",
            "ɑ" | "aː" => "aa",
            "ɒ" | "ɔ" | "ɔː" => "o",
            "oː" => "oo",
            "ʊ" => "u",
            "uː" => "oo",
            "ʌ" | "ə" | "ɜ" | "ɜː" => "a",
            "eː" => "e",
            other => other, // plain ASCII segments pass through
        };
        out.push_str(s);
    }
    out
}

#[cfg(test)]
mod latin_tests {
    use super::*;

    #[test]
    fn romanization_is_plain_ascii() {
        use lexequal_phoneme::Inventory;
        for p in Inventory::iter() {
            let s = to_latin(&PhonemeString::new(vec![p]));
            assert!(s.is_ascii(), "{:?} romanized to non-ASCII {s:?}", p);
        }
    }

    #[test]
    fn familiar_names_read_naturally() {
        let neru: PhonemeString = "neɦrʊ".parse().unwrap();
        assert_eq!(to_latin(&neru), "nehru");
        let gandhi: PhonemeString = "gaːndʱiː".parse().unwrap();
        assert_eq!(to_latin(&gandhi), "gaandhee");
        let chennai: PhonemeString = "tʃɛnnai".parse().unwrap();
        assert_eq!(to_latin(&chennai), "chennai");
    }
}
