//! Arabic grapheme-to-phoneme conversion.
//!
//! The paper's opening example is matching the English string *Al-Qaeda*
//! against "its equivalent strings in other scripts, say, Arabic, Greek or
//! Chinese" (§1), and Figure 1's catalog carries an Arabic row. This
//! converter covers Modern Standard Arabic orthography for proper names:
//!
//! * the consonant inventory mapped to its closest segments in the shared
//!   IPA inventory (emphatics collapse onto their plain coronals — the
//!   same inventory-mismatch fuzziness the Indic scripts exhibit);
//! * long vowels written with ا/و/ي, short vowels from diacritics when
//!   present (fatha/damma/kasra), and a schwa-like epenthetic vowel
//!   between written consonant clusters when they are not (names in
//!   databases are rarely vocalized — the paper's data-entry reality);
//! * the definite article ال (al-), ta marbuta ة, hamza forms, and the
//!   alif variants.

use crate::error::G2pError;
use crate::language::Language;
use lexequal_phoneme::PhonemeString;

/// IPA for one Arabic consonant letter (emphatics and pharyngeals fold to
/// their nearest plain segments in the shared inventory).
fn consonant(c: char) -> Option<&'static str> {
    Some(match c {
        'ب' => "b",
        'ت' => "t",
        'ث' => "θ",
        'ج' => "dʒ",
        'ح' => "h", // ħ folded to h
        'خ' => "x",
        'د' => "d",
        'ذ' => "ð",
        'ر' => "r",
        'ز' => "z",
        'س' => "s",
        'ش' => "ʃ",
        'ص' => "s", // emphatic ṣ
        'ض' => "d", // emphatic ḍ
        'ط' => "t", // emphatic ṭ
        'ظ' => "ð", // emphatic ẓ
        'ع' => "ʔ", // ʕ folded to glottal stop
        'غ' => "ɣ",
        'ف' => "f",
        'ق' => "q",
        'ك' => "k",
        'ل' => "l",
        'م' => "m",
        'ن' => "n",
        'ه' => "h",
        'و' => "w", // consonantal waw; long-u handling is positional
        'ي' => "j", // consonantal ya; long-i handling is positional
        'ء' | 'أ' | 'إ' | 'ؤ' | 'ئ' => "ʔ",
        _ => return None,
    })
}

/// Is this letter a long-vowel carrier when it follows a consonant?
fn long_vowel(c: char) -> Option<&'static str> {
    Some(match c {
        'ا' | 'آ' | 'ى' => "aː",
        'و' => "uː",
        'ي' => "iː",
        _ => return None,
    })
}

/// Short-vowel diacritics (harakat).
fn haraka(c: char) -> Option<&'static str> {
    Some(match c {
        '\u{064E}' => "a",  // fatha
        '\u{064F}' => "u",  // damma
        '\u{0650}' => "ɪ",  // kasra
        '\u{0652}' => "",   // sukun: explicitly no vowel
        '\u{064B}' => "an", // fathatan
        '\u{064C}' => "un", // dammatan
        '\u{064D}' => "ɪn", // kasratan
        _ => return None,
    })
}

const SHADDA: char = '\u{0651}';

/// The Arabic text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArabicG2p;

impl ArabicG2p {
    /// Convert Arabic-script text to IPA phonemes.
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let mut ipa = String::new();
        for word in text.split(|c: char| c.is_whitespace() || c == '-' || c == '،' || c == '.') {
            if word.is_empty() {
                continue;
            }
            convert_word(word, &mut ipa)?;
        }
        Ok(ipa.parse()?)
    }
}

fn convert_word(word: &str, ipa: &mut String) -> Result<(), G2pError> {
    let chars: Vec<char> = word
        .chars()
        .filter(|&c| c != '\u{0640}') // tatweel (kashida) is typographic
        .collect();
    let mut i = 0usize;

    // The definite article ال (al-): emit /al/ and continue; assimilation
    // to sun letters is skipped — proper names keep the written form more
    // often than not and the cluster distance absorbs the rest.
    if chars.len() >= 3 && chars[0] == 'ا' && chars[1] == 'ل' {
        ipa.push_str("al");
        i = 2;
    } else if chars.first() == Some(&'ا') {
        // Bare initial alif: the /a/ onset (names rarely carry the hamza).
        ipa.push('a');
        i = 1;
    }

    // After a bare initial alif the last segment is the /a/ vowel; after
    // the article "al" it is the /l/ consonant.
    let mut last_was_vowel = i == 1;
    let mut first_segment = true;
    while i < chars.len() {
        let c = chars[i];
        if let Some(h) = haraka(c) {
            ipa.push_str(h);
            last_was_vowel = !h.is_empty();
            i += 1;
            continue;
        }
        if c == SHADDA {
            // Gemination: length is not contrastive after folding; skip.
            i += 1;
            continue;
        }
        if c == 'ة' {
            // Ta marbuta: in pausal (name) pronunciation the feminine
            // ending reads as a bare /a/ — القاعدة is /alqaːʔida/, not
            // /…dat/.
            if !last_was_vowel {
                ipa.push('a');
                last_was_vowel = true;
            }
            i += 1;
            continue;
        }
        // Long-vowel carriers after a consonant.
        if !first_segment && !last_was_vowel {
            if let Some(v) = long_vowel(c) {
                ipa.push_str(v);
                last_was_vowel = true;
                i += 1;
                continue;
            }
        }
        if let Some(cons) = consonant(c) {
            // Unvocalized spelling: insert an epenthetic /a/ between
            // consecutive written consonants (qɑlb -> qalb-like reading).
            if !first_segment && !last_was_vowel {
                ipa.push('a');
            }
            ipa.push_str(cons);
            last_was_vowel = false;
            first_segment = false;
            i += 1;
            continue;
        }
        if c == 'ا' || c == 'آ' || c == 'ى' {
            // Alif not following a consonant (e.g. after a haraka): long a.
            ipa.push_str("aː");
            last_was_vowel = true;
            first_segment = false;
            i += 1;
            continue;
        }
        return Err(G2pError::UntranslatableChar {
            ch: c,
            language: Language::Arabic,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        ArabicG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn al_qaeda_from_the_papers_introduction() {
        // القاعدة: ا ل ق ا ع د ة -> al-qaː-ʔ-(a)-d-(a)-t
        let p = ipa("القاعدة");
        assert!(p.starts_with("alqaː"), "got {p}");
    }

    #[test]
    fn definite_article() {
        assert!(ipa("الكتاب").starts_with("alk"), "{}", ipa("الكتاب"));
    }

    #[test]
    fn long_vowels_after_consonants() {
        // نور (Nur): n-uː-r
        assert_eq!(ipa("نور"), "nuːr");
        // أمين (Amin): ʔ-a-m-iː-n
        assert_eq!(ipa("أمين"), "ʔamiːn");
        // سليم (Salim)
        assert_eq!(ipa("سليم"), "saliːm");
    }

    #[test]
    fn epenthetic_vowels_between_written_consonants() {
        // محمد (Muhammad, unvocalized m-h-m-d) -> mahamad-like
        let p = ipa("محمد");
        assert_eq!(p, "mahamad");
    }

    #[test]
    fn harakat_override_epenthesis() {
        // مُحَمَّد with damma/fatha diacritics
        let p = ipa("م\u{064F}ح\u{064E}م\u{0651}\u{064E}د");
        assert_eq!(p, "muhamad");
    }

    #[test]
    fn emphatics_fold_to_plain_coronals() {
        assert_eq!(ipa("صلاح"), ipa("سلاح")); // ṣ and s merge
    }

    #[test]
    fn hamza_forms_are_glottal_stops() {
        assert!(ipa("أحمد").starts_with('ʔ'));
    }

    #[test]
    fn behnasi_from_figure1() {
        // بهنسي — the Figure 1 Arabic author (Behnasi).
        let p = ipa("بهنسي");
        assert!(p.starts_with("bah"), "got {p}");
        assert!(
            p.ends_with("iː") || p.ends_with('i') || p.ends_with('j'),
            "got {p}"
        );
    }

    #[test]
    fn untranslatable_char_reported() {
        assert!(matches!(
            ArabicG2p.convert("ب#"),
            Err(G2pError::UntranslatableChar { ch: '#', .. })
        ));
    }
}
