//! Japanese kana grapheme-to-phoneme conversion.
//!
//! Figure 1's catalog carries a Japanese row, and katakana is how Japanese
//! writes foreign proper names (ネルー = Nehru) — precisely the
//! multiscript-matching scenario. Kana is a syllabary, so conversion is a
//! direct table: base syllables, voicing marks (dakuten) are precomposed
//! in Unicode, small-ya/yu/yo combinations (きゃ = kja), the long-vowel
//! mark ー, sokuon っ (gemination — dropped after folding, length is not
//! contrastive in the shared inventory), and the moraic nasal ん.
//!
//! Kanji has no phonemic reading without a dictionary; kanji input yields
//! [`G2pError::UntranslatableChar`], mirroring the real resource gap the
//! paper's `NORESOURCE` models.

use crate::error::G2pError;
use crate::language::Language;
use lexequal_phoneme::PhonemeString;

/// IPA for a single kana syllable (katakana normalized to hiragana).
fn kana(c: char) -> Option<&'static str> {
    Some(match c {
        'あ' => "a",
        'い' => "i",
        'う' => "u",
        'え' => "e",
        'お' => "o",
        'か' => "ka",
        'き' => "ki",
        'く' => "ku",
        'け' => "ke",
        'こ' => "ko",
        'が' => "ga",
        'ぎ' => "gi",
        'ぐ' => "gu",
        'げ' => "ge",
        'ご' => "go",
        'さ' => "sa",
        'し' => "ʃi",
        'す' => "su",
        'せ' => "se",
        'そ' => "so",
        'ざ' => "za",
        'じ' => "dʒi",
        'ず' => "zu",
        'ぜ' => "ze",
        'ぞ' => "zo",
        'た' => "ta",
        'ち' => "tʃi",
        'つ' => "tsu",
        'て' => "te",
        'と' => "to",
        'だ' => "da",
        'ぢ' => "dʒi",
        'づ' => "zu",
        'で' => "de",
        'ど' => "do",
        'な' => "na",
        'に' => "ni",
        'ぬ' => "nu",
        'ね' => "ne",
        'の' => "no",
        'は' => "ha",
        'ひ' => "hi",
        'ふ' => "ɸu",
        'へ' => "he",
        'ほ' => "ho",
        'ば' => "ba",
        'び' => "bi",
        'ぶ' => "bu",
        'べ' => "be",
        'ぼ' => "bo",
        'ぱ' => "pa",
        'ぴ' => "pi",
        'ぷ' => "pu",
        'ぺ' => "pe",
        'ぽ' => "po",
        'ま' => "ma",
        'み' => "mi",
        'む' => "mu",
        'め' => "me",
        'も' => "mo",
        'や' => "ja",
        'ゆ' => "ju",
        'よ' => "jo",
        'ら' => "ɾa",
        'り' => "ɾi",
        'る' => "ɾu",
        'れ' => "ɾe",
        'ろ' => "ɾo",
        'わ' => "wa",
        'を' => "o",
        'ゔ' => "vu",
        _ => return None,
    })
}

/// The glide for a small ya/yu/yo, replacing the preceding syllable's
/// final vowel: き + ゃ = kja.
fn small_glide(c: char) -> Option<&'static str> {
    Some(match c {
        'ゃ' => "ja",
        'ゅ' => "ju",
        'ょ' => "jo",
        _ => return None,
    })
}

/// Small vowels (used in foreign-name katakana like ファ = fa).
fn small_vowel(c: char) -> Option<&'static str> {
    Some(match c {
        'ぁ' => "a",
        'ぃ' => "i",
        'ぅ' => "u",
        'ぇ' => "e",
        'ぉ' => "o",
        _ => return None,
    })
}

/// Normalize katakana (and halfwidth forms are out of scope) to hiragana.
fn to_hiragana(c: char) -> char {
    let u = c as u32;
    if (0x30A1..=0x30F6).contains(&u) {
        // katakana -> hiragana block shift
        char::from_u32(u - 0x60).unwrap_or(c)
    } else {
        c
    }
}

const LONG_MARK: char = 'ー';
const SOKUON: char = 'っ';
const MORAIC_N: char = 'ん';

/// The Japanese (kana) text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct JapaneseG2p;

impl JapaneseG2p {
    /// Convert kana text to IPA phonemes. Kanji and other non-kana
    /// characters raise [`G2pError::UntranslatableChar`].
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let chars: Vec<char> = text
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '・')
            .map(to_hiragana)
            .collect();
        let mut ipa = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == SOKUON {
                i += 1; // gemination: length dropped after folding
                continue;
            }
            if c == MORAIC_N {
                ipa.push('n');
                i += 1;
                continue;
            }
            if c == LONG_MARK {
                // Lengthen the previous vowel: in the segmental inventory
                // a/i/u/e/o have long counterparts.
                lengthen_last_vowel(&mut ipa);
                i += 1;
                continue;
            }
            let Some(syll) = kana(c) else {
                if let Some(v) = small_vowel(c) {
                    // ファ-style: replace preceding u with the small vowel.
                    replace_final_vowel(&mut ipa, v);
                    i += 1;
                    continue;
                }
                return Err(G2pError::UntranslatableChar {
                    ch: c,
                    language: Language::Japanese,
                });
            };
            // Small ya/yu/yo merges with an i-syllable: き + ゃ -> kja.
            // Palatal onsets (ʃ, tʃ, dʒ) absorb the glide: しゅ -> ʃu.
            if let Some(&next) = chars.get(i + 1) {
                if let Some(glide) = small_glide(next) {
                    let onset = syll.strip_suffix('i').unwrap_or(syll);
                    ipa.push_str(onset);
                    if onset.ends_with('ʃ') || onset.ends_with('ʒ') {
                        ipa.push_str(&glide['j'.len_utf8()..]);
                    } else {
                        ipa.push_str(glide);
                    }
                    i += 2;
                    continue;
                }
            }
            ipa.push_str(syll);
            i += 1;
        }
        Ok(ipa.parse()?)
    }
}

/// Append the length mark to the final vowel, producing the long-vowel
/// segment the inventory knows (aː, iː, uː, eː, oː).
fn lengthen_last_vowel(ipa: &mut String) {
    for v in ['a', 'i', 'u', 'e', 'o'] {
        if ipa.ends_with(v) {
            ipa.push('ː');
            return;
        }
    }
}

/// Replace the final short vowel with `v` (small-vowel combinations).
fn replace_final_vowel(ipa: &mut String, v: &str) {
    for old in ['a', 'i', 'u', 'e', 'o'] {
        if ipa.ends_with(old) {
            ipa.truncate(ipa.len() - old.len_utf8());
            ipa.push_str(v);
            return;
        }
    }
    ipa.push_str(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        JapaneseG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn nehru_in_katakana() {
        // ネルー — how Japanese writes Nehru.
        assert_eq!(ipa("ネルー"), "neɾuː");
    }

    #[test]
    fn basic_syllables() {
        assert_eq!(ipa("さくら"), "sakuɾa");
        assert_eq!(ipa("カタカナ"), "katakana");
    }

    #[test]
    fn long_vowel_mark() {
        assert_eq!(ipa("トーキョー"), "toːkjoː");
    }

    #[test]
    fn small_ya_yu_yo() {
        assert_eq!(ipa("きゃ"), "kja");
        assert_eq!(ipa("シュ"), "ʃu"); // ʃi + small yu -> ʃju? onset ʃ + ju
    }

    #[test]
    fn moraic_nasal_and_sokuon() {
        assert_eq!(ipa("にっぽん"), "nipon"); // sokuon dropped, ん -> n
        assert_eq!(ipa("ガンジー"), "gandʒiː");
    }

    #[test]
    fn small_vowel_foreign_combos() {
        // ファ = fu + small a -> ɸa
        assert_eq!(ipa("ファン"), "ɸan");
    }

    #[test]
    fn katakana_equals_hiragana() {
        assert_eq!(ipa("ネルー"), ipa("ねるー"));
    }

    #[test]
    fn kanji_is_untranslatable() {
        assert!(matches!(
            JapaneseG2p.convert("寺井"),
            Err(G2pError::UntranslatableChar { .. })
        ));
    }

    #[test]
    fn gandhi_in_katakana() {
        let p = ipa("ガンディー");
        assert!(p.starts_with("gand"), "got {p}");
    }
}
