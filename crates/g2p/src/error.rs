//! Error type for text-to-phoneme conversion.

use lexequal_phoneme::PhonemeError;
use std::fmt;

use crate::language::Language;

/// Errors raised during text-to-phoneme conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum G2pError {
    /// No TTP converter is installed for this language — the `NORESOURCE`
    /// outcome of the LexEQUAL algorithm (paper Figure 8, step 6).
    NoResource(Language),
    /// The input contained a character the converter cannot interpret.
    UntranslatableChar {
        /// The offending character.
        ch: char,
        /// The language whose converter rejected it.
        language: Language,
    },
    /// A converter emitted an IPA sequence the phoneme inventory rejected
    /// (internal invariant violation — converters are tested to never do
    /// this for inputs in their script).
    BadEmission(PhonemeError),
}

impl fmt::Display for G2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            G2pError::NoResource(lang) => {
                write!(f, "no text-to-phoneme resource for language {lang}")
            }
            G2pError::UntranslatableChar { ch, language } => {
                write!(f, "character {ch:?} is not translatable as {language}")
            }
            G2pError::BadEmission(e) => write!(f, "converter emitted invalid IPA: {e}"),
        }
    }
}

impl std::error::Error for G2pError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            G2pError::BadEmission(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhonemeError> for G2pError {
    fn from(e: PhonemeError) -> Self {
        G2pError::BadEmission(e)
    }
}
