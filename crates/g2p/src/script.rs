//! Script profiling and language routing for **untagged** input.
//!
//! The paper assumes every value arrives "tagged with its language" (§1)
//! and concedes that block-based identification is imperfect because many
//! languages share a script (§2.1). This module is the subsystem behind
//! the tagless wire forms (`ADD -`, `MATCH -`): instead of guessing one
//! language per script, it
//!
//! 1. profiles the input in a single O(n) pass ([`ScriptProfile`]:
//!    per-script code-point histogram, plurality primary script,
//!    mixed-script flag, confidence score), and
//! 2. routes the profile ([`Router`]) to exactly one converter when the
//!    script is unambiguous, or **fans out** across every plausible
//!    language sharing the script (Latin → English/French/Spanish,
//!    [`LATIN_FANOUT`]). The caller unions and dedupes the per-language
//!    candidates before the bit-identical verifier confirms them, so
//!    fan-out can only *add* recall — accuracy is never at risk.
//!
//! Scripts the detector recognizes but no converter serves (Hangul →
//! Korean, Thai → Thai) route to [`Route::NoResource`] — the paper's
//! `NORESOURCE` outcome for languages outside `S_L`, not an error.

use crate::language::{script_of_char, Language, Script};

/// Fan-out set for Latin-script input: the Latin-writing languages we
/// ship converters for, in registry order. English first — it is also the
/// resolution choice when an untagged `ADD` must commit to one tag.
pub const LATIN_FANOUT: [Language; 3] = [Language::English, Language::French, Language::Spanish];

/// The default (most likely) language of a script, used when one tag must
/// be committed to — e.g. [`crate::detect_language`] and untagged-`ADD`
/// resolution. Latin defaults to English (the paper's §2.1 caveat);
/// `None` only for scripts with no tag at all (Han, …).
pub fn default_language(script: Script) -> Option<Language> {
    match script {
        Script::Latin => Some(Language::English),
        Script::Devanagari => Some(Language::Hindi),
        Script::Tamil => Some(Language::Tamil),
        Script::Greek => Some(Language::Greek),
        Script::Cyrillic => Some(Language::Russian),
        Script::Arabic => Some(Language::Arabic),
        Script::Kana => Some(Language::Japanese),
        Script::Hangul => Some(Language::Korean),
        Script::Thai => Some(Language::Thai),
        Script::Other => None,
    }
}

/// Per-script letter histogram of one string, computed in a single O(n)
/// pass over its characters. Everything else — primary script, mixed
/// flag, confidence — is derived from the counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptProfile {
    counts: [u32; Script::COUNT],
    letters: u32,
}

impl ScriptProfile {
    /// Profile `text`: one pass, one [`script_of_char`] lookup per
    /// character, non-letters (digits, punctuation, whitespace) ignored.
    pub fn of(text: &str) -> Self {
        let mut counts = [0u32; Script::COUNT];
        let mut letters = 0u32;
        for c in text.chars() {
            if let Some(s) = script_of_char(c) {
                counts[s.index()] += 1;
                letters += 1;
            }
        }
        ScriptProfile { counts, letters }
    }

    /// Letters counted for `script`.
    pub fn count(&self, script: Script) -> u32 {
        self.counts[script.index()]
    }

    /// The full per-script histogram, indexed by [`Script::index`].
    pub fn histogram(&self) -> &[u32; Script::COUNT] {
        &self.counts
    }

    /// Total letters profiled (histogram sum).
    pub fn letters(&self) -> u32 {
        self.letters
    }

    /// The plurality script, or `None` if the string has no letters. On a
    /// tie the earlier entry in [`Script::ALL`] wins — deterministic, so
    /// mixed inputs always resolve the same way.
    pub fn primary(&self) -> Option<Script> {
        if self.letters == 0 {
            return None;
        }
        let mut best = Script::ALL[0];
        for s in Script::ALL {
            if self.count(s) > self.count(best) {
                best = s;
            }
        }
        Some(best)
    }

    /// Whether letters from more than one script are present
    /// ("Tokyo東京").
    pub fn is_mixed(&self) -> bool {
        self.counts.iter().filter(|&&n| n > 0).count() > 1
    }

    /// Fraction of letters belonging to the primary script, in `[0, 1]`
    /// (`0.0` when there are no letters). `1.0` means pure single-script
    /// input; anything lower quantifies how mixed it is.
    pub fn confidence(&self) -> f64 {
        match self.primary() {
            Some(p) => f64::from(self.count(p)) / f64::from(self.letters),
            None => 0.0,
        }
    }
}

/// Where an untagged request goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// The script maps to exactly one shipped converter.
    Single(Language),
    /// Several shipped converters share the script: transform under each,
    /// union + dedupe the candidates.
    FanOut(&'static [Language]),
    /// The script is recognized and tagged, but no converter ships — the
    /// paper's `NORESOURCE` outcome, carrying the tag to report.
    NoResource(Language),
    /// The script is seen but has no language tag at all (Han, …).
    Unsupported(Script),
    /// No letters to detect from — bad input.
    NoLetters,
}

/// Maps a [`ScriptProfile`] to converters. Stateless: the routing table
/// is fixed by which converters ship (callers intersect fan-out sets with
/// their own registry's enabled languages).
#[derive(Debug, Clone, Copy, Default)]
pub struct Router;

impl Router {
    /// Route a profile by its primary script.
    ///
    /// | primary script | route |
    /// |---|---|
    /// | Latin | fan out over [`LATIN_FANOUT`] (En/Fr/Es) |
    /// | Devanagari / Tamil / Greek / Cyrillic / Arabic / Kana | single converter |
    /// | Hangul / Thai | `NoResource` (Korean / Thai tag) |
    /// | Other (Han, …) | `Unsupported` |
    /// | no letters | `NoLetters` |
    pub fn route(profile: &ScriptProfile) -> Route {
        let Some(primary) = profile.primary() else {
            return Route::NoLetters;
        };
        match primary {
            Script::Latin => Route::FanOut(&LATIN_FANOUT),
            Script::Hangul => Route::NoResource(Language::Korean),
            Script::Thai => Route::NoResource(Language::Thai),
            Script::Other => Route::Unsupported(Script::Other),
            s => match default_language(s) {
                Some(l) => Route::Single(l),
                None => Route::Unsupported(s),
            },
        }
    }

    /// Profile and route in one call.
    pub fn route_text(text: &str) -> Route {
        Self::route(&ScriptProfile::of(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_a_per_script_histogram() {
        let p = ScriptProfile::of("Tokyo東京 123!");
        assert_eq!(p.count(Script::Latin), 5);
        assert_eq!(p.count(Script::Other), 2);
        assert_eq!(p.letters(), 7);
        assert!(p.is_mixed());
        assert_eq!(p.primary(), Some(Script::Latin));
        assert!((p.confidence() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn pure_input_has_full_confidence() {
        let p = ScriptProfile::of("Неру");
        assert_eq!(p.primary(), Some(Script::Cyrillic));
        assert!(!p.is_mixed());
        assert_eq!(p.confidence(), 1.0);
    }

    #[test]
    fn empty_input_profiles_to_nothing() {
        let p = ScriptProfile::of("123 !?");
        assert_eq!(p.letters(), 0);
        assert_eq!(p.primary(), None);
        assert_eq!(p.confidence(), 0.0);
        assert!(!p.is_mixed());
    }

    #[test]
    fn ties_break_by_script_order() {
        // 2 Latin vs. 2 Devanagari (न + matra): Latin is earlier in
        // Script::ALL.
        let p = ScriptProfile::of("abने");
        assert_eq!(p.count(Script::Latin), 2);
        assert_eq!(p.count(Script::Devanagari), 2);
        assert_eq!(p.primary(), Some(Script::Latin));
    }

    #[test]
    fn routing_table() {
        assert_eq!(
            Router::route_text("Nehru"),
            Route::FanOut(&LATIN_FANOUT as &[Language])
        );
        assert_eq!(Router::route_text("नेहरु"), Route::Single(Language::Hindi));
        assert_eq!(Router::route_text("நேரு"), Route::Single(Language::Tamil));
        assert_eq!(Router::route_text("Νερού"), Route::Single(Language::Greek));
        assert_eq!(Router::route_text("Неру"), Route::Single(Language::Russian));
        assert_eq!(
            Router::route_text("العمارة"),
            Route::Single(Language::Arabic)
        );
        assert_eq!(
            Router::route_text("ネルー"),
            Route::Single(Language::Japanese)
        );
        assert_eq!(
            Router::route_text("네루"),
            Route::NoResource(Language::Korean)
        );
        assert_eq!(
            Router::route_text("เนห์รู"),
            Route::NoResource(Language::Thai)
        );
        assert_eq!(
            Router::route_text("北京"),
            Route::Unsupported(Script::Other)
        );
        assert_eq!(Router::route_text("42"), Route::NoLetters);
    }

    #[test]
    fn mixed_input_routes_by_plurality() {
        // Latin plurality → Latin fan-out, deterministically.
        assert_eq!(
            Router::route_text("Tokyo東京"),
            Route::FanOut(&LATIN_FANOUT as &[Language])
        );
        // Devanagari plurality (the language.rs golden string).
        assert_eq!(
            Router::route_text("Nehru नेहरु जवाहरलाल"),
            Route::Single(Language::Hindi)
        );
    }

    #[test]
    fn default_language_covers_every_tagged_script() {
        for s in Script::ALL {
            match s {
                Script::Other => assert_eq!(default_language(s), None),
                _ => assert!(default_language(s).is_some(), "{s}"),
            }
        }
    }
}
