//! Modern Greek grapheme-to-phoneme conversion.
//!
//! Modern Greek orthography is regular once the historical digraphs are
//! known: several vowel digraphs collapsed to /i/ or /ɛ/ (iotacism), αυ/ευ
//! surface as /av~af/, /ev~ef/ depending on the following voicing, and the
//! nasal+stop digraphs μπ/ντ/γκ spell /b/, /d/, /g/. Covers the paper's
//! Figure 1 catalog rows (e.g. Σαρρη, Νερού).

use crate::error::G2pError;
use crate::language::Language;
use lexequal_phoneme::PhonemeString;

/// Fold accents/diaeresis to base letters and lowercase (final sigma ς is
/// folded to σ).
fn fold(c: char) -> char {
    match c.to_lowercase().next().unwrap_or(c) {
        'ά' => 'α',
        'έ' => 'ε',
        'ή' => 'η',
        'ί' | 'ϊ' | 'ΐ' => 'ι',
        'ό' => 'ο',
        'ύ' | 'ϋ' | 'ΰ' => 'υ',
        'ώ' => 'ω',
        'ς' => 'σ',
        other => other,
    }
}

fn is_front_vowel(c: char) -> bool {
    matches!(c, 'ε' | 'ι' | 'η' | 'υ')
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'α' | 'ε' | 'η' | 'ι' | 'ο' | 'υ' | 'ω')
}

/// Is the folded letter voiceless for αυ/ευ resolution? (θ κ ξ π σ τ φ χ ψ)
fn is_voiceless(c: char) -> bool {
    matches!(c, 'θ' | 'κ' | 'ξ' | 'π' | 'σ' | 'τ' | 'φ' | 'χ' | 'ψ')
}

/// The Greek text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreekG2p;

impl GreekG2p {
    /// Convert Greek-script text to IPA phonemes.
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let chars: Vec<char> = text
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '-')
            .map(fold)
            .collect();
        let mut ipa = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            // Digraphs first.
            match (c, next) {
                ('ο', Some('υ')) => {
                    ipa.push('u');
                    i += 2;
                    continue;
                }
                ('α', Some('ι')) => {
                    ipa.push('ɛ');
                    i += 2;
                    continue;
                }
                ('ε', Some('ι')) | ('ο', Some('ι')) | ('υ', Some('ι')) => {
                    ipa.push('i');
                    i += 2;
                    continue;
                }
                ('α', Some('υ')) | ('ε', Some('υ')) | ('η', Some('υ')) => {
                    let head = match c {
                        'α' => "a",
                        'ε' => "ɛ",
                        _ => "i",
                    };
                    ipa.push_str(head);
                    // /f/ before voiceless or at word end, /v/ otherwise.
                    if after.map_or(true, is_voiceless) {
                        ipa.push('f');
                    } else {
                        ipa.push('v');
                    }
                    i += 2;
                    continue;
                }
                ('μ', Some('π')) => {
                    ipa.push('b');
                    i += 2;
                    continue;
                }
                ('ν', Some('τ')) => {
                    ipa.push('d');
                    i += 2;
                    continue;
                }
                ('γ', Some('κ')) => {
                    ipa.push('g');
                    i += 2;
                    continue;
                }
                ('γ', Some('γ')) => {
                    ipa.push_str("ŋg");
                    i += 2;
                    continue;
                }
                ('τ', Some('σ')) => {
                    ipa.push_str("ts");
                    i += 2;
                    continue;
                }
                ('τ', Some('ζ')) => {
                    ipa.push_str("dz");
                    i += 2;
                    continue;
                }
                _ => {}
            }
            let single = match c {
                'α' => "a",
                'β' => "v",
                'γ' => {
                    if next.is_some_and(is_front_vowel) {
                        "j"
                    } else {
                        "ɣ"
                    }
                }
                'δ' => "ð",
                'ε' => "ɛ",
                'ζ' => "z",
                'η' => "i",
                'θ' => "θ",
                'ι' => "i",
                'κ' => "k",
                'λ' => "l",
                'μ' => "m",
                'ν' => "n",
                'ξ' => "ks",
                'ο' => "o",
                'π' => "p",
                'ρ' => "r",
                'σ' => "s",
                'τ' => "t",
                'υ' => "i",
                'φ' => "f",
                'χ' => "x",
                'ψ' => "ps",
                'ω' => "o",
                other => {
                    return Err(G2pError::UntranslatableChar {
                        ch: other,
                        language: Language::Greek,
                    })
                }
            };
            ipa.push_str(single);
            i += 1;
        }
        let _ = is_vowel; // reserved for future γ/j refinement
        Ok(ipa.parse()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        GreekG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn paper_catalog_author() {
        // Σαρρη (Fig. 1): σ α ρ ρ η
        assert_eq!(ipa("Σαρρη"), "sarri");
    }

    #[test]
    fn nero_transliteration() {
        // Νερού — the Greek rendering of "Nehru" used in the paper's
        // SQL:1999 example (Fig. 2).
        assert_eq!(ipa("Νερού"), "nɛru");
    }

    #[test]
    fn iotacism_collapses_vowels() {
        assert_eq!(ipa("ει"), "i");
        assert_eq!(ipa("οι"), "i");
        assert_eq!(ipa("η"), "i");
        assert_eq!(ipa("υ"), "i");
    }

    #[test]
    fn ou_is_u() {
        assert_eq!(ipa("ου"), "u");
        assert_eq!(ipa("μούσα"), "musa");
    }

    #[test]
    fn av_ev_alternation() {
        // ευ before voiced/vowel -> ev; before voiceless -> ef
        assert_eq!(ipa("ευα"), "ɛva");
        assert_eq!(ipa("ευτυχια"), "ɛftixia");
        assert_eq!(ipa("αυτο"), "afto");
        assert_eq!(ipa("παυλος"), "pavlos");
    }

    #[test]
    fn nasal_stop_digraphs() {
        assert_eq!(ipa("μπανανα"), "banana");
        assert_eq!(ipa("ντοματα"), "domata");
        assert_eq!(ipa("γκολ"), "gol");
        assert_eq!(ipa("αγγελος"), "aŋgɛlos");
    }

    #[test]
    fn gamma_palatalizes_before_front_vowels() {
        assert_eq!(ipa("γη"), "ji");
        assert_eq!(ipa("γαλα"), "ɣala");
    }

    #[test]
    fn double_letters_and_sigma_forms() {
        assert_eq!(ipa("ς"), "s");
        assert_eq!(ipa("Παιχνίδια"), "pɛxniðia");
    }

    #[test]
    fn untranslatable() {
        assert!(GreekG2p.convert("α7").is_err());
    }
}
