//! Russian grapheme-to-phoneme conversion.
//!
//! Russian orthography is close to phonemic once three regularities are
//! applied: the iotated vowels е/ё/ю/я carry a /j/ glide word-initially,
//! after another vowel, or after a soft/hard sign; the signs ь/ъ
//! themselves are silent (palatalization is not segmental and the phoneme
//! inventory carries no ʲ, so it is dropped — transliteration-style, like
//! the paper's hand conversions); and word-final obstruents devoice
//! (Иванов → /ivanof/). Covers Cyrillic renderings of the paper's name
//! catalog (e.g. Неру for Nehru).

use crate::error::G2pError;
use crate::language::Language;
use lexequal_phoneme::PhonemeString;

/// Lowercase and strip the combining acute accent (U+0301) Russian texts
/// sometimes carry as a stress mark (the letter itself follows).
fn fold(c: char) -> Option<char> {
    if c == '\u{0301}' {
        return None;
    }
    Some(c.to_lowercase().next().unwrap_or(c))
}

/// Cyrillic vowel letters (iotation context: a glide follows a vowel).
fn is_vowel(c: char) -> bool {
    matches!(c, 'а' | 'е' | 'ё' | 'и' | 'о' | 'у' | 'ы' | 'э' | 'ю' | 'я')
}

/// The Russian text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct RussianG2p;

impl RussianG2p {
    /// Convert Cyrillic text to IPA phonemes.
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let chars: Vec<char> = text
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '-')
            .filter_map(fold)
            .collect();
        let mut ipa = String::new();
        for (i, &c) in chars.iter().enumerate() {
            let prev = if i > 0 { Some(chars[i - 1]) } else { None };
            let last = i + 1 == chars.len();
            // The /j/ glide surfaces word-initially, after a vowel, or
            // after a soft/hard sign (съезд, пьеса).
            let iotated = prev.map_or(true, |p| is_vowel(p) || p == 'ь' || p == 'ъ');
            let s = match c {
                'а' => "a",
                'б' => {
                    if last {
                        "p" // final devoicing
                    } else {
                        "b"
                    }
                }
                'в' => {
                    if last {
                        "f"
                    } else {
                        "v"
                    }
                }
                'г' => {
                    if last {
                        "k"
                    } else {
                        "g"
                    }
                }
                'д' => {
                    if last {
                        "t"
                    } else {
                        "d"
                    }
                }
                'е' => {
                    if iotated {
                        "jɛ"
                    } else {
                        "ɛ"
                    }
                }
                'ё' => {
                    if iotated {
                        "jo"
                    } else {
                        "o"
                    }
                }
                'ж' => {
                    if last {
                        "ʃ"
                    } else {
                        "ʒ"
                    }
                }
                'з' => {
                    if last {
                        "s"
                    } else {
                        "z"
                    }
                }
                'и' => "i",
                'й' => "j",
                'к' => "k",
                'л' => "l",
                'м' => "m",
                'н' => "n",
                'о' => "o",
                'п' => "p",
                'р' => "r",
                'с' => "s",
                'т' => "t",
                'у' => "u",
                'ф' => "f",
                'х' => "x",
                'ц' => "ts",
                'ч' => "tʃ",
                'ш' => "ʃ",
                'щ' => "ʃtʃ",
                'ъ' | 'ь' => "", // silent; see module docs
                'ы' => "ɪ",
                'э' => "ɛ",
                'ю' => {
                    if iotated {
                        "ju"
                    } else {
                        "u"
                    }
                }
                'я' => {
                    if iotated {
                        "ja"
                    } else {
                        "a"
                    }
                }
                other => {
                    return Err(G2pError::UntranslatableChar {
                        ch: other,
                        language: Language::Russian,
                    })
                }
            };
            ipa.push_str(s);
        }
        Ok(ipa.parse()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        RussianG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn nehru_rendering_matches_english() {
        // Неру — the Cyrillic rendering of "Nehru"; lands on the same
        // phoneme string as the English converter's "Nehru" (nɛru).
        assert_eq!(ipa("Неру"), "nɛru");
    }

    #[test]
    fn final_obstruents_devoice() {
        assert_eq!(ipa("Иванов"), "ivanof");
        assert_eq!(ipa("Петербург"), "pɛtɛrburk");
        assert_eq!(ipa("муж"), "muʃ");
    }

    #[test]
    fn iotated_vowels_take_a_glide() {
        assert_eq!(ipa("Ельцин"), "jɛltsin");
        assert_eq!(ipa("Юрий"), "jurij");
        assert_eq!(ipa("Мария"), "marija");
        // ...but stay plain right after a consonant.
        assert_eq!(ipa("Нева"), "nɛva");
    }

    #[test]
    fn signs_are_silent_but_restore_the_glide() {
        assert_eq!(ipa("съезд"), "sjɛzt");
        assert_eq!(ipa("область"), "oblast");
    }

    #[test]
    fn hushers_and_affricates() {
        assert_eq!(ipa("Щи"), "ʃtʃi");
        assert_eq!(ipa("Хрущёв"), "xruʃtʃof");
        assert_eq!(ipa("Чехов"), "tʃɛxof");
        assert_eq!(ipa("Циолковский"), "tsiolkovskij");
    }

    #[test]
    fn yeru_is_a_lax_vowel() {
        assert_eq!(ipa("Крым"), "krɪm");
    }

    #[test]
    fn stress_marks_fold_away() {
        assert_eq!(ipa("Нер\u{0301}у"), ipa("Неру"));
    }

    #[test]
    fn untranslatable() {
        assert!(RussianG2p.convert("а7").is_err());
        assert!(RussianG2p.convert("abc").is_err());
    }
}
