//! Tamil grapheme-to-phoneme conversion.
//!
//! The Tamil script has a single letter per plosive *series*: க stands for
//! /k/, /g/ (and lenited allophones) depending on position. The classical
//! sandhi rules decide voicing:
//!
//! * word-initial plosives are **voiceless** (க = /k/);
//! * plosives after a **nasal** are **voiced** (ங்க = /ŋg/);
//! * **intervocalic** plosives are **voiced/lenited** (ச between vowels is
//!   /s/, க is /g/);
//! * **geminate** plosives (க்க) are **voiceless**.
//!
//! This underspecification is precisely the phoneme-set mismatch the
//! LexEQUAL paper exploits: a Tamil rendering of an English name loses the
//! voicing distinction, so matching must be approximate. The paper
//! hand-converted its Tamil data (§4.1, "assuming phonetic nature of the
//! Tamil language"); this module mechanizes the same assumption.

use crate::error::G2pError;
use crate::language::Language;
use lexequal_phoneme::PhonemeString;

/// One parsed orthographic unit of a Tamil word.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Unit {
    /// An independent vowel.
    Vowel(&'static str),
    /// A consonant letter plus its vowel: `Some(ipa)` for a matra or the
    /// inherent /a/, `None` when a pulli (virama) kills the vowel.
    Cons(char, Option<&'static str>),
}

fn independent_vowel(c: char) -> Option<&'static str> {
    Some(match c {
        'அ' => "a",
        'ஆ' => "aː",
        'இ' => "i",
        'ஈ' => "iː",
        'உ' => "u",
        'ஊ' => "uː",
        'எ' => "e",
        'ஏ' => "eː",
        'ஐ' => "ai",
        'ஒ' => "o",
        'ஓ' => "oː",
        'ஔ' => "au",
        _ => return None,
    })
}

fn matra(c: char) -> Option<&'static str> {
    Some(match c {
        '\u{0BBE}' => "aː", // ா
        '\u{0BBF}' => "i",  // ி
        '\u{0BC0}' => "iː", // ீ
        '\u{0BC1}' => "u",  // ு
        '\u{0BC2}' => "uː", // ூ
        '\u{0BC6}' => "e",  // ெ
        '\u{0BC7}' => "eː", // ே
        '\u{0BC8}' => "ai", // ை
        '\u{0BCA}' => "o",  // ொ
        '\u{0BCB}' => "oː", // ோ
        '\u{0BCC}' => "au", // ௌ
        _ => return None,
    })
}

const PULLI: char = '\u{0BCD}'; // ்
const AYTHAM: char = 'ஃ';

/// Is this a Tamil consonant letter we know?
fn is_consonant(c: char) -> bool {
    matches!(
        c,
        'க' | 'ங'
            | 'ச'
            | 'ஞ'
            | 'ட'
            | 'ண'
            | 'த'
            | 'ந'
            | 'ப'
            | 'ம'
            | 'ய'
            | 'ர'
            | 'ல'
            | 'வ'
            | 'ழ'
            | 'ள'
            | 'ற'
            | 'ன'
            | 'ஜ'
            | 'ஶ'
            | 'ஷ'
            | 'ஸ'
            | 'ஹ'
    )
}

fn is_nasal(c: char) -> bool {
    matches!(c, 'ங' | 'ஞ' | 'ண' | 'ந' | 'ம' | 'ன')
}

/// Is this one of the plosive letters subject to positional voicing?
fn is_plosive(c: char) -> bool {
    matches!(c, 'க' | 'ச' | 'ட' | 'த' | 'ப')
}

/// (voiceless, voiced/lenited) IPA for a plosive letter.
fn plosive_ipa(c: char) -> (&'static str, &'static str) {
    match c {
        'க' => ("k", "g"),
        'ச' => ("tʃ", "s"),
        'ட' => ("ʈ", "ɖ"),
        'த' => ("t", "d"),
        'ப' => ("p", "b"),
        _ => unreachable!("not a plosive: {c}"),
    }
}

/// IPA for the non-plosive consonants.
fn fixed_consonant_ipa(c: char) -> &'static str {
    match c {
        'ங' => "ŋ",
        'ஞ' => "ɲ",
        'ண' => "ɳ",
        'ந' => "n",
        'ம' => "m",
        'ய' => "j",
        'ர' => "ɾ",
        'ல' => "l",
        'வ' => "ʋ",
        'ழ' => "ɻ",
        'ள' => "ɭ",
        'ற' => "r",
        'ன' => "n",
        'ஜ' => "dʒ",
        'ஶ' => "ʃ",
        'ஷ' => "ʂ",
        'ஸ' => "s",
        'ஹ' => "h",
        _ => unreachable!("not a fixed consonant: {c}"),
    }
}

/// The Tamil text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct TamilG2p;

impl TamilG2p {
    /// Convert Tamil-script text to IPA phonemes.
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let mut ipa = String::new();
        for word in text.split(|c: char| c.is_whitespace() || c == '-') {
            if word.is_empty() {
                continue;
            }
            let units = tokenize(word)?;
            emit(&units, &mut ipa);
        }
        Ok(ipa.parse()?)
    }
}

/// Parse one word into units.
fn tokenize(word: &str) -> Result<Vec<Unit>, G2pError> {
    let chars: Vec<char> = word.chars().collect();
    let mut units = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if let Some(v) = independent_vowel(c) {
            units.push(Unit::Vowel(v));
            i += 1;
        } else if c == AYTHAM {
            // Aytham: ஃப spells /f/; standalone it is a guttural /h/-like
            // sound. Mark it as an 'ஹ' cluster consonant; the ஃப case is
            // fixed up during emission.
            units.push(Unit::Cons('ஃ', None));
            i += 1;
        } else if is_consonant(c) {
            i += 1;
            match chars.get(i) {
                Some(&m) if matra(m).is_some() => {
                    units.push(Unit::Cons(c, Some(matra(m).expect("checked"))));
                    i += 1;
                }
                Some(&p) if p == PULLI => {
                    units.push(Unit::Cons(c, None));
                    i += 1;
                }
                _ => units.push(Unit::Cons(c, Some("a"))), // inherent vowel
            }
        } else {
            return Err(G2pError::UntranslatableChar {
                ch: c,
                language: Language::Tamil,
            });
        }
    }
    Ok(units)
}

/// Emit IPA for a word's units, applying the voicing sandhi.
fn emit(units: &[Unit], out: &mut String) {
    for (idx, unit) in units.iter().enumerate() {
        match *unit {
            Unit::Vowel(v) => out.push_str(v),
            Unit::Cons(letter, vowel) => {
                let cons = consonant_realization(units, idx, letter);
                out.push_str(cons);
                if let Some(v) = vowel {
                    out.push_str(v);
                }
            }
        }
    }
}

/// Decide the surface form of consonant `letter` at position `idx`.
fn consonant_realization(units: &[Unit], idx: usize, letter: char) -> &'static str {
    if letter == 'ஃ' {
        // ஃ + ப-syllable spells /f/; we emit the f here and silence the
        // following ப by... the ப will still emit. Instead, emit nothing
        // here and let the ப carry /f/ (handled below via lookback).
        return "";
    }
    if !is_plosive(letter) {
        // Geminate றற spells the /tr/ cluster.
        if letter == 'ற' {
            let follows_pulli_rra = idx > 0 && matches!(units[idx - 1], Unit::Cons('ற', None));
            if follows_pulli_rra {
                return "r"; // second half of ற்ற; first half emitted t below
            }
            let followed_by_rra = matches!(units.get(idx + 1), Some(Unit::Cons('ற', _)));
            if followed_by_rra && matches!(units[idx], Unit::Cons('ற', None)) {
                return "t"; // first half of ற்ற
            }
        }
        return fixed_consonant_ipa(letter);
    }
    // ஃப = /f/.
    if letter == 'ப' && idx > 0 && matches!(units[idx - 1], Unit::Cons('ஃ', None)) {
        return "f";
    }
    let (voiceless, voiced) = plosive_ipa(letter);
    if idx == 0 {
        return voiceless;
    }
    // A coda plosive (pulli, no vowel) is the first half of a geminate or
    // a cluster: always voiceless (க்க = /kk/).
    if matches!(units[idx], Unit::Cons(_, None)) {
        return voiceless;
    }
    match units[idx - 1] {
        Unit::Vowel(_) => voiced,
        Unit::Cons(prev, Some(_)) => {
            // previous syllable ended in a vowel -> intervocalic
            let _ = prev;
            voiced
        }
        Unit::Cons(prev, None) => {
            if is_nasal(prev) {
                voiced
            } else {
                // geminate or other cluster: voiceless
                voiceless
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        TamilG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn neru_from_the_paper() {
        // நேரு (Nehru): ந ே ர ு — paper's Figure 9 gives "neiru"-like IPA;
        // our segmental rendering is /neːɾu/.
        assert_eq!(ipa("நேரு"), "neːɾu");
    }

    #[test]
    fn india_from_the_paper() {
        // இந்தியா: இ ந ் த ி ய ா — post-nasal த is voiced.
        assert_eq!(ipa("இந்தியா"), "indijaː");
    }

    #[test]
    fn word_initial_plosives_are_voiceless() {
        assert!(ipa("கமல்").starts_with('k'));
        assert!(ipa("பால்").starts_with('p'));
        assert!(ipa("தமிழ்").starts_with('t'));
    }

    #[test]
    fn intervocalic_plosives_voice_or_lenite() {
        // மகன்: க between vowels -> g
        assert_eq!(ipa("மகன்"), "magan");
        // பசி: ச intervocalic -> s
        assert_eq!(ipa("பசி"), "pasi");
    }

    #[test]
    fn post_nasal_plosives_are_voiced() {
        // தம்பி: ம ் ப -> mb
        assert_eq!(ipa("தம்பி"), "tambi");
        // கங்கை (Ganga): ங ் க -> ŋg
        assert_eq!(ipa("கங்கை"), "kaŋgai");
    }

    #[test]
    fn geminates_stay_voiceless() {
        // பக்கம்: க்க -> kk
        assert_eq!(ipa("பக்கம்"), "pakkam");
        // பட்டு: ட்ட -> ʈʈ
        assert_eq!(ipa("பட்டு"), "paʈʈu");
    }

    #[test]
    fn vowel_length_is_contrastive() {
        assert_eq!(ipa("கா"), "kaː");
        assert_eq!(ipa("க"), "ka");
        assert_eq!(ipa("கோ"), "koː");
        assert_eq!(ipa("கொ"), "ko");
    }

    #[test]
    fn diphthongs_expand_to_two_segments() {
        let ai = TamilG2p.convert("கை").unwrap();
        assert_eq!(ai.to_string(), "kai");
        assert_eq!(ai.len(), 3); // k + a + i
    }

    #[test]
    fn grantha_letters() {
        assert_eq!(ipa("ஜோதி"), "dʒoːdi");
        assert_eq!(ipa("ஹரி"), "haɾi");
        assert_eq!(ipa("ஸரோஜா"), "saɾoːdʒaː");
    }

    #[test]
    fn aytham_p_spells_f() {
        // ஃப = f: காஃபி (coffee) -> kaːfi
        assert_eq!(ipa("காஃபி"), "kaːfi");
    }

    #[test]
    fn rra_geminate_is_tr() {
        // கற்றல்: ற்ற -> tr
        assert_eq!(ipa("கற்றல்"), "katral");
    }

    #[test]
    fn retroflex_series() {
        assert_eq!(ipa("வாழை"), "ʋaːɻai");
        assert_eq!(ipa("வெள்ளை"), "ʋeɭɭai");
    }

    #[test]
    fn untranslatable_char() {
        assert!(matches!(
            TamilG2p.convert("க#"),
            Err(G2pError::UntranslatableChar { ch: '#', .. })
        ));
    }
}
