//! A context-sensitive letter-to-sound rewrite-rule engine.
//!
//! This is the machinery behind the English converter: rules in the style
//! of the classic NRL letter-to-sound system (Elovitz, Johnson, McHugh,
//! Shore & Zue, *Automatic Translation of English Text to Phonetics by
//! Means of Letter-to-Sound Rules*, NRL Report 7948, 1976). Each rule has
//! the shape
//!
//! ```text
//! left [ TEXT ] right  →  ipa
//! ```
//!
//! reading: the literal grapheme sequence `TEXT` is pronounced `ipa` when
//! preceded by something matching `left` and followed by something matching
//! `right`. Rules for each letter are tried in order; the first match wins
//! and consumes `TEXT`.
//!
//! Context patterns are built from literal letters plus the NRL classes:
//!
//! | symbol | matches |
//! |--------|---------|
//! | `#`    | one or more vowels (A E I O U Y) |
//! | `:`    | zero or more consonants |
//! | `^`    | exactly one consonant |
//! | `.`    | one voiced consonant (B D G J L M N R V W Z) |
//! | `%`    | one of the suffixes ER, E, ES, ED, ING, ELY |
//! | `&`    | a sibilant: S, C, G, Z, X, J, CH, SH |
//! | `@`    | T, S, R, D, L, Z, N, J, TH, CH, SH |
//! | `+`    | a front vowel: E, I, Y |
//! | ` `    | a word boundary |
//!
//! Matching is implemented with full backtracking, so patterns like `:#`
//! (zero or more consonants, then vowels) behave as written rather than as
//! a greedy approximation.

use lexequal_phoneme::{PhonemeError, PhonemeString};

/// One letter-to-sound rule. See the module docs for semantics.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Left-context pattern (may be empty).
    pub left: &'static str,
    /// The literal grapheme sequence this rule rewrites (uppercase).
    pub text: &'static str,
    /// Right-context pattern (may be empty).
    pub right: &'static str,
    /// IPA emission (possibly empty, for silent letters).
    pub ipa: &'static str,
}

/// Shorthand constructor used by the rule tables.
pub const fn rule(
    left: &'static str,
    text: &'static str,
    right: &'static str,
    ipa: &'static str,
) -> Rule {
    Rule {
        left,
        text,
        right,
        ipa,
    }
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'A' | 'E' | 'I' | 'O' | 'U' | 'Y')
}

fn is_consonant(c: char) -> bool {
    c.is_ascii_uppercase() && !is_vowel(c)
}

fn is_voiced_consonant(c: char) -> bool {
    matches!(
        c,
        'B' | 'D' | 'G' | 'J' | 'L' | 'M' | 'N' | 'R' | 'V' | 'W' | 'Z'
    )
}

fn is_front_vowel(c: char) -> bool {
    matches!(c, 'E' | 'I' | 'Y')
}

/// Suffixes matched by `%`, longest first.
const SUFFIXES: &[&str] = &["ELY", "ING", "ER", "ES", "ED", "E"];
/// Sibilant spellings matched by `&`, longest first.
const SIBILANTS: &[&str] = &["CH", "SH", "S", "C", "G", "Z", "X", "J"];
/// Spellings matched by `@`, longest first.
const AT_SET: &[&str] = &["TH", "CH", "SH", "T", "S", "R", "D", "L", "Z", "N", "J"];

/// Match `pattern` against the *beginning* of `s` (right context),
/// with backtracking. Returns true if the whole pattern is consumed.
fn match_right(s: &[char], pattern: &[char]) -> bool {
    let Some((&p, rest)) = pattern.split_first() else {
        return true;
    };
    match p {
        '#' => {
            // one or more vowels
            let mut n = 0;
            while n < s.len() && is_vowel(s[n]) {
                n += 1;
            }
            // try the longest run first, backtracking down to 1
            (1..=n).rev().any(|k| match_right(&s[k..], rest))
        }
        ':' => {
            let mut n = 0;
            while n < s.len() && is_consonant(s[n]) {
                n += 1;
            }
            (0..=n).rev().any(|k| match_right(&s[k..], rest))
        }
        '^' => s.first().is_some_and(|&c| is_consonant(c)) && match_right(&s[1..], rest),
        '.' => s.first().is_some_and(|&c| is_voiced_consonant(c)) && match_right(&s[1..], rest),
        '+' => s.first().is_some_and(|&c| is_front_vowel(c)) && match_right(&s[1..], rest),
        '%' => SUFFIXES
            .iter()
            .any(|suf| starts_with(s, suf) && match_right(&s[suf.len()..], rest)),
        '&' => SIBILANTS
            .iter()
            .any(|sib| starts_with(s, sib) && match_right(&s[sib.len()..], rest)),
        '@' => AT_SET
            .iter()
            .any(|a| starts_with(s, a) && match_right(&s[a.len()..], rest)),
        ' ' => s.first().is_some_and(|&c| c == ' ') && match_right(&s[1..], rest),
        lit => s.first().is_some_and(|&c| c == lit) && match_right(&s[1..], rest),
    }
}

/// Match `pattern` against the *end* of `s` (left context), with
/// backtracking. Patterns are written left-to-right; matching proceeds
/// from the right edge of `s` leftwards.
fn match_left(s: &[char], pattern: &[char]) -> bool {
    let Some((&p, rest)) = pattern.split_last() else {
        return true;
    };
    match p {
        '#' => {
            let mut n = 0;
            while n < s.len() && is_vowel(s[s.len() - 1 - n]) {
                n += 1;
            }
            (1..=n).rev().any(|k| match_left(&s[..s.len() - k], rest))
        }
        ':' => {
            let mut n = 0;
            while n < s.len() && is_consonant(s[s.len() - 1 - n]) {
                n += 1;
            }
            (0..=n).rev().any(|k| match_left(&s[..s.len() - k], rest))
        }
        '^' => s.last().is_some_and(|&c| is_consonant(c)) && match_left(&s[..s.len() - 1], rest),
        '.' => {
            s.last().is_some_and(|&c| is_voiced_consonant(c)) && match_left(&s[..s.len() - 1], rest)
        }
        '+' => s.last().is_some_and(|&c| is_front_vowel(c)) && match_left(&s[..s.len() - 1], rest),
        '%' => SUFFIXES
            .iter()
            .any(|suf| ends_with(s, suf) && match_left(&s[..s.len() - suf.len()], rest)),
        '&' => SIBILANTS
            .iter()
            .any(|sib| ends_with(s, sib) && match_left(&s[..s.len() - sib.len()], rest)),
        '@' => AT_SET
            .iter()
            .any(|a| ends_with(s, a) && match_left(&s[..s.len() - a.len()], rest)),
        ' ' => s.last().is_some_and(|&c| c == ' ') && match_left(&s[..s.len() - 1], rest),
        lit => s.last().is_some_and(|&c| c == lit) && match_left(&s[..s.len() - 1], rest),
    }
}

fn starts_with(s: &[char], lit: &str) -> bool {
    let lits: Vec<char> = lit.chars().collect();
    s.len() >= lits.len() && s[..lits.len()] == lits[..]
}

fn ends_with(s: &[char], lit: &str) -> bool {
    let lits: Vec<char> = lit.chars().collect();
    s.len() >= lits.len() && s[s.len() - lits.len()..] == lits[..]
}

/// A compiled rule set: rules bucketed by the first letter of their `text`.
pub struct RuleEngine {
    buckets: Vec<Vec<Rule>>, // indexed by letter - 'A'
}

impl RuleEngine {
    /// Build an engine from a rule table. Rules keep their relative order
    /// within each first-letter bucket (order is the tie-breaker).
    ///
    /// # Panics
    ///
    /// Panics if a rule's `text` is empty or does not start with an ASCII
    /// uppercase letter — rule tables are static and validated at startup.
    pub fn new(rules: &[Rule]) -> Self {
        let mut buckets: Vec<Vec<Rule>> = vec![Vec::new(); 26];
        for r in rules {
            let first = r.text.chars().next().expect("rule text must be non-empty");
            assert!(
                first.is_ascii_uppercase(),
                "rule text must start with A-Z, got {:?}",
                r.text
            );
            buckets[(first as u8 - b'A') as usize].push(*r);
        }
        RuleEngine { buckets }
    }

    /// Convert a word to an IPA string by applying the rules left to
    /// right. Unmatched characters (digits, punctuation) are skipped.
    /// The input should be a single word; it is uppercased and padded
    /// with word-boundary spaces internally.
    pub fn apply(&self, word: &str) -> String {
        let mut chars: Vec<char> = vec![' '];
        chars.extend(word.chars().filter_map(normalize_char));
        chars.push(' ');

        let mut out = String::new();
        let mut pos = 1usize; // skip leading boundary
        while pos < chars.len() - 1 {
            let c = chars[pos];
            if !c.is_ascii_uppercase() {
                pos += 1;
                continue;
            }
            let bucket = &self.buckets[(c as u8 - b'A') as usize];
            let mut advanced = false;
            for r in bucket {
                let text: Vec<char> = r.text.chars().collect();
                if pos + text.len() > chars.len() - 1 {
                    continue;
                }
                if chars[pos..pos + text.len()] != text[..] {
                    continue;
                }
                let left: Vec<char> = r.left.chars().collect();
                let right: Vec<char> = r.right.chars().collect();
                if !match_left(&chars[..pos], &left) {
                    continue;
                }
                if !match_right(&chars[pos + text.len()..], &right) {
                    continue;
                }
                out.push_str(r.ipa);
                pos += text.len();
                advanced = true;
                break;
            }
            if !advanced {
                pos += 1;
            }
        }
        out
    }

    /// Convert a word and parse the emission into a [`PhonemeString`].
    pub fn convert(&self, word: &str) -> Result<PhonemeString, PhonemeError> {
        self.apply(word).parse()
    }
}

/// Uppercase and fold accented Latin letters to their ASCII base so the
/// rule alphabet stays A–Z (René → RENE, École → ECOLE, Señor → SENOR).
pub fn normalize_char(c: char) -> Option<char> {
    let c = match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' => 'A',
        'è' | 'é' | 'ê' | 'ë' | 'È' | 'É' | 'Ê' | 'Ë' => 'E',
        'ì' | 'í' | 'î' | 'ï' | 'Ì' | 'Í' | 'Î' | 'Ï' => 'I',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø' => 'O',
        'ù' | 'ú' | 'û' | 'ü' | 'Ù' | 'Ú' | 'Û' | 'Ü' => 'U',
        'ñ' | 'Ñ' => 'N',
        'ç' | 'Ç' => 'C',
        'ý' | 'ÿ' | 'Ý' => 'Y',
        other => other,
    };
    let u = c.to_ascii_uppercase();
    if u.is_ascii_uppercase() {
        Some(u)
    } else if c == ' ' || c == '-' || c == '\'' {
        // treat separators as word boundaries
        Some(' ')
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn right_context_classes() {
        // '#': one or more vowels
        assert!(match_right(&chars("AK"), &chars("#")));
        assert!(match_right(&chars("AIK"), &chars("#^")));
        assert!(!match_right(&chars("KA"), &chars("#")));
        // ':' zero or more consonants then vowel — requires backtracking
        assert!(match_right(&chars("STRA"), &chars(":#")));
        assert!(match_right(&chars("A"), &chars(":#")));
        // '^' exactly one consonant
        assert!(match_right(&chars("T "), &chars("^ ")));
        assert!(!match_right(&chars("A "), &chars("^ ")));
        // '%' suffix
        assert!(match_right(&chars("ED "), &chars("% ")));
        assert!(match_right(&chars("ING "), &chars("% ")));
        assert!(!match_right(&chars("OK "), &chars("% ")));
        // '&' sibilant, two-char first
        assert!(match_right(&chars("CH "), &chars("& ")));
        assert!(match_right(&chars("S "), &chars("& ")));
        // '+' front vowel
        assert!(match_right(&chars("E"), &chars("+")));
        assert!(!match_right(&chars("O"), &chars("+")));
    }

    #[test]
    fn left_context_classes() {
        assert!(match_left(&chars(" N"), &chars("^")));
        assert!(match_left(&chars(" NA"), &chars("^#")));
        assert!(match_left(&chars(" "), &chars(" ")));
        assert!(match_left(&chars(" STR"), &chars(" :")));
        // '#:' — vowels then optional consonants, ending at match point
        assert!(match_left(&chars(" CAT"), &chars("#:")));
        assert!(match_left(&chars(" CA"), &chars("#:")));
        assert!(!match_left(&chars(" C"), &chars("#:")));
    }

    #[test]
    fn backtracking_needed_cases() {
        // Pattern "::" would loop greedily; with backtracking it's fine.
        assert!(match_right(&chars("STR"), &chars("::")));
        // "#:#" vowels-consonants-vowels
        assert!(match_left(&chars(" ANTI"), &chars("#:#")));
    }

    #[test]
    fn engine_applies_first_matching_rule() {
        let rules = [
            rule(" ", "AB", "", "xy"), // never fires: 'x' not IPA, just test apply()
            rule("", "A", "", "a"),
            rule("", "B", "", "b"),
        ];
        let e = RuleEngine::new(&rules);
        assert_eq!(e.apply("ba"), "ba");
        assert_eq!(e.apply("ab"), "xy"); // word-initial AB matches first rule
        assert_eq!(e.apply("aab"), "aab"); // AB at pos 2 is not word-initial
    }

    #[test]
    fn normalization_folds_accents_and_case() {
        assert_eq!(normalize_char('é'), Some('E'));
        assert_eq!(normalize_char('ñ'), Some('N'));
        assert_eq!(normalize_char('z'), Some('Z'));
        assert_eq!(normalize_char('-'), Some(' '));
        assert_eq!(normalize_char('7'), None);
    }

    #[test]
    fn unmatched_letters_are_skipped_not_looped() {
        let e = RuleEngine::new(&[rule("", "A", "", "a")]);
        // 'Z' has no rule: skipped, no infinite loop.
        assert_eq!(e.apply("zaz"), "a");
    }
}
