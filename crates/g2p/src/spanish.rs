//! Spanish grapheme-to-phoneme conversion (compact).
//!
//! Spanish orthography is highly regular. Covers the paper's Figure 9
//! sample (Español → /ɛspanjøl/-like) and Latin-American consonant values
//! (seseo: c/z before front vowels → /s/). Sufficient for proper names.

use crate::error::G2pError;
use crate::language::Language;
use lexequal_phoneme::PhonemeString;

fn fold(c: char) -> char {
    match c.to_lowercase().next().unwrap_or(c) {
        'á' => 'a',
        'é' => 'e',
        'í' => 'i',
        'ó' => 'o',
        'ú' | 'ü' => 'u',
        other => other,
    }
}

/// The Spanish text-to-phoneme converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanishG2p;

impl SpanishG2p {
    /// Convert Spanish text to IPA phonemes.
    pub fn convert(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let mut ipa = String::new();
        for word in text.split(|c: char| c.is_whitespace() || c == '-') {
            if word.is_empty() {
                continue;
            }
            convert_word(word, &mut ipa)?;
        }
        Ok(ipa.parse()?)
    }
}

fn convert_word(word: &str, ipa: &mut String) -> Result<(), G2pError> {
    let chars: Vec<char> = word.chars().map(fold).collect();
    let n = chars.len();
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match (c, next) {
            ('c', Some('h')) => {
                ipa.push_str("tʃ");
                i += 2;
            }
            ('l', Some('l')) => {
                ipa.push('j');
                i += 2;
            }
            ('r', Some('r')) => {
                ipa.push('r');
                i += 2;
            }
            ('q', Some('u')) => {
                ipa.push('k');
                i += 2;
                // silent u before e/i: qu+e -> ke (u consumed above)
            }
            ('g', Some('u')) if matches!(chars.get(i + 2), Some('e') | Some('i')) => {
                ipa.push('g');
                i += 2; // silent u
            }
            ('c', Some('e' | 'i')) => {
                ipa.push('s'); // seseo
                i += 1;
            }
            ('g', Some('e' | 'i')) => {
                ipa.push('x');
                i += 1;
            }
            _ => {
                let s = match c {
                    'a' => "a",
                    'b' | 'v' => "b",
                    'c' | 'k' => "k",
                    'd' => "d",
                    'e' => "ɛ",
                    'f' => "f",
                    'g' => "g",
                    'h' => "", // silent
                    'i' => "i",
                    'j' => "x",
                    'l' => "l",
                    'm' => "m",
                    'n' => "n",
                    'ñ' => "nj",
                    'o' => "o",
                    'p' => "p",
                    'r' => {
                        if i == 0 {
                            "r" // word-initial trill
                        } else {
                            "ɾ"
                        }
                    }
                    's' => "s",
                    't' => "t",
                    'u' => "u",
                    'w' => "w",
                    'x' => "ks",
                    'y' => "j",
                    'z' => "s", // seseo
                    other => {
                        return Err(G2pError::UntranslatableChar {
                            ch: other,
                            language: Language::Spanish,
                        })
                    }
                };
                ipa.push_str(s);
                i += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(text: &str) -> String {
        SpanishG2p.convert(text).unwrap().to_string()
    }

    #[test]
    fn espanol_resembles_paper_figure9() {
        // Paper Fig. 9: Español -> ɛspanjøl; ours is ɛspanjol (ñ -> nj).
        assert_eq!(ipa("Español"), "ɛspanjol");
    }

    #[test]
    fn jesus_is_hesus() {
        // The paper's §2.1 example: Jesus vocalizes as /hesus/-like in
        // Spanish (j -> x, a velar fricative near /h/).
        assert_eq!(ipa("Jesús"), "xɛsus");
    }

    #[test]
    fn digraphs() {
        assert_eq!(ipa("llama"), "jama");
        assert_eq!(ipa("perro"), "pɛro");
        assert_eq!(ipa("chico"), "tʃiko");
        assert_eq!(ipa("queso"), "kɛso");
        assert_eq!(ipa("guitarra"), "gitara");
    }

    #[test]
    fn seseo() {
        assert!(ipa("cinco").starts_with('s'));
        assert!(ipa("zapata").starts_with('s'));
        assert!(ipa("casa").starts_with('k'));
    }

    #[test]
    fn silent_h_and_bv_merger() {
        assert_eq!(ipa("hola"), "ola");
        assert_eq!(ipa("vaca"), ipa("baca"));
    }

    #[test]
    fn r_trill_vs_tap() {
        assert!(ipa("rosa").starts_with('r'));
        assert_eq!(ipa("pero"), "pɛɾo");
    }
}
