//! The converter registry: the paper's `S_L`, "languages with IPA
//! transformations, as global resource" (Figure 8).

use crate::arabic::ArabicG2p;
use crate::english::EnglishG2p;
use crate::error::G2pError;
use crate::french::FrenchG2p;
use crate::greek::GreekG2p;
use crate::hindi::HindiG2p;
use crate::japanese::JapaneseG2p;
use crate::language::Language;
use crate::russian::RussianG2p;
use crate::spanish::SpanishG2p;
use crate::tamil::TamilG2p;
use lexequal_phoneme::PhonemeString;

/// A text-to-phoneme converter for one language.
pub trait TextToPhoneme {
    /// Convert `text` to its phonemic representation.
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError>;
}

impl TextToPhoneme for EnglishG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for HindiG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for TamilG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for GreekG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for FrenchG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for SpanishG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for ArabicG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for JapaneseG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}
impl TextToPhoneme for RussianG2p {
    fn to_phonemes(&self, text: &str) -> Result<PhonemeString, G2pError> {
        self.convert(text)
    }
}

/// Registry of installed TTP converters. The LexEQUAL algorithm consults
/// it before transforming (`if L ∈ S_L`); languages without a converter
/// produce the `NORESOURCE` outcome ([`G2pError::NoResource`]).
#[derive(Debug, Clone)]
pub struct G2pRegistry {
    enabled: Vec<Language>,
}

impl G2pRegistry {
    /// A registry with every shipped converter installed — the paper's
    /// `S_L`. Tags without a converter (Korean, Thai) are deliberately
    /// absent so they resolve to `NORESOURCE`, not a panic.
    pub fn standard() -> Self {
        G2pRegistry {
            enabled: Language::CONVERTIBLE.to_vec(),
        }
    }

    /// A registry limited to the given languages — models a deployment
    /// that has licensed only some TTP resources.
    pub fn with_languages(languages: &[Language]) -> Self {
        G2pRegistry {
            enabled: languages.to_vec(),
        }
    }

    /// Whether a converter is installed for `language`.
    pub fn supports(&self, language: Language) -> bool {
        self.enabled.contains(&language)
    }

    /// The installed languages.
    pub fn languages(&self) -> &[Language] {
        &self.enabled
    }

    /// Transform `text` (in `language`) to phonemes — the paper's
    /// `transform(S, L)`.
    pub fn transform(&self, text: &str, language: Language) -> Result<PhonemeString, G2pError> {
        if !self.supports(language) {
            return Err(G2pError::NoResource(language));
        }
        match language {
            Language::English => EnglishG2p.to_phonemes(text),
            Language::Hindi => HindiG2p.to_phonemes(text),
            Language::Tamil => TamilG2p.to_phonemes(text),
            Language::Greek => GreekG2p.to_phonemes(text),
            Language::French => FrenchG2p.to_phonemes(text),
            Language::Spanish => SpanishG2p.to_phonemes(text),
            Language::Arabic => ArabicG2p.to_phonemes(text),
            Language::Japanese => JapaneseG2p.to_phonemes(text),
            Language::Russian => RussianG2p.to_phonemes(text),
            // Tags the detector can assign but no converter serves: even
            // if explicitly enabled, there is nothing to run.
            Language::Korean | Language::Thai => Err(G2pError::NoResource(language)),
        }
    }

    /// Transform with language auto-detection (paper §2.1 caveats apply).
    pub fn transform_detect(&self, text: &str) -> Result<PhonemeString, G2pError> {
        let lang =
            crate::language::detect_language(text).ok_or_else(|| G2pError::UntranslatableChar {
                ch: text.chars().next().unwrap_or('?'),
                language: Language::English,
            })?;
        self.transform(text, lang)
    }
}

impl Default for G2pRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_supports_every_convertible_language() {
        let r = G2pRegistry::standard();
        for l in Language::CONVERTIBLE {
            assert!(r.supports(l));
        }
        // Converterless tags are outside S_L → NORESOURCE.
        for l in [Language::Korean, Language::Thai] {
            assert!(!r.supports(l));
            assert!(matches!(
                r.transform("네루", l),
                Err(G2pError::NoResource(_))
            ));
        }
    }

    #[test]
    fn converterless_tags_noresource_even_when_enabled() {
        // A registry that *claims* Korean still has nothing to run.
        let r = G2pRegistry::with_languages(&[Language::Korean]);
        assert!(matches!(
            r.transform("네루", Language::Korean),
            Err(G2pError::NoResource(Language::Korean))
        ));
    }

    #[test]
    fn russian_converter_is_registered() {
        let r = G2pRegistry::standard();
        assert_eq!(
            r.transform("Неру", Language::Russian).unwrap().to_string(),
            "nɛru" // same phonemes as English "Nehru"
        );
    }

    #[test]
    fn limited_registry_returns_noresource() {
        let r = G2pRegistry::with_languages(&[Language::English, Language::Hindi]);
        assert!(r.transform("நேரு", Language::Tamil).is_err());
        assert!(matches!(
            r.transform("நேரு", Language::Tamil),
            Err(G2pError::NoResource(Language::Tamil))
        ));
        assert!(r.transform("Nehru", Language::English).is_ok());
    }

    #[test]
    fn transform_routes_by_language() {
        let r = G2pRegistry::standard();
        assert_eq!(
            r.transform("Nehru", Language::English).unwrap().to_string(),
            "nɛru" // English H before a consonant is silent
        );
        assert_eq!(
            r.transform("नेहरु", Language::Hindi).unwrap().to_string(),
            "neɦrʊ"
        );
        assert_eq!(
            r.transform("நேரு", Language::Tamil).unwrap().to_string(),
            "neːɾu"
        );
    }

    #[test]
    fn detect_and_transform() {
        let r = G2pRegistry::standard();
        assert_eq!(
            r.transform_detect("नेहरु").unwrap(),
            r.transform("नेहरु", Language::Hindi).unwrap()
        );
        assert!(r.transform_detect("??!").is_err());
    }

    #[test]
    fn cross_language_renderings_are_phonetically_close() {
        // The core premise of LexEQUAL: same name, different scripts,
        // nearby phoneme strings.
        let r = G2pRegistry::standard();
        let en = r.transform("Nehru", Language::English).unwrap();
        let hi = r.transform("नेहरु", Language::Hindi).unwrap();
        let ta = r.transform("நேரு", Language::Tamil).unwrap();
        // All three have length 4-5 and share the n-e-r-u skeleton.
        for p in [&en, &hi, &ta] {
            let s = p.to_string();
            assert!(s.starts_with('n'), "{s}");
            assert!(s.ends_with('u') || s.ends_with('ʊ'), "{s}");
        }
    }
}
