//! The mdb B-tree against `std::collections::BTreeMap` — a sanity
//! benchmark for the index substrate (inserts, point lookups, ranges).

use criterion::{criterion_group, criterion_main, Criterion};
use lexequal_mdb::{BTreeIndex, Value};
use std::collections::BTreeMap;
use std::hint::black_box;

const N: i64 = 50_000;

fn scrambled(i: i64) -> i64 {
    (i * 7919) % N
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(10);

    g.bench_function("mdb_insert_50k", |b| {
        b.iter(|| {
            let mut t = BTreeIndex::new();
            for i in 0..N {
                t.insert(Value::Int(scrambled(i)), i as usize);
            }
            black_box(t.len())
        })
    });
    g.bench_function("std_insert_50k", |b| {
        b.iter(|| {
            let mut t: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
            for i in 0..N {
                t.entry(scrambled(i)).or_default().push(i as usize);
            }
            black_box(t.len())
        })
    });

    let mut mdb = BTreeIndex::new();
    let mut std_t: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for i in 0..N {
        mdb.insert(Value::Int(scrambled(i)), i as usize);
        std_t.entry(scrambled(i)).or_default().push(i as usize);
    }

    g.bench_function("mdb_lookup", |b| {
        b.iter(|| {
            for k in (0..N).step_by(997) {
                black_box(mdb.lookup(&Value::Int(k)));
            }
        })
    });
    g.bench_function("std_lookup", |b| {
        b.iter(|| {
            for k in (0..N).step_by(997) {
                black_box(std_t.get(&k));
            }
        })
    });
    g.bench_function("mdb_range_1k", |b| {
        b.iter(|| black_box(mdb.range(&Value::Int(1000), &Value::Int(2000)).len()))
    });
    g.bench_function("std_range_1k", |b| {
        b.iter(|| black_box(std_t.range(1000..=2000).count()))
    });
    g.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
