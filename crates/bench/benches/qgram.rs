//! Ablation: q-gram size (q ∈ {2, 3, 4}) — build cost and filter
//! selectivity (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use lexequal::qgram_plan::{QgramFilter, QgramMode};
use lexequal_bench::{corpus, operator};
use lexequal_phoneme::PhonemeString;
use std::hint::black_box;

fn bench_qgram(c: &mut Criterion) {
    let corpus = corpus();
    let phonemes: Vec<PhonemeString> = corpus.entries.iter().map(|e| e.phonemes.clone()).collect();
    let op = operator();
    let queries: Vec<&PhonemeString> = phonemes.iter().step_by(97).collect();

    let mut g = c.benchmark_group("qgram");
    g.sample_size(15);

    for q in [2usize, 3, 4] {
        g.bench_function(format!("build_q{q}"), |b| {
            b.iter(|| black_box(QgramFilter::build(&phonemes, q, QgramMode::Strict)))
        });
        let filter = QgramFilter::build(&phonemes, q, QgramMode::Strict);
        g.bench_function(format!("search_q{q}_e0.25"), |b| {
            b.iter(|| {
                for query in &queries {
                    black_box(filter.search(&phonemes, query, 0.25, &op));
                }
            })
        });
    }

    // Strict vs paper-faithful filtering bounds.
    let strict = QgramFilter::build(&phonemes, 3, QgramMode::Strict);
    let faithful = QgramFilter::build(&phonemes, 3, QgramMode::PaperFaithful);
    g.bench_function("mode_strict_q3", |b| {
        b.iter(|| {
            for query in &queries {
                black_box(strict.search(&phonemes, query, 0.25, &op));
            }
        })
    });
    g.bench_function("mode_paper_q3", |b| {
        b.iter(|| {
            for query in &queries {
                black_box(faithful.search(&phonemes, query, 0.25, &op));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_qgram);
criterion_main!(benches);
