//! The headline comparison as a microbenchmark: one phonetic selection
//! query under each access path (scan / q-gram / phonetic index /
//! BK-tree) over a 10K-entry slice of the synthetic dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use lexequal::{MatchConfig, NameStore, QgramMode, SearchMethod};
use lexequal_bench::synthetic;
use std::hint::black_box;

fn bench_access_paths(c: &mut Criterion) {
    let data = synthetic(10_000);
    let mut store = NameStore::new(MatchConfig::default());
    store
        .extend(data.entries.iter().map(|e| (e.text.clone(), e.language)))
        .expect("bulk load");
    store.build_qgram(3, QgramMode::Strict);
    store.build_phonetic_index();
    store.build_bktree();

    let queries: Vec<_> = data
        .entries
        .iter()
        .step_by(data.len() / 8)
        .map(|e| e.phonemes.clone())
        .collect();

    let mut g = c.benchmark_group("access_paths");
    g.sample_size(10);
    for (name, method) in [
        ("scan", SearchMethod::Scan),
        ("qgram", SearchMethod::Qgram),
        ("phonetic_index", SearchMethod::PhoneticIndex),
        ("bktree", SearchMethod::BkTree),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(store.search_phonemes(q, 0.25, method));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_access_paths);
criterion_main!(benches);
