//! Ablation: edit-distance DP variants and cost models (DESIGN.md §5).
//!
//! Compares the full-matrix DP, the rolling two-row DP, and the banded
//! thresholded decision procedure, under both the unit-cost (Levenshtein)
//! and the clustered phoneme cost model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lexequal::{
    available_simd_levels, BatchVerifier, ClusteredPhonemeCost, LexEqual, MatchConfig,
    PreparedQuery, Verifier,
};
use lexequal_bench::corpus;
use lexequal_matcher::{edit_distance, edit_distance_matrix, within_distance, UnitCost};
use lexequal_phoneme::PhonemeString;
use std::hint::black_box;

fn pairs(n: usize) -> Vec<(PhonemeString, PhonemeString)> {
    let c = corpus();
    let strings: Vec<&PhonemeString> = c.entries.iter().map(|e| &e.phonemes).collect();
    (0..n)
        .map(|i| {
            let a = strings[(i * 7) % strings.len()].clone();
            let b = strings[(i * 13 + 1) % strings.len()].clone();
            (a, b)
        })
        .collect()
}

fn bench_edit_distance(c: &mut Criterion) {
    let cfg = MatchConfig::default();
    let clustered = ClusteredPhonemeCost::new(cfg.clusters.clone(), cfg.intra_cluster_cost);
    let data = pairs(256);

    let mut g = c.benchmark_group("edit_distance");
    g.sample_size(20);

    g.bench_function("full_matrix_unit", |b| {
        b.iter_batched(
            || data.clone(),
            |d| {
                for (x, y) in &d {
                    black_box(edit_distance_matrix(x.as_slice(), y.as_slice(), UnitCost));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("rolling_unit", |b| {
        b.iter(|| {
            for (x, y) in &data {
                black_box(edit_distance(x.as_slice(), y.as_slice(), UnitCost));
            }
        })
    });
    g.bench_function("rolling_clustered", |b| {
        b.iter(|| {
            for (x, y) in &data {
                black_box(edit_distance(x.as_slice(), y.as_slice(), &clustered));
            }
        })
    });
    g.bench_function("banded_decision_k1.5_clustered", |b| {
        b.iter(|| {
            for (x, y) in &data {
                black_box(within_distance(x.as_slice(), y.as_slice(), 1.5, &clustered));
            }
        })
    });
    g.bench_function("banded_decision_k0.5_clustered", |b| {
        b.iter(|| {
            for (x, y) in &data {
                black_box(within_distance(x.as_slice(), y.as_slice(), 0.5, &clustered));
            }
        })
    });
    g.finish();
}

/// The verification kernel against the pre-kernel per-pair call: same
/// decision, screened + allocation-free vs. fresh DP rows every pair.
fn bench_verify_kernel(c: &mut Criterion) {
    let op = LexEqual::new(MatchConfig::default());
    let data = pairs(256);
    let prepared: Vec<PreparedQuery> = data.iter().map(|(_, q)| op.prepare_query(q)).collect();
    let cand_clusters: Vec<Vec<u8>> = data.iter().map(|(c, _)| op.cluster_ids(c)).collect();

    let mut g = c.benchmark_group("verify_kernel");
    g.sample_size(20);
    for e in [0.25, 0.45] {
        g.bench_function(format!("matches_phonemes_e{e}"), |b| {
            b.iter(|| {
                for (cand, q) in &data {
                    black_box(op.matches_phonemes(cand, q, e));
                }
            })
        });
        g.bench_function(format!("verifier_screened_e{e}"), |b| {
            let mut v = Verifier::new();
            b.iter(|| {
                for ((cand, _), (p, ids)) in data.iter().zip(prepared.iter().zip(&cand_clusters)) {
                    black_box(v.matches(&op, p, cand, Some(ids), e));
                }
            })
        });
    }
    g.finish();
}

/// The batched kernel across widths and SIMD backends, against the
/// pair-at-a-time `Verifier` on the same verify-bound corpus sweep.
fn bench_verify_batch(c: &mut Criterion) {
    let op = LexEqual::new(MatchConfig::default());
    let data = pairs(256);
    let names: Vec<PhonemeString> = data.iter().map(|(cand, _)| cand.clone()).collect();
    let cluster_ids: Vec<Vec<u8>> = names.iter().map(|p| op.cluster_ids(p)).collect();
    let query = op.prepare_query(&data[0].1);
    let e = 0.35;

    let mut g = c.benchmark_group("verify_batch");
    g.sample_size(20);
    g.bench_function("pairwise_baseline", |b| {
        let mut v = Verifier::new();
        b.iter(|| {
            for (cand, ids) in names.iter().zip(&cluster_ids) {
                black_box(v.matches(&op, &query, cand, Some(ids), e));
            }
        })
    });
    for level in available_simd_levels() {
        for width in [1usize, 4, 8, 16] {
            g.bench_function(format!("batched_w{width}_{level}"), |b| {
                let mut v = BatchVerifier::with_width_and_level(width, level);
                let mut hits: Vec<u32> = Vec::with_capacity(names.len());
                b.iter(|| {
                    hits.clear();
                    v.verify_ids(
                        &op,
                        &query,
                        &names,
                        Some(&cluster_ids),
                        0..names.len() as u32,
                        e,
                        &mut hits,
                    );
                    black_box(hits.len())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_edit_distance,
    bench_verify_kernel,
    bench_verify_batch
);
criterion_main!(benches);
