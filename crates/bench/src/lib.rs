//! Shared experiment harness for the LexEQUAL reproduction.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index); this library provides the
//! common plumbing: dataset construction, wall-clock timing, plain-text
//! table rendering, and paper-reference annotations so every report shows
//! *expected shape* next to *measured value*.

use lexequal::{LexEqual, MatchConfig};
use lexequal_lexicon::{Corpus, SyntheticDataset};
use std::time::{Duration, Instant};

/// Command-line-ish knobs shared by the experiment binaries. Parsed from
/// `std::env::args` with `--size N`, `--quick` (small dataset), and
/// `--queries N` flags.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Target size of the synthetic dataset (paper: ~200,000).
    pub dataset_size: usize,
    /// Number of query probes per measurement.
    pub queries: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            dataset_size: 200_000,
            queries: 20,
        }
    }
}

impl RunOptions {
    /// Parse from process arguments. `--quick` shrinks the dataset to
    /// 20,000 entries for fast iteration.
    pub fn from_args() -> Self {
        let mut opts = RunOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.dataset_size = 20_000,
                "--size" => {
                    i += 1;
                    opts.dataset_size = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--size takes a number");
                }
                "--queries" => {
                    i += 1;
                    opts.queries = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--queries takes a number");
                }
                // Binary-specific flags (e.g. --ablate) are handled by the
                // binaries themselves.
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Build the default operator (knee-region clustered costs — the quality
/// experiments' configuration).
pub fn operator() -> LexEqual {
    LexEqual::new(MatchConfig::default())
}

/// Build the operator the performance experiments use: plain Levenshtein
/// (intra-cluster cost 1.0). The paper's §5 measurements are made "with
/// respect to the classical edit-distance metric" — with unit costs the
/// q-gram filters are exact and the phonetic index's false dismissals
/// are measured exactly as the paper measured them.
pub fn levenshtein_operator() -> LexEqual {
    LexEqual::new(MatchConfig::default().with_intra_cluster_cost(1.0))
}

/// Build the tagged evaluation corpus (Figures 10–12).
pub fn corpus() -> Corpus {
    Corpus::build(&MatchConfig::default())
}

/// Build the synthetic performance dataset (Figure 13, Tables 1–3).
pub fn synthetic(size: usize) -> SyntheticDataset {
    SyntheticDataset::generate(&corpus(), size)
}

/// Time a closure, returning (result, wall-clock duration).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` `rounds` times and keep the fastest wall time (the run least
/// disturbed by scheduler/neighbour noise); returns the last output.
pub fn timed_best<T>(rounds: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(rounds > 0);
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..rounds {
        let (o, t) = timed(&mut f);
        if t < best {
            best = t;
        }
        out = o;
    }
    (out, best)
}

/// Render a plain-text table with a header row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Print a paper-reference annotation (expected shape vs our setting).
pub fn paper_note(note: &str) {
    println!("\n[paper] {note}");
}

/// Human-friendly duration formatting.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1} s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn fmt_duration_scales() {
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).contains(" s"));
    }

    #[test]
    fn default_options_match_paper_scale() {
        let o = RunOptions::default();
        assert_eq!(o.dataset_size, 200_000);
    }
}
