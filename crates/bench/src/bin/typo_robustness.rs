//! Extension experiment: spelling-error robustness.
//!
//! The paper motivates approximate matching partly with input errors —
//! "names that have many variants in spelling (example, Cathy and Kathy
//! or variants due to input errors, such as Catyh)" (§2.3). This
//! experiment quantifies how the phonetic pipeline absorbs three classic
//! typo classes applied to the English base names:
//!
//! * adjacent transposition (Cathy → Catyh);
//! * single-letter deletion (Cathy → Cahy);
//! * single-letter doubling (Cathy → Catthy);
//!
//! and contrasts phoneme-space matching with text-space Damerau matching
//! (the restricted-transposition distance added in `lexequal-matcher`).

use lexequal::{Language, LexEqual, MatchConfig};
use lexequal_bench::{paper_note, print_table};
use lexequal_lexicon::{AMERICAN_NAMES, GENERIC_NAMES, INDIAN_NAMES};
use lexequal_matcher::{damerau_distance, UnitCost};

/// Deterministic typo generators (position seeded by name length).
fn transpose(name: &str) -> Option<String> {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return None;
    }
    let i = chars.len() / 2;
    if chars[i] == chars[i + 1] {
        return None;
    }
    let mut v = chars.clone();
    v.swap(i, i + 1);
    Some(v.into_iter().collect())
}

fn delete(name: &str) -> Option<String> {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return None;
    }
    let i = chars.len() / 2;
    Some(chars[..i].iter().chain(&chars[i + 1..]).collect())
}

fn double(name: &str) -> Option<String> {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 3 {
        return None;
    }
    let i = chars.len() / 2;
    let mut v = chars[..=i].to_vec();
    v.push(chars[i]);
    v.extend_from_slice(&chars[i + 1..]);
    Some(v.into_iter().collect())
}

fn main() {
    let op = LexEqual::new(MatchConfig::default());
    let names: Vec<&str> = INDIAN_NAMES
        .iter()
        .chain(AMERICAN_NAMES)
        .chain(GENERIC_NAMES)
        .copied()
        .collect();

    let threshold = op.config().threshold;
    let mut rows = Vec::new();
    for (label, gen) in [
        (
            "transposition (Catyh)",
            transpose as fn(&str) -> Option<String>,
        ),
        ("deletion (Cahy)", delete),
        ("doubling (Catthy)", double),
    ] {
        let mut total = 0usize;
        let mut phonetic_ok = 0usize;
        let mut damerau_ok = 0usize;
        let mut lev_text_ok = 0usize;
        for name in &names {
            let Some(typo) = gen(name) else { continue };
            total += 1;
            // Phonetic pipeline: both spellings through English G2P.
            let a = op.transform(name, Language::English).expect("g2p");
            let b = op.transform(&typo, Language::English).expect("g2p");
            if op.matches_phonemes(&a, &b, threshold) {
                phonetic_ok += 1;
            }
            // Text-space matching with the same relative budget.
            let av: Vec<char> = name.to_lowercase().chars().collect();
            let bv: Vec<char> = typo.to_lowercase().chars().collect();
            let budget = threshold * av.len().min(bv.len()) as f64;
            if damerau_distance(&av, &bv, UnitCost, 1.0) < budget {
                damerau_ok += 1;
            }
            if lexequal_matcher::edit_distance(&av, &bv, UnitCost) < budget {
                lev_text_ok += 1;
            }
        }
        let pct = |n: usize| format!("{:.1}%", 100.0 * n as f64 / total.max(1) as f64);
        rows.push(vec![
            label.to_owned(),
            total.to_string(),
            pct(phonetic_ok),
            pct(damerau_ok),
            pct(lev_text_ok),
        ]);
    }
    print_table(
        &format!(
            "Typo robustness over {} base names (threshold {threshold})",
            names.len()
        ),
        &[
            "typo class",
            "cases",
            "phonetic match",
            "text Damerau",
            "text Levenshtein",
        ],
        &rows,
    );
    paper_note(
        "phonetic matching absorbs most single-typo variants because G2P often maps \
         the misspelling to nearby phonemes; transpositions are where text-space \
         Damerau matching has the edge (cost 1 vs two phoneme edits) — the classic \
         argument for combining both signals in a production system.",
    );
}
