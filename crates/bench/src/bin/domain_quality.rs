//! Per-domain quality analysis.
//!
//! The corpus deliberately spans three name domains (§4.1): Indian names
//! (telephone-directory style), American names (physician-directory
//! style) and generic OED nouns. The paper notes that match quality
//! "depends … more importantly, on the data sets themselves" (§4.3);
//! this report shows how the knee behaves per domain.

use lexequal::MatchConfig;
use lexequal_bench::{paper_note, print_table};
use lexequal_lexicon::{sweep, Corpus, NameDomain};

fn main() {
    let full = Corpus::build(&MatchConfig::default());
    let thresholds = [0.1, 0.2, 0.25, 0.3, 0.4];
    let costs = [0.25];

    let mut rows = Vec::new();
    for (label, domain) in [
        ("Indian", NameDomain::Indian),
        ("American", NameDomain::American),
        ("Generic", NameDomain::Generic),
    ] {
        let sub = Corpus {
            entries: full
                .entries
                .iter()
                .filter(|e| e.domain == domain)
                .cloned()
                .collect(),
            groups: 0, // recomputed from tags inside the sweep
        };
        let points = sweep(&sub, &costs, &thresholds);
        let best = points
            .iter()
            .min_by(|a, b| {
                a.distance_to_ideal()
                    .partial_cmp(&b.distance_to_ideal())
                    .expect("finite")
            })
            .expect("non-empty");
        for p in &points {
            rows.push(vec![
                label.to_owned(),
                format!("{}", sub.entries.len()),
                format!("{:.2}", p.threshold),
                format!("{:.3}", p.recall()),
                format!("{:.3}", p.precision()),
                if (p.threshold - best.threshold).abs() < 1e-9 {
                    "<- best".into()
                } else {
                    String::new()
                },
            ]);
        }
    }
    print_table(
        "Per-domain quality at intra-cluster cost 0.25",
        &["domain", "entries", "threshold", "recall", "precision", ""],
        &rows,
    );
    paper_note(
        "the three domains trade differently: Indian names round-trip through the \
         Indic scripts with the least noise (their phonology fits all three scripts); \
         American names lose the most in Tamil's voicing collapse; generic nouns sit \
         between. Domain-specific tuning (§4.3) is the paper's own recommendation.",
    );
}
