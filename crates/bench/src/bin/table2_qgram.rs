//! Table 2: LexEQUAL accelerated by q-gram filtering.
//!
//! Paper values (same dataset and queries as Table 1): scan 13.5 s
//! (vs 1418 s naive — two orders of magnitude), join 856 s (vs 4004 s —
//! about five-fold; "the improvement in join performance is not as
//! dramatic as in the case of scans, due to the additional joins that are
//! required on the large q-gram tables").
//!
//! This binary reproduces both measurements with the in-process q-gram
//! posting structure (`--ablate` additionally reports per-filter
//! selectivity), and demonstrates the Figure 14 SQL plan end-to-end on a
//! subset.

use lexequal::qgram_plan::{QgramFilter, QgramMode};
use lexequal::udf::{load_names_table, load_qgram_aux_table, register_udfs};
use lexequal::Language;
use lexequal_bench::*;
use lexequal_mdb::Database;
use std::sync::Arc;

const Q: usize = 3;
const THRESHOLD: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ablate = args.iter().any(|a| a == "--ablate");
    let opts = RunOptions::from_args();
    let op = Arc::new(levenshtein_operator());
    println!(
        "building synthetic dataset (~{} entries) …",
        opts.dataset_size
    );
    let data = synthetic(opts.dataset_size);
    let phonemes: Vec<_> = data.entries.iter().map(|e| e.phonemes.clone()).collect();

    // Under the Levenshtein operator (unit costs) the Strict and
    // PaperFaithful bounds coincide, and the filters are exact — no false
    // dismissals, as the paper assumes. (The --ablate report shows how a
    // fractional clustered cost breaks that equivalence.)
    let (filter, build_time) = timed(|| QgramFilter::build(&phonemes, Q, QgramMode::Strict));
    println!(
        "q-gram structure: {} strings, {} grams (q={Q}), built in {}",
        filter.len(),
        filter.total_grams(),
        fmt_duration(build_time)
    );

    let stride = (data.len() / opts.queries.max(1)).max(1);
    let queries: Vec<_> = data
        .entries
        .iter()
        .step_by(stride)
        .take(opts.queries)
        .collect();

    // The database stores pname as an IPA *string* column; every UDF
    // invocation parses its operands, exactly like the SQL PHONEQUAL UDF
    // (and like the paper's PL/SQL function taking VARCHAR operands).
    // Both access paths below pay this same per-verification cost, so the
    // comparison isolates what the filters save.
    let pname_col: Vec<String> = phonemes.iter().map(|p| p.to_string()).collect();
    let verify = |stored: &str, query: &str| -> bool {
        let a: lexequal_phoneme::PhonemeString = stored.parse().expect("stored IPA");
        let b: lexequal_phoneme::PhonemeString = query.parse().expect("query IPA");
        op.matches_phonemes(&a, &b, THRESHOLD)
    };

    // --- naive scan baseline (UDF on every row) ----------------------------
    let (naive_hits, t_naive) = timed(|| {
        let mut hits = 0usize;
        for q in &queries {
            let qs = q.phonemes.to_string();
            for stored in &pname_col {
                if verify(stored, &qs) {
                    hits += 1;
                }
            }
        }
        hits
    });
    let t_naive = t_naive / queries.len() as u32;

    // --- q-gram filtered scan (filters, then UDF per candidate) ------------
    let (qgram_stats, t_qgram) = timed(|| {
        let mut hits = 0usize;
        let mut verified = 0usize;
        for q in &queries {
            let qs = q.phonemes.to_string();
            let k = THRESHOLD * q.phonemes.len() as f64;
            for cand in filter.candidates(&q.phonemes, k, &op) {
                verified += 1;
                if verify(&pname_col[cand as usize], &qs) {
                    hits += 1;
                }
            }
        }
        (hits, verified)
    });
    let t_qgram = t_qgram / queries.len() as u32;
    let (qgram_hits, total_verified) = qgram_stats;
    let scan_dismissed = naive_hits.saturating_sub(qgram_hits);

    // --- joins over the 0.2% subset ----------------------------------------
    let subset_len = (data.len() / 500).max(50);
    // Strided so all three languages appear (the dataset is laid out
    // in language blocks).
    let subset: Vec<&lexequal_lexicon::SyntheticEntry> = data
        .entries
        .iter()
        .step_by((data.len() / subset_len).max(1))
        .take(subset_len)
        .collect();
    let subset_col: Vec<String> = subset.iter().map(|e| e.phonemes.to_string()).collect();
    let (naive_join_pairs, t_naive_join) = timed(|| {
        let mut pairs = 0usize;
        for (i, a) in subset.iter().enumerate() {
            for (j, b) in subset.iter().enumerate() {
                if a.language != b.language && verify(&subset_col[j], &subset_col[i]) {
                    pairs += 1;
                }
            }
        }
        pairs
    });
    let subset_phonemes: Vec<_> = subset.iter().map(|e| e.phonemes.clone()).collect();
    let (qgram_join, t_qgram_join) = timed(|| {
        let subset_filter = QgramFilter::build(&subset_phonemes, Q, QgramMode::Strict);
        let mut pairs = 0usize;
        for (i, a) in subset.iter().enumerate() {
            let k = THRESHOLD * a.phonemes.len() as f64;
            for id in subset_filter.candidates(&a.phonemes, k, &op) {
                if subset[id as usize].language != a.language
                    && verify(&subset_col[id as usize], &subset_col[i])
                {
                    pairs += 1;
                }
            }
        }
        pairs
    });
    let join_dismissed = naive_join_pairs.saturating_sub(qgram_join);

    print_table(
        &format!(
            "Table 2 — Q-Gram Filter Performance ({} rows, {}-row join subset, avg over {} queries)",
            data.len(),
            subset_len,
            queries.len()
        ),
        &["Query", "Matching Methodology", "Time", "UDF calls/query"],
        &[
            vec![
                "Scan".into(),
                "Naive LexEQUAL UDF".into(),
                fmt_duration(t_naive),
                format!("{}", phonemes.len()),
            ],
            vec![
                "Scan".into(),
                "LexEQUAL UDF + q-gram filters".into(),
                fmt_duration(t_qgram),
                format!("{}", total_verified / queries.len()),
            ],
            vec![
                "Join".into(),
                "Naive LexEQUAL UDF (nested loop)".into(),
                fmt_duration(t_naive_join),
                format!("{}", subset_len),
            ],
            vec![
                "Join".into(),
                "LexEQUAL UDF + q-gram filters".into(),
                fmt_duration(t_qgram_join),
                "-".into(),
            ],
        ],
    );
    println!(
        "\nspeedup: scan {:.1}x   join {:.1}x   ({} scan hits, {} join pairs; \
         false dismissals vs exact answer: scan {}, join {})",
        t_naive.as_secs_f64() / t_qgram.as_secs_f64().max(1e-9),
        t_naive_join.as_secs_f64() / t_qgram_join.as_secs_f64().max(1e-9),
        naive_hits,
        naive_join_pairs,
        scan_dismissed,
        join_dismissed,
    );

    if ablate {
        ablate_filters(&op, &filter, &phonemes, &queries);
    }

    sql_figure14_demo(&op, &data);

    paper_note(
        "paper: scan 13.5 s (105x over the naive 1418 s), join 856 s (4.7x over 4004 s) \
         — scans gain an order of magnitude+, joins less because of the auxiliary \
         q-gram table joins. The reproduced shape: large scan speedup, smaller join \
         speedup, identical result sets (filters admit no false dismissals).",
    );
}

/// Filter-composition ablation: how many candidates survive length-only
/// vs +count/position filtering (DESIGN.md §5).
fn ablate_filters(
    op: &lexequal::LexEqual,
    filter: &QgramFilter,
    phonemes: &[lexequal_phoneme::PhonemeString],
    queries: &[&lexequal_lexicon::SyntheticEntry],
) {
    let strict = QgramFilter::build(phonemes, Q, QgramMode::Strict);
    let mut rows = Vec::new();
    for q in queries.iter().take(5) {
        let k = THRESHOLD * q.phonemes.len() as f64;
        let length_only = phonemes
            .iter()
            .filter(|p| (p.len() as f64 - q.phonemes.len() as f64).abs() <= k)
            .count();
        let faithful = filter.candidates(&q.phonemes, k, op).len();
        let conservative = strict.candidates(&q.phonemes, k, op).len();
        rows.push(vec![
            q.text.chars().take(18).collect::<String>(),
            format!("{}", phonemes.len()),
            format!("{length_only}"),
            format!("{faithful}"),
            format!("{conservative}"),
        ]);
    }
    print_table(
        "Table 2 (ablation) — candidates surviving each filter stage",
        &[
            "query",
            "all rows",
            "length",
            "+count/pos (paper)",
            "+count/pos (strict)",
        ],
        &rows,
    );
}

/// Run the paper's Figure 14 SQL (length/position filters + GROUP BY
/// count filter + UDF verification) end-to-end on a small subset.
fn sql_figure14_demo(op: &Arc<lexequal::LexEqual>, data: &lexequal_lexicon::SyntheticDataset) {
    let n = 1_000.min(data.len());
    let names: Vec<(String, Language)> = data.entries[..n]
        .iter()
        .map(|e| (e.text.clone(), e.language))
        .collect();
    let mut db = Database::new();
    register_udfs(&mut db, op.clone());
    load_names_table(&mut db, "names", &names, op).expect("load names");
    load_qgram_aux_table(&mut db, "auxnames", "names", Q).expect("load aux");

    let q = &data.entries[0];
    let qp = q.phonemes.to_string();
    let qlen = q.phonemes.len();
    let k = THRESHOLD * qlen as f64;
    // Strict-mode Levenshtein bound (intra-cluster cost 0.25).
    let bound = k / op.cost_model().min_nonzero_cost().unwrap_or(1.0);
    db.execute("CREATE TABLE query (id INT, str TEXT)")
        .expect("create query");
    db.execute(&format!("INSERT INTO query VALUES (0, '{qp}')"))
        .expect("insert query");
    db.execute("CREATE TABLE auxquery (id INT, qgram TEXT, pos INT)")
        .expect("create auxquery");
    load_aux_for_query(&mut db, &qp);

    let sql = format!(
        "SELECT N.id, N.pname \
         FROM names N, auxnames AN, query Q, auxquery AQ \
         WHERE N.id = AN.id AND Q.id = AQ.id AND AN.qgram = AQ.qgram \
           AND ABS(LEN(N.pname) - LEN(Q.str)) <= {k} \
           AND ABS(AN.pos - AQ.pos) <= {bound} \
         GROUP BY N.id, N.pname \
         HAVING COUNT(*) >= LEN(N.pname) - 1 - ({bound} - 1) * {Q} \
            AND PHONEQUAL(N.pname, MIN(Q.str), {THRESHOLD})"
    );
    let (rs, t) = timed(|| db.execute(&sql).expect("figure 14 SQL"));
    println!(
        "\nFigure 14 SQL over a {n}-row subset: {} matches in {} \
         (UDF invoked {} times instead of {n})",
        rs.rows.len(),
        fmt_duration(t),
        db.stats().udf_calls("PHONEQUAL"),
    );
}

fn load_aux_for_query(db: &mut Database, qp: &str) {
    use lexequal_matcher::qgram::{positional_qgrams, QgramSymbol};
    let p: lexequal_phoneme::PhonemeString = qp.parse().expect("query IPA");
    for g in positional_qgrams(p.as_slice(), Q) {
        let text: String = g
            .gram
            .iter()
            .map(|s| match s {
                QgramSymbol::Start => "◁".to_owned(),
                QgramSymbol::End => "▷".to_owned(),
                QgramSymbol::Sym(p) => p.symbol().to_owned(),
            })
            .collect();
        db.execute(&format!(
            "INSERT INTO auxquery VALUES (0, '{text}', {})",
            g.pos
        ))
        .expect("insert aux gram");
    }
}
