//! Figure 13: distribution of the generated (synthetic) performance
//! dataset by string length.
//!
//! Paper values: ~200,000 names built by in-language pairwise
//! concatenation, average lexicographic length 14.71, average phonemic
//! length 14.31.

use lexequal_bench::{paper_note, print_table, synthetic, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let d = synthetic(opts.dataset_size);
    let dist = d.length_distribution();
    let rows: Vec<Vec<String>> = dist
        .iter()
        .filter(|(_, lex, phon)| *lex > 0 || *phon > 0)
        .map(|(len, lex, phon)| {
            vec![
                len.to_string(),
                lex.to_string(),
                phon.to_string(),
                bar(*lex, d.len()),
                bar(*phon, d.len()),
            ]
        })
        .collect();
    print_table(
        "Figure 13 — Distribution of Generated Data Set",
        &["len", "#lex", "#phon", "lex", "phon"],
        &rows,
    );
    println!(
        "\nentries: {}   avg lexicographic length: {:.2}   avg phonemic length: {:.2}",
        d.len(),
        d.avg_lex_len(),
        d.avg_phon_len()
    );
    paper_note(
        "paper generates ~200,000 names with avg lex length 14.71 and avg phonemic \
         length 14.31; the distribution is the self-convolution of Figure 10's, \
         so roughly twice the mean and visibly wider.",
    );
}

fn bar(n: usize, total: usize) -> String {
    "#".repeat(n * 400 / total.max(1))
}
