//! Table 1: relative performance of exact matching (the native `=`
//! operator) vs approximate matching (the LexEQUAL UDF), for a selection
//! scan and an equi-join, on the synthetic ~200K dataset.
//!
//! Paper values (Oracle 9i, PL/SQL UDF): scan 0.59 s exact vs 1418 s
//! approximate; join 0.20 s exact vs 4004 s approximate (UDF join on a
//! 0.2% subset — the full UDF join "took about 3 days"). The shape to
//! reproduce: the UDF is **orders of magnitude** slower than the native
//! operator, and the optimizer can do nothing about a UDF predicate
//! (nested-loop join).

use lexequal::udf::{load_names_table, register_udfs};
use lexequal::Language;
use lexequal_bench::*;
use lexequal_mdb::Database;
use std::sync::Arc;

fn main() {
    let opts = RunOptions::from_args();
    let op = Arc::new(levenshtein_operator());
    println!(
        "building synthetic dataset (~{} entries) …",
        opts.dataset_size
    );
    let data = synthetic(opts.dataset_size);

    let names: Vec<(String, Language)> = data
        .entries
        .iter()
        .map(|e| (e.text.clone(), e.language))
        .collect();

    let mut db = Database::new();
    register_udfs(&mut db, op.clone());
    let (_, load_time) = timed(|| {
        load_names_table(&mut db, "names", &names, &op).expect("load names");
    });
    println!("loaded {} rows in {}", data.len(), fmt_duration(load_time));

    // The paper's join subset: 0.2% of the table, strided so all three
    // languages are represented (the dataset is laid out in language
    // blocks).
    let subset_len = (data.len() / 500).max(50);
    let subset: Vec<(String, Language)> = names
        .iter()
        .step_by((names.len() / subset_len).max(1))
        .take(subset_len)
        .cloned()
        .collect();
    load_names_table(&mut db, "subset", &subset, &op).expect("load subset");

    // Query strings drawn from the data (existing names), spread out.
    let stride = data.len() / opts.queries.max(1);
    let queries: Vec<&lexequal_lexicon::SyntheticEntry> = data
        .entries
        .iter()
        .step_by(stride.max(1))
        .take(opts.queries)
        .collect();

    // --- Scan, exact -----------------------------------------------------
    let (hits_exact, t_exact_scan) = timed(|| {
        let mut hits = 0usize;
        for q in &queries {
            let rs = db
                .execute(&format!("SELECT id FROM names WHERE name = '{}'", q.text))
                .expect("exact scan");
            hits += rs.rows.len();
        }
        hits
    });
    let t_exact_scan = t_exact_scan / queries.len() as u32;

    // --- Scan, LexEQUAL UDF ----------------------------------------------
    let threshold = 0.25; // the paper's Figure 3 setting
    let (hits_udf, t_udf_scan) = timed(|| {
        let mut hits = 0usize;
        for q in &queries {
            let rs = db
                .execute(&format!(
                    "SELECT id FROM names WHERE PHONEQUAL(pname, '{}', {threshold})",
                    q.phonemes
                ))
                .expect("udf scan");
            hits += rs.rows.len();
        }
        hits
    });
    let t_udf_scan = t_udf_scan / queries.len() as u32;

    // --- Join, exact (hash join on the full table) ------------------------
    let (exact_join_rows, t_exact_join) = timed(|| {
        let rs = db
            .execute("SELECT COUNT(*) FROM subset s, names n WHERE s.name = n.name")
            .expect("exact join");
        rs.rows[0][0].clone()
    });

    // --- Join, LexEQUAL UDF (nested loop over the subset) -----------------
    let (udf_join_rows, t_udf_join) = timed(|| {
        let rs = db
            .execute(&format!(
                "SELECT COUNT(*) FROM subset b1, subset b2 \
                 WHERE PHONEQUAL(b1.pname, b2.pname, {threshold}) AND b1.lang <> b2.lang"
            ))
            .expect("udf join");
        rs.rows[0][0].clone()
    });
    assert!(
        db.explain(&format!(
            "SELECT COUNT(*) FROM subset b1, subset b2 \
             WHERE PHONEQUAL(b1.pname, b2.pname, {threshold}) AND b1.lang <> b2.lang"
        ))
        .expect("explain")
        .contains("NestedLoop"),
        "UDF join must be a nested loop (no optimizer help), as in the paper"
    );

    print_table(
        &format!(
            "Table 1 — Relative Performance of Approximate Matching \
             ({} rows, {}-row join subset, avg over {} queries)",
            data.len(),
            subset_len,
            queries.len()
        ),
        &["Query", "Matching Methodology", "Time", "Result rows"],
        &[
            vec![
                "Scan".into(),
                "Exact (= operator)".into(),
                fmt_duration(t_exact_scan),
                format!("{hits_exact}"),
            ],
            vec![
                "Scan".into(),
                "Approximate (LexEQUAL UDF)".into(),
                fmt_duration(t_udf_scan),
                format!("{hits_udf}"),
            ],
            vec![
                "Join".into(),
                "Exact (= operator, hash join)".into(),
                fmt_duration(t_exact_join),
                exact_join_rows.to_string(),
            ],
            vec![
                "Join".into(),
                "Approximate (LexEQUAL UDF, nested loop)".into(),
                fmt_duration(t_udf_join),
                udf_join_rows.to_string(),
            ],
        ],
    );
    println!(
        "\nslowdown: UDF scan / exact scan = {:.0}x    UDF join / exact join = {:.1}x",
        t_udf_scan.as_secs_f64() / t_exact_scan.as_secs_f64().max(1e-9),
        t_udf_join.as_secs_f64() / t_exact_join.as_secs_f64().max(1e-9),
    );

    // Reference point: Oracle's native `=` is compiled code while its UDF
    // is interpreted PL/SQL. The closest analog here is a compiled direct
    // scan vs the engine-interpreted UDF scan.
    let texts: Vec<&str> = data.entries.iter().map(|e| e.text.as_str()).collect();
    let (native_hits, t_native) = timed(|| {
        let mut hits = 0usize;
        for q in &queries {
            hits += texts.iter().filter(|t| **t == q.text).count();
        }
        hits
    });
    let t_native = t_native / queries.len() as u32;
    println!(
        "native compiled exact scan: {} ({} hits) -> UDF scan is {:.0}x slower than \
         compiled native equality (the paper's Oracle-native-vs-PL/SQL gap)",
        fmt_duration(t_native),
        native_hits,
        t_udf_scan.as_secs_f64() / t_native.as_secs_f64().max(1e-9),
    );
    paper_note(
        "paper: scan 0.59 s exact vs 1418 s UDF (~2400x); join 0.20 s exact vs 4004 s \
         UDF on the 0.2% subset. Absolute times differ enormously (in-process compiled \
         Rust vs client-server interpreted PL/SQL); the reproduced shape is the \
         orders-of-magnitude gap and the forced nested-loop UDF join.",
    );
}
