//! Baseline comparison: classical Soundex vs LexEQUAL.
//!
//! The paper's state-of-the-art survey (§2.2) notes that "most database
//! systems allow matching text strings using \[the\] pseudo-phonetic
//! Soundex algorithm …, primarily for Latin-based scripts". This
//! experiment quantifies both halves of that sentence on our corpus:
//!
//! 1. **Within Latin script**, Soundex-code equality is a serviceable
//!    matcher — measured against LexEQUAL at the knee on the same
//!    English-English pair universe.
//! 2. **Across scripts**, Soundex is structurally blind: it has no code
//!    for Devanagari or Tamil strings at all, so every cross-script true
//!    match is lost — the gap LexEQUAL exists to fill.

use lexequal::{Language, LexEqual, MatchConfig};
use lexequal_bench::{corpus, paper_note, print_table};
use lexequal_matcher::soundex;

fn main() {
    let c = corpus();
    let op = LexEqual::new(MatchConfig::default());
    let knee = 0.25;

    // ---- Part 1: English-English pairs -----------------------------------
    let english: Vec<_> = c
        .entries
        .iter()
        .filter(|e| e.language == Language::English)
        .collect();
    let (mut sdx_m1, mut sdx_m2) = (0u64, 0u64);
    let (mut lex_m1, mut lex_m2) = (0u64, 0u64);
    let mut ideal = 0u64;
    for (i, a) in english.iter().enumerate() {
        for b in &english[i + 1..] {
            let same_tag = a.tag == b.tag;
            if same_tag {
                ideal += 1;
            }
            let sdx = match (soundex(&a.text), soundex(&b.text)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            };
            if sdx {
                sdx_m2 += 1;
                if same_tag {
                    sdx_m1 += 1;
                }
            }
            if op.matches_phonemes(&a.phonemes, &b.phonemes, knee) {
                lex_m2 += 1;
                if same_tag {
                    lex_m1 += 1;
                }
            }
        }
    }
    // English homophone groups are small; most tags are singletons within
    // one language, so quote precision primarily.
    let pr = |m1: u64, m2: u64| {
        if m2 == 0 {
            1.0
        } else {
            m1 as f64 / m2 as f64
        }
    };
    let rc = |m1: u64| {
        if ideal == 0 {
            1.0
        } else {
            m1 as f64 / ideal as f64
        }
    };
    print_table(
        &format!(
            "Soundex vs LexEQUAL on English-English pairs ({} names, {} same-tag pairs)",
            english.len(),
            ideal
        ),
        &["matcher", "recall", "precision", "reported pairs"],
        &[
            vec![
                "Soundex code equality".into(),
                format!("{:.3}", rc(sdx_m1)),
                format!("{:.3}", pr(sdx_m1, sdx_m2)),
                sdx_m2.to_string(),
            ],
            vec![
                format!("LexEQUAL (cost 0.25, e {knee})"),
                format!("{:.3}", rc(lex_m1)),
                format!("{:.3}", pr(lex_m1, lex_m2)),
                lex_m2.to_string(),
            ],
        ],
    );

    // ---- Part 2: cross-script pairs ---------------------------------------
    let mut cross_ideal = 0u64;
    let mut sdx_cross = 0u64;
    let mut lex_cross = 0u64;
    for (i, a) in c.entries.iter().enumerate() {
        for b in &c.entries[i + 1..] {
            if a.tag != b.tag || a.language == b.language {
                continue;
            }
            cross_ideal += 1;
            if let (Some(x), Some(y)) = (soundex(&a.text), soundex(&b.text)) {
                if x == y {
                    sdx_cross += 1;
                }
            }
            if op.matches_phonemes(&a.phonemes, &b.phonemes, knee) {
                lex_cross += 1;
            }
        }
    }
    print_table(
        &format!("Cross-script true matches recovered ({cross_ideal} same-tag cross-script pairs)"),
        &["matcher", "recovered", "recall"],
        &[
            vec![
                "Soundex".into(),
                sdx_cross.to_string(),
                format!("{:.3}", sdx_cross as f64 / cross_ideal.max(1) as f64),
            ],
            vec![
                "LexEQUAL".into(),
                lex_cross.to_string(),
                format!("{:.3}", lex_cross as f64 / cross_ideal.max(1) as f64),
            ],
        ],
    );
    paper_note(
        "Soundex has no code at all for non-Latin scripts (it returns NULL), so its \
         cross-script recall is exactly 0 — the comparison of multilingual strings \
         across scripts is 'only binary' in current systems (§2.2). LexEQUAL recovers \
         the large majority of the same pairs, which is the paper's raison d'être.",
    );
}
