//! An interactive SQL shell with the LexEQUAL operator installed.
//!
//! ```sh
//! cargo run --release -p lexequal-bench --bin lexequal_shell
//! echo "select * from books where author lexequal 'Nehru' threshold 0.45 inlanguages *" \
//!   | cargo run --release -p lexequal-bench --bin lexequal_shell
//! ```
//!
//! Starts with the Figure 1 demo catalog preloaded (table `books`); all
//! LexEQUAL UDFs are registered. Dot-commands:
//!
//! * `.tables` — list tables
//! * `.save FILE` / `.load FILE` — snapshot persistence (`mdb::snapshot`)
//! * `.quit`

use lexequal::udf::register_udfs;
use lexequal::{LexEqual, MatchConfig};
use lexequal_mdb::{Database, ResultSet};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn demo_db() -> Database {
    let mut db = Database::new();
    register_udfs(&mut db, Arc::new(LexEqual::new(MatchConfig::default())));
    db.execute("CREATE TABLE books (author TEXT, title TEXT, price FLOAT, language TEXT)")
        .expect("create demo table");
    for (author, title, price, lang) in [
        (
            "Descartes",
            "Les Méditations Metaphysiques",
            49.00,
            "French",
        ),
        ("நேரு", "ஆசிய ஜோதி", 250.0, "Tamil"),
        ("Σαρρη", "Παιχνίδια στο Πιάνο", 15.50, "Greek"),
        ("Nero", "The Coronation of the Virgin", 99.00, "English"),
        ("بهنسي", "العمارة عبر التاريخ", 75.0, "Arabic"),
        ("Nehru", "Discovery of India", 9.95, "English"),
        ("ネルー", "インドの発見", 7500.0, "Japanese"),
        ("नेहरु", "भारत एक खोज", 175.0, "Hindi"),
    ] {
        db.execute(&format!(
            "INSERT INTO books VALUES ('{author}', '{title}', {price}, '{lang}')"
        ))
        .expect("insert demo row");
    }
    db
}

fn print_result(rs: &ResultSet) {
    if rs.columns.is_empty() {
        println!("ok");
        return;
    }
    println!("{}", rs.columns.join(" | "));
    println!("{}", "-".repeat(rs.columns.len() * 12));
    for row in &rs.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    println!("({} rows)", rs.rows.len());
}

fn main() {
    let mut db = demo_db();
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!(
            "lexequal shell — demo catalog loaded (table: books).\n\
             Try: select author, title from books where author lexequal 'Nehru' \
             threshold 0.45 inlanguages *"
        );
    }
    loop {
        if interactive {
            print!("lexequal> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".tables" => {
                let mut names: Vec<&str> = db.catalog().table_names().collect();
                names.sort_unstable();
                for n in names {
                    let rows = db.catalog().table(n).map(|t| t.len()).unwrap_or(0);
                    println!("{n} ({rows} rows)");
                }
                continue;
            }
            _ => {}
        }
        if let Some(path) = line.strip_prefix(".save ") {
            match db.save_to_file(path.trim()) {
                Ok(()) => println!("saved to {path}"),
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        if let Some(path) = line.strip_prefix(".load ") {
            match Database::load_from_file(path.trim()) {
                Ok(mut loaded) => {
                    register_udfs(&mut loaded, Arc::new(LexEqual::new(MatchConfig::default())));
                    db = loaded;
                    println!("loaded {path}");
                }
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        match db.execute(line) {
            Ok(rs) => print_result(&rs),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Crude interactivity detection without a TTY crate: honour an env
/// override, default to non-interactive when stdin is piped (heuristic:
/// TERM unset is treated as piped too).
fn atty_stdin() -> bool {
    if std::env::var_os("LEXEQUAL_SHELL_BANNER").is_some() {
        return true;
    }
    // No reliable portable check without a dependency; keep quiet unless
    // asked. Output-only difference, harmless either way.
    false
}
