//! Figure 12: precision-recall curves and ideal-parameter selection.
//!
//! The paper plots PR curves parameterized two ways — by intra-cluster
//! cost (thresholds varying along each curve) and by threshold (costs
//! varying) — and picks the parameters whose PR points sit closest to the
//! perfect (1,1) corner: cost in [0.25, 0.5] and threshold in
//! [0.25, 0.35], achieving recall ≈95% / precision ≈85%.

use lexequal_bench::{corpus, paper_note, print_table};
use lexequal_lexicon::sweep;

fn main() {
    let c = corpus();
    let costs = [0.0, 0.25, 0.5, 0.75, 1.0];
    let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
    let points = sweep(&c, &costs, &thresholds);

    // Curves parameterized by cost (paper's left plot).
    for &cost in &[0.0, 0.5, 1.0] {
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.cost == cost)
            .map(|p| {
                vec![
                    format!("{:.2}", p.threshold),
                    format!("{:.3}", p.recall()),
                    format!("{:.3}", p.precision()),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 12a — PR curve for intra-cluster cost {cost}"),
            &["threshold", "recall", "precision"],
            &rows,
        );
    }

    // Curves parameterized by threshold (paper's right plot).
    for &threshold in &[0.2, 0.3, 0.4] {
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| (p.threshold - threshold).abs() < 1e-9)
            .map(|p| {
                vec![
                    format!("{:.2}", p.cost),
                    format!("{:.3}", p.recall()),
                    format!("{:.3}", p.precision()),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 12b — PR curve for threshold {threshold}"),
            &["cost", "recall", "precision"],
            &rows,
        );
    }

    // Ideal parameter selection: closest to the (1,1) corner.
    let mut best: Vec<&lexequal_lexicon::QualityPoint> = points.iter().collect();
    best.sort_by(|a, b| {
        a.distance_to_ideal()
            .partial_cmp(&b.distance_to_ideal())
            .expect("distances are finite")
    });
    let rows: Vec<Vec<String>> = best
        .iter()
        .take(10)
        .map(|p| {
            vec![
                format!("{:.2}", p.cost),
                format!("{:.2}", p.threshold),
                format!("{:.3}", p.recall()),
                format!("{:.3}", p.precision()),
                format!("{:.3}", p.distance_to_ideal()),
            ]
        })
        .collect();
    print_table(
        "Figure 12 — parameter points closest to the perfect (1,1) corner",
        &["cost", "threshold", "recall", "precision", "dist"],
        &rows,
    );
    paper_note(
        "best matching at substitution cost 0.25–0.5 and threshold 0.25–0.35, with \
         recall ≈95% and precision ≈85% (≈5% false dismissals, ≈15% false positives).",
    );
}
