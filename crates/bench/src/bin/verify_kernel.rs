//! Verification-kernel throughput: old path vs. the screened kernel.
//!
//! The "old" kernel is what every access path ran before the kernel
//! landed: `LexEqual::matches_phonemes(candidate, query, e)` per pair,
//! allocating two fresh DP rows each call. The "new" kernel is
//! [`lexequal::Verifier`] with a prepared query and the store's cached
//! per-name cluster-id vectors — Myers fast-accept / fast-reject screens
//! in front of the same banded DP on reused scratch.
//!
//! Both kernels decide the identical predicate (asserted per threshold),
//! so the comparison is pure throughput. Emits a plain-text table and
//! `results/verify_kernel_bench.json`.
//!
//! Usage: `verify_kernel [--quick] [--size N] [--queries N]`

use lexequal::{PreparedQuery, Verifier};
use lexequal_bench::{operator, print_table, synthetic, timed, RunOptions};
use lexequal_mdb::Json;
use lexequal_phoneme::PhonemeString;

/// Thresholds swept: the paper's quality knee (0.25–0.45) plus a loose
/// setting where fast-accepts dominate.
const THRESHOLDS: [f64; 3] = [0.25, 0.35, 0.45];

fn main() {
    let opts = RunOptions::from_args();
    let op = operator();
    println!(
        "Building synthetic dataset ({} entries)...",
        opts.dataset_size
    );
    let data = synthetic(opts.dataset_size);
    let names: Vec<PhonemeString> = data.entries.iter().map(|e| e.phonemes.clone()).collect();
    // The cached side-table every NameStore now carries.
    let cluster_ids: Vec<Vec<u8>> = names.iter().map(|p| op.cluster_ids(p)).collect();
    let stride = (names.len() / opts.queries).max(1);
    let queries: Vec<&PhonemeString> = names.iter().step_by(stride).take(opts.queries).collect();
    let pairs = queries.len() * names.len();

    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for e in THRESHOLDS {
        // Old kernel: the pre-kernel verification loop, verbatim.
        let (old_hits, old_time) = timed(|| {
            let mut hits = 0usize;
            for q in &queries {
                for c in &names {
                    if op.matches_phonemes(c, q, e) {
                        hits += 1;
                    }
                }
            }
            hits
        });

        // New kernel: one long-lived Verifier (as a shard worker holds),
        // one PreparedQuery per query (as the store builds per search).
        let mut verifier = Verifier::new();
        let (new_hits, new_time) = timed(|| {
            let mut hits = 0usize;
            for q in &queries {
                let prepared: PreparedQuery = op.prepare_query(q);
                for (c, ids) in names.iter().zip(&cluster_ids) {
                    if verifier.matches(&op, &prepared, c, Some(ids), e) {
                        hits += 1;
                    }
                }
            }
            hits
        });
        assert_eq!(
            old_hits, new_hits,
            "kernels disagree at e={e}: old={old_hits} new={new_hits}"
        );

        let counters = verifier.take_counters();
        let speedup = old_time.as_secs_f64() / new_time.as_secs_f64();
        let mpairs = |t: std::time::Duration| pairs as f64 / t.as_secs_f64() / 1e6;
        rows.push(vec![
            format!("{e:.2}"),
            format!("{old_hits}"),
            format!("{:.2}", mpairs(old_time)),
            format!("{:.2}", mpairs(new_time)),
            format!("{speedup:.2}x"),
            format!("{}", counters.fast_accept),
            format!("{}", counters.fast_reject),
            format!("{}", counters.full_dp),
        ]);
        json_runs.push(Json::Obj(vec![
            ("threshold".into(), Json::Float(e)),
            ("pairs".into(), Json::Int(pairs as i64)),
            ("matches".into(), Json::Int(old_hits as i64)),
            ("old_ns".into(), Json::Int(old_time.as_nanos() as i64)),
            ("new_ns".into(), Json::Int(new_time.as_nanos() as i64)),
            ("old_mpairs_per_s".into(), Json::Float(mpairs(old_time))),
            ("new_mpairs_per_s".into(), Json::Float(mpairs(new_time))),
            ("speedup".into(), Json::Float(speedup)),
            ("fast_accept".into(), Json::Int(counters.fast_accept as i64)),
            ("fast_reject".into(), Json::Int(counters.fast_reject as i64)),
            ("full_dp".into(), Json::Int(counters.full_dp as i64)),
        ]));
    }

    print_table(
        "Verification kernel: matches_phonemes vs screened Verifier",
        &[
            "e", "matches", "old Mp/s", "new Mp/s", "speedup", "accept", "reject", "full DP",
        ],
        &rows,
    );

    let report = Json::Obj(vec![
        ("dataset_size".into(), Json::Int(names.len() as i64)),
        ("queries".into(), Json::Int(queries.len() as i64)),
        ("runs".into(), Json::Arr(json_runs)),
    ]);
    let out = std::path::Path::new("results/verify_kernel_bench.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(out, report.render()).expect("write report");
    println!("\nWrote {}", out.display());
}
