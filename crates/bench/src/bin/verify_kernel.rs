//! Verification-kernel throughput: old path vs. the screened kernel.
//!
//! The "old" kernel is what every access path ran before the kernel
//! landed: `LexEqual::matches_phonemes(candidate, query, e)` per pair,
//! allocating two fresh DP rows each call. The "new" kernel is
//! [`lexequal::Verifier`] with a prepared query and the store's cached
//! per-name cluster-id vectors — Myers fast-accept / fast-reject screens
//! in front of the same banded DP on reused scratch.
//!
//! Both kernels decide the identical predicate (asserted per threshold),
//! so the comparison is pure throughput. Emits a plain-text table and
//! `results/verify_kernel_bench.json`.
//!
//! A second sweep compares the pair-at-a-time kernel against the
//! batched [`lexequal::BatchVerifier`] across batch widths (1/4/8/16)
//! and every SIMD backend this machine offers, emitting
//! `results/verify_batch_bench.json` (with the detected dispatch level
//! and `available_parallelism` recorded for reproduction).
//!
//! Usage: `verify_kernel [--quick] [--size N] [--queries N]`

use lexequal::{available_simd_levels, simd_level, BatchVerifier, PreparedQuery, Verifier};
use lexequal_bench::{operator, print_table, synthetic, timed, timed_best, RunOptions};
use lexequal_mdb::Json;
use lexequal_phoneme::PhonemeString;

/// Thresholds swept: the paper's quality knee (0.25–0.45) plus a loose
/// setting where fast-accepts dominate.
const THRESHOLDS: [f64; 3] = [0.25, 0.35, 0.45];

fn main() {
    let opts = RunOptions::from_args();
    let op = operator();
    println!(
        "Building synthetic dataset ({} entries)...",
        opts.dataset_size
    );
    let data = synthetic(opts.dataset_size);
    let names: Vec<PhonemeString> = data.entries.iter().map(|e| e.phonemes.clone()).collect();
    // The cached side-tables every NameStore now carries.
    let cluster_ids: Vec<Vec<u8>> = names.iter().map(|p| op.cluster_ids(p)).collect();
    let embeds: Vec<Vec<u8>> = names.iter().map(|p| op.embed_for(p).to_vec()).collect();
    let stride = (names.len() / opts.queries).max(1);
    let queries: Vec<&PhonemeString> = names.iter().step_by(stride).take(opts.queries).collect();
    let pairs = queries.len() * names.len();

    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for e in THRESHOLDS {
        // Old kernel: the pre-kernel verification loop, verbatim.
        let (old_hits, old_time) = timed(|| {
            let mut hits = 0usize;
            for q in &queries {
                for c in &names {
                    if op.matches_phonemes(c, q, e) {
                        hits += 1;
                    }
                }
            }
            hits
        });

        // New kernel: one long-lived Verifier (as a shard worker holds),
        // one PreparedQuery per query (as the store builds per search).
        let mut verifier = Verifier::new();
        let (new_hits, new_time) = timed(|| {
            let mut hits = 0usize;
            for q in &queries {
                let prepared: PreparedQuery = op.prepare_query(q);
                for (i, (c, ids)) in names.iter().zip(&cluster_ids).enumerate() {
                    if verifier.matches(&op, &prepared, c, Some(ids), Some(&embeds[i]), e) {
                        hits += 1;
                    }
                }
            }
            hits
        });
        assert_eq!(
            old_hits, new_hits,
            "kernels disagree at e={e}: old={old_hits} new={new_hits}"
        );

        let counters = verifier.take_counters();
        let speedup = old_time.as_secs_f64() / new_time.as_secs_f64();
        let mpairs = |t: std::time::Duration| pairs as f64 / t.as_secs_f64() / 1e6;
        rows.push(vec![
            format!("{e:.2}"),
            format!("{old_hits}"),
            format!("{:.2}", mpairs(old_time)),
            format!("{:.2}", mpairs(new_time)),
            format!("{speedup:.2}x"),
            format!("{}", counters.fast_accept),
            format!("{}", counters.fast_reject),
            format!("{}", counters.full_dp),
        ]);
        json_runs.push(Json::Obj(vec![
            ("threshold".into(), Json::Float(e)),
            ("pairs".into(), Json::Int(pairs as i64)),
            ("matches".into(), Json::Int(old_hits as i64)),
            ("old_ns".into(), Json::Int(old_time.as_nanos() as i64)),
            ("new_ns".into(), Json::Int(new_time.as_nanos() as i64)),
            ("old_mpairs_per_s".into(), Json::Float(mpairs(old_time))),
            ("new_mpairs_per_s".into(), Json::Float(mpairs(new_time))),
            ("speedup".into(), Json::Float(speedup)),
            ("fast_accept".into(), Json::Int(counters.fast_accept as i64)),
            ("fast_reject".into(), Json::Int(counters.fast_reject as i64)),
            ("full_dp".into(), Json::Int(counters.full_dp as i64)),
        ]));
    }

    print_table(
        "Verification kernel: matches_phonemes vs screened Verifier",
        &[
            "e", "matches", "old Mp/s", "new Mp/s", "speedup", "accept", "reject", "full DP",
        ],
        &rows,
    );

    let report = Json::Obj(vec![
        ("dataset_size".into(), Json::Int(names.len() as i64)),
        ("queries".into(), Json::Int(queries.len() as i64)),
        ("runs".into(), Json::Arr(json_runs)),
    ]);
    let out = std::path::Path::new("results/verify_kernel_bench.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(out, report.render()).expect("write report");
    println!("\nWrote {}", out.display());

    batch_sweep(&op, &names, &cluster_ids, &embeds, &queries);
}

/// Batch widths swept against the pair-at-a-time baseline.
const WIDTHS: [usize; 4] = [1, 4, 8, 16];

/// The batched-kernel sweep: width × SIMD backend, one row per cell,
/// speedups relative to the pair-at-a-time `Verifier` on the same
/// verify-bound workload (every pair screened, cached cluster ids).
fn batch_sweep(
    op: &lexequal::LexEqual,
    names: &[PhonemeString],
    cluster_ids: &[Vec<u8>],
    embeds: &[Vec<u8>],
    queries: &[&PhonemeString],
) {
    let pairs = queries.len() * names.len();
    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    let mpairs = |t: std::time::Duration| pairs as f64 / t.as_secs_f64() / 1e6;
    // Best-of-N timing: this sweep's cells are short enough that one
    // noisy-neighbour window can swamp a single pass.
    const ROUNDS: usize = 9;
    for e in THRESHOLDS {
        // Pair-at-a-time baseline: what the shards ran before batching.
        let mut verifier = Verifier::new();
        let (base_hits, base_time) = timed_best(ROUNDS, || {
            let mut hits = 0usize;
            for q in queries {
                let prepared: PreparedQuery = op.prepare_query(q);
                for (i, (c, ids)) in names.iter().zip(cluster_ids).enumerate() {
                    if verifier.matches(op, &prepared, c, Some(ids), Some(&embeds[i]), e) {
                        hits += 1;
                    }
                }
            }
            hits
        });

        for level in available_simd_levels() {
            for width in WIDTHS {
                let mut bv = BatchVerifier::with_width_and_level(width, level);
                let mut lane_hits: Vec<u32> = Vec::with_capacity(names.len());
                let (batch_hits, batch_time) = timed_best(ROUNDS, || {
                    let mut hits = 0usize;
                    for q in queries {
                        let prepared: PreparedQuery = op.prepare_query(q);
                        lane_hits.clear();
                        bv.verify_ids(
                            op,
                            &prepared,
                            names,
                            Some(cluster_ids),
                            Some(embeds),
                            0..names.len() as u32,
                            e,
                            &mut lane_hits,
                        );
                        hits += lane_hits.len();
                    }
                    hits
                });
                assert_eq!(
                    base_hits, batch_hits,
                    "kernels disagree at e={e} width={width} level={level}"
                );
                let speedup = base_time.as_secs_f64() / batch_time.as_secs_f64();
                rows.push(vec![
                    format!("{e:.2}"),
                    format!("{width}"),
                    level.name().to_string(),
                    format!("{:.2}", mpairs(base_time)),
                    format!("{:.2}", mpairs(batch_time)),
                    format!("{speedup:.2}x"),
                ]);
                json_runs.push(Json::Obj(vec![
                    ("threshold".into(), Json::Float(e)),
                    ("width".into(), Json::Int(width as i64)),
                    ("simd".into(), Json::Str(level.name().into())),
                    ("pairs".into(), Json::Int(pairs as i64)),
                    ("matches".into(), Json::Int(batch_hits as i64)),
                    ("base_ns".into(), Json::Int(base_time.as_nanos() as i64)),
                    ("batch_ns".into(), Json::Int(batch_time.as_nanos() as i64)),
                    ("base_mpairs_per_s".into(), Json::Float(mpairs(base_time))),
                    ("batch_mpairs_per_s".into(), Json::Float(mpairs(batch_time))),
                    ("speedup".into(), Json::Float(speedup)),
                ]));
            }
        }
    }

    print_table(
        "Batched kernel: pair-at-a-time Verifier vs BatchVerifier",
        &["e", "width", "simd", "base Mp/s", "batch Mp/s", "speedup"],
        &rows,
    );

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Headline: the speedup the serving layer actually gets — detected
    // SIMD level, production widths (8+), averaged across thresholds.
    let detected = simd_level().name();
    let headline: Vec<f64> = json_runs
        .iter()
        .filter_map(|r| match r {
            Json::Obj(fields) => {
                let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                match (get("simd"), get("width"), get("speedup")) {
                    (Some(Json::Str(s)), Some(Json::Int(w)), Some(Json::Float(sp)))
                        if s == detected && *w >= 8 =>
                    {
                        Some(*sp)
                    }
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    let headline_mean = headline.iter().sum::<f64>() / headline.len().max(1) as f64;
    println!("\nheadline ({detected}, width 8+): mean speedup {headline_mean:.2}x");
    let report = Json::Obj(vec![
        ("dataset_size".into(), Json::Int(names.len() as i64)),
        ("queries".into(), Json::Int(queries.len() as i64)),
        (
            "available_parallelism".into(),
            Json::Int(parallelism as i64),
        ),
        (
            "simd_detected".into(),
            Json::Str(simd_level().name().into()),
        ),
        (
            "headline_speedup_width8plus".into(),
            Json::Float(headline_mean),
        ),
        ("runs".into(), Json::Arr(json_runs)),
    ]);
    let out = std::path::Path::new("results/verify_batch_bench.json");
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(out, report.render()).expect("write report");
    println!("\nWrote {}", out.display());
}
