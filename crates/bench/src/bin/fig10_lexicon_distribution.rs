//! Figure 10: distribution of the multiscript lexicon by string length,
//! lexicographic vs phonemic, with the corpus averages.
//!
//! Paper values: ~800 names × 3 scripts, average lexicographic length
//! 7.35, average phonemic length 7.16.

use lexequal_bench::{corpus, paper_note, print_table};

fn main() {
    let c = corpus();
    let dist = c.length_distribution();
    let rows: Vec<Vec<String>> = dist
        .iter()
        .filter(|(_, lex, phon)| *lex > 0 || *phon > 0)
        .map(|(len, lex, phon)| {
            vec![
                len.to_string(),
                lex.to_string(),
                phon.to_string(),
                bar(*lex),
                bar(*phon),
            ]
        })
        .collect();
    print_table(
        "Figure 10 — Distribution of Multiscript Lexicon",
        &["len", "#lex", "#phon", "lex", "phon"],
        &rows,
    );
    println!(
        "\nentries: {}   groups: {}   avg lexicographic length: {:.2}   avg phonemic length: {:.2}",
        c.len(),
        c.groups,
        c.avg_lex_len(),
        c.avg_phon_len()
    );
    paper_note(
        "paper reports ~800 tagged names per script (2400 entries), avg lex len 7.35, \
         avg phonemic len 7.16; both distributions unimodal with the phonemic one \
         shifted slightly left (phoneme strings a bit shorter than spellings).",
    );
}

fn bar(n: usize) -> String {
    "#".repeat(n / 12)
}
