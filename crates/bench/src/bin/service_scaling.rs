//! Shard-scaling comparison: the sharded serving layer vs the unsharded
//! library store, on the paper §5 synthetic dataset.
//!
//! ```sh
//! cargo run --release -p lexequal-bench --bin service_scaling -- [--size N] [--clients N]
//! ```
//!
//! Two reports in one run:
//!
//! 1. single-threaded search latency of the plain [`NameStore`] — the
//!    baseline every shard count must amortize its channel hops against;
//! 2. the full `loadgen` closed-loop comparison across shard counts,
//!    written to `results/service_bench.json`.
//!
//! Shard scaling is bounded by the host's `available_parallelism`; the
//! report records it so a flat curve on a small container is
//! distinguishable from a real regression.

use lexequal::{MatchConfig, NameStore, QgramMode, SearchMethod};
use lexequal_bench::*;
use lexequal_service::loadgen::{self, LoadgenConfig};

const THRESHOLD: f64 = 0.35;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let size = flag("--size", 50_000);
    let clients = flag("--clients", 4);
    let ops = flag("--ops", 250);

    println!("building synthetic dataset (~{size} entries) …");
    let dataset = loadgen::build_dataset(&MatchConfig::default(), size);
    println!("{} names\n", dataset.len());

    // Baseline: the unsharded library store, searched inline.
    let mut store = NameStore::new(MatchConfig::default());
    store.extend_transformed(dataset.clone());
    let (_, build_time) = timed(|| store.build_qgram(3, QgramMode::Strict));
    println!("unsharded q-gram build: {}", fmt_duration(build_time));
    let stride = (dataset.len() / 64).max(1);
    let queries: Vec<_> = dataset
        .iter()
        .step_by(stride)
        .take(64)
        .map(|e| e.phonemes.clone())
        .collect();
    let (hits, inline_time) = timed(|| {
        let mut hits = 0usize;
        for q in &queries {
            hits += store
                .search_phonemes(q, THRESHOLD, SearchMethod::Qgram)
                .ids
                .len();
        }
        hits
    });
    println!(
        "unsharded inline search: {} queries, {} matches, {} total ({:.1} q/s)\n",
        queries.len(),
        hits,
        fmt_duration(inline_time),
        queries.len() as f64 / inline_time.as_secs_f64().max(f64::EPSILON),
    );

    // The closed-loop sharded comparison.
    let config = LoadgenConfig {
        dataset_size: size,
        clients,
        ops_per_client: ops,
        shard_counts: vec![1, 2, 4],
        method: SearchMethod::Qgram,
        threshold: THRESHOLD,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config);
    println!(
        "host parallelism: {} (shard scaling cannot exceed it)",
        report.available_parallelism
    );
    let rows: Vec<Vec<String>> = report
        .runs
        .iter()
        .map(|r| {
            vec![
                r.shards.to_string(),
                format!("{:.1}", r.throughput),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p95_us),
                format!("{:.1}", r.p99_us),
                format!("{}/{}", r.cache_hits, r.cache_hits + r.cache_misses),
            ]
        })
        .collect();
    print_table(
        "sharded service, closed loop",
        &["shards", "ops/s", "p50 µs", "p95 µs", "p99 µs", "cache hit"],
        &rows,
    );

    let out = std::path::Path::new("results/service_bench.json");
    loadgen::write_json(&report, out).expect("write report");
    println!("\nwrote {}", out.display());
}
