//! Cost-model ablation (DESIGN.md §5): the paper calls the cost matrix
//! "an installable resource intended to tune the quality of match for a
//! specific domain" (§3.2). This experiment compares three installable
//! models on the evaluation corpus:
//!
//! * **Levenshtein** — unit substitutions (intra-cluster cost 1.0);
//! * **Clustered** — the paper's Soundex generalization at the knee cost
//!   0.25;
//! * **Feature-graded** — substitution cost proportional to articulatory
//!   feature distance (place/manner/voicing/aspiration, height/backness/
//!   rounding/length).

use lexequal::{ClusteredPhonemeCost, FeaturePhonemeCost, MatchConfig};
use lexequal_bench::{corpus, paper_note, print_table};
use lexequal_lexicon::{sweep_with_model, QualityPoint};

fn main() {
    let c = corpus();
    let cfg = MatchConfig::default();
    let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 * 0.05).collect();

    let levenshtein = ClusteredPhonemeCost::new(cfg.clusters.clone(), 1.0);
    let clustered = ClusteredPhonemeCost::new(cfg.clusters.clone(), 0.25);
    let feature = FeaturePhonemeCost::new();

    let runs: Vec<(&str, Vec<QualityPoint>)> = vec![
        (
            "levenshtein",
            sweep_with_model(&c, &levenshtein, &thresholds),
        ),
        (
            "clustered-0.25",
            sweep_with_model(&c, &clustered, &thresholds),
        ),
        (
            "feature-graded",
            sweep_with_model(&c, &feature, &thresholds),
        ),
    ];

    for (name, points) in &runs {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.threshold),
                    format!("{:.3}", p.recall()),
                    format!("{:.3}", p.precision()),
                ]
            })
            .collect();
        print_table(
            &format!("Cost-model ablation — {name}"),
            &["threshold", "recall", "precision"],
            &rows,
        );
    }

    // Best PR point per model.
    let mut best_rows = Vec::new();
    for (name, points) in &runs {
        let best = points
            .iter()
            .min_by(|a, b| {
                a.distance_to_ideal()
                    .partial_cmp(&b.distance_to_ideal())
                    .expect("finite")
            })
            .expect("non-empty");
        best_rows.push(vec![
            (*name).to_owned(),
            format!("{:.2}", best.threshold),
            format!("{:.3}", best.recall()),
            format!("{:.3}", best.precision()),
            format!("{:.3}", best.distance_to_ideal()),
        ]);
    }
    print_table(
        "Cost-model ablation — best PR point per model",
        &["model", "threshold", "recall", "precision", "dist to (1,1)"],
        &best_rows,
    );
    paper_note(
        "the paper only evaluates the clustered family; this ablation supports that \
         choice: unit costs cannot separate like-phoneme noise from real differences \
         at all, and the automatically graded feature model lands between Levenshtein \
         and the hand-tuned clusters — generic feature distance overcharges the \
         specific confusions (retroflex/alveolar, open vowels) that cross-script \
         rendering actually produces. Domain-tuned clustering earns its keep.",
    );
}
