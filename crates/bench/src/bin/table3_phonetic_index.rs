//! Table 3: LexEQUAL accelerated by the phonetic index.
//!
//! Paper values: scan 0.71 s (vs 13.5 s q-gram — another order of
//! magnitude), join 15.2 s (vs 856 s). The price: "a small, but
//! significant 4–5% false-dismissals, with respect to the classical
//! edit-distance metric".
//!
//! This binary measures the in-process probe path, the SQL Figure 15 plan
//! (B-tree `IndexScan` on the grouped phoneme string identifier + UDF
//! verification), and the false-dismissal rate. `--ablate` contrasts the
//! standard (fine) cluster table with the coarse Soundex-like one.

use lexequal::phonidx::{grouped_id, PhoneticIndex};
use lexequal::udf::{load_names_table, register_udfs};
use lexequal::{ClusterTable, Language, LexEqual, MatchConfig};
use lexequal_bench::*;
use lexequal_mdb::Database;
use std::sync::Arc;

const THRESHOLD: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ablate = args.iter().any(|a| a == "--ablate");
    let opts = RunOptions::from_args();
    let op = Arc::new(levenshtein_operator());
    println!(
        "building synthetic dataset (~{} entries) …",
        opts.dataset_size
    );
    let data = synthetic(opts.dataset_size);
    let phonemes: Vec<_> = data.entries.iter().map(|e| e.phonemes.clone()).collect();

    let clusters = op.cost_model().clusters();
    let (index, build_time) = timed(|| PhoneticIndex::build(clusters, &phonemes));
    println!(
        "phonetic index: {} strings, {} distinct grouped identifiers, built in {}",
        index.len(),
        index.distinct_keys(),
        fmt_duration(build_time)
    );

    let stride = (data.len() / opts.queries.max(1)).max(1);
    let queries: Vec<_> = data
        .entries
        .iter()
        .step_by(stride)
        .take(opts.queries)
        .collect();

    // Both paths pay the per-verification UDF cost (operand parse + DP),
    // exactly like the SQL PHONEQUAL UDF over the stored pname column.
    let pname_col: Vec<String> = phonemes.iter().map(|p| p.to_string()).collect();
    let verify = |stored: &str, query: &str| -> bool {
        let a: lexequal_phoneme::PhonemeString = stored.parse().expect("stored IPA");
        let b: lexequal_phoneme::PhonemeString = query.parse().expect("query IPA");
        op.matches_phonemes(&a, &b, THRESHOLD)
    };

    // --- scan via index probe + verify ------------------------------------
    let (probe_stats, t_index) = timed(|| {
        let mut hits = 0usize;
        let mut verified = 0usize;
        for q in &queries {
            let qs = q.phonemes.to_string();
            for cand in index.candidates(clusters, &q.phonemes) {
                verified += 1;
                if verify(&pname_col[cand as usize], &qs) {
                    hits += 1;
                }
            }
        }
        (hits, verified)
    });
    let t_index = t_index / queries.len() as u32;
    let (index_hits, verified) = probe_stats;

    // --- exhaustive scan, for time ratio and false-dismissal accounting ---
    let (scan_hits, t_scan) = timed(|| {
        let mut hits = 0usize;
        for q in &queries {
            let qs = q.phonemes.to_string();
            for stored in &pname_col {
                if verify(stored, &qs) {
                    hits += 1;
                }
            }
        }
        hits
    });
    let t_scan = t_scan / queries.len() as u32;
    let dismissed = scan_hits.saturating_sub(index_hits);
    let dismissal_rate = dismissed as f64 / scan_hits.max(1) as f64;

    // --- join over the 0.2% subset ----------------------------------------
    let subset_len = (data.len() / 500).max(50);
    // Strided so all three languages appear (the dataset is laid out
    // in language blocks).
    let subset: Vec<&lexequal_lexicon::SyntheticEntry> = data
        .entries
        .iter()
        .step_by((data.len() / subset_len).max(1))
        .take(subset_len)
        .collect();
    let subset_phonemes: Vec<_> = subset.iter().map(|e| e.phonemes.clone()).collect();
    let subset_col: Vec<String> = subset.iter().map(|e| e.phonemes.to_string()).collect();
    let (join_pairs, t_join) = timed(|| {
        let sub_index = PhoneticIndex::build(clusters, &subset_phonemes);
        let mut pairs = 0usize;
        for (i, a) in subset.iter().enumerate() {
            for id in sub_index.candidates(clusters, &a.phonemes) {
                if subset[id as usize].language != a.language
                    && verify(&subset_col[id as usize], &subset_col[i])
                {
                    pairs += 1;
                }
            }
        }
        pairs
    });

    print_table(
        &format!(
            "Table 3 — Phonemic Index Performance ({} rows, {}-row join subset, avg over {} queries)",
            data.len(),
            subset_len,
            queries.len()
        ),
        &["Query", "Matching Methodology", "Time", "Notes"],
        &[
            vec![
                "Scan".into(),
                "Naive LexEQUAL UDF".into(),
                fmt_duration(t_scan),
                format!("{} hits", scan_hits),
            ],
            vec![
                "Scan".into(),
                "LexEQUAL UDF + phonetic index".into(),
                fmt_duration(t_index),
                format!(
                    "{} hits, {} verify calls/query",
                    index_hits,
                    verified / queries.len()
                ),
            ],
            vec![
                "Join".into(),
                "LexEQUAL UDF + phonetic index".into(),
                fmt_duration(t_join),
                format!("{join_pairs} cross-language pairs"),
            ],
        ],
    );
    println!(
        "\nspeedup over naive scan: {:.0}x    false dismissals (synthetic data): \
         {dismissed}/{scan_hits} = {:.1}%",
        t_scan.as_secs_f64() / t_index.as_secs_f64().max(1e-9),
        100.0 * dismissal_rate,
    );

    // The paper's 4–5% dismissal figure concerns phonetic matches of real
    // names. Concatenated synthetic strings double the edit budget and so
    // admit many indel-bearing matches the index can never retrieve,
    // inflating the rate; measure the real-lexicon rate too.
    let real = corpus();
    let real_phonemes: Vec<_> = real.entries.iter().map(|e| e.phonemes.clone()).collect();
    let real_index = PhoneticIndex::build(clusters, &real_phonemes);
    let (mut real_scan_hits, mut real_index_hits) = (0usize, 0usize);
    for q in real.entries.iter().step_by(23) {
        let (ids, _) = real_index.search(&real_phonemes, &q.phonemes, THRESHOLD, &op);
        real_index_hits += ids.len();
        real_scan_hits += real_phonemes
            .iter()
            .filter(|p| op.matches_phonemes(p, &q.phonemes, THRESHOLD))
            .count();
    }
    let real_dismissed = real_scan_hits.saturating_sub(real_index_hits);
    println!(
        "false dismissals (real lexicon, {} probes): {real_dismissed}/{real_scan_hits} = {:.1}%",
        real.entries.len().div_ceil(23),
        100.0 * real_dismissed as f64 / real_scan_hits.max(1) as f64,
    );

    sql_figure15_demo(&op, &data);

    if ablate {
        ablate_cluster_granularity(&data, &queries);
    }

    paper_note(
        "paper: scan 0.71 s and join 15.2 s — an order of magnitude beyond q-grams — \
         at the cost of 4–5% false dismissals vs the classical edit-distance answer \
         set; suitable where very fast response outweighs completeness (web search).",
    );
}

/// The Figure 15 SQL plan: equality probe on the indexed grouped phoneme
/// string identifier, then UDF verification.
fn sql_figure15_demo(op: &Arc<LexEqual>, data: &lexequal_lexicon::SyntheticDataset) {
    let n = 20_000.min(data.len());
    let names: Vec<(String, Language)> = data.entries[..n]
        .iter()
        .map(|e| (e.text.clone(), e.language))
        .collect();
    let mut db = Database::new();
    register_udfs(&mut db, op.clone());
    load_names_table(&mut db, "names", &names, op).expect("load names");
    db.execute("CREATE INDEX ix_gpid ON names (gpid)")
        .expect("create index");

    let q = &data.entries[0];
    let key = grouped_id(op.cost_model().clusters(), &q.phonemes);
    let sql = format!(
        "SELECT N.id, N.name FROM names N \
         WHERE N.gpid = {key} AND PHONEQUAL(N.pname, '{}', {THRESHOLD})",
        q.phonemes
    );
    let plan = db.explain(&sql).expect("explain");
    assert!(
        plan.contains("IndexScan"),
        "Figure 15 plan must use the B-tree: {plan}"
    );
    let (rs, t) = timed(|| db.execute(&sql).expect("figure 15 SQL"));
    println!(
        "\nFigure 15 SQL over a {n}-row table: plan [{plan}], {} matches in {} \
         (UDF invoked {} times instead of {n})",
        rs.rows.len(),
        fmt_duration(t),
        db.stats().udf_calls("PHONEQUAL"),
    );
}

/// Cluster-granularity ablation: fine (standard) vs coarse (Soundex-like)
/// tables trade index selectivity against false dismissals.
fn ablate_cluster_granularity(
    data: &lexequal_lexicon::SyntheticDataset,
    queries: &[&lexequal_lexicon::SyntheticEntry],
) {
    let phonemes: Vec<_> = data.entries.iter().map(|e| e.phonemes.clone()).collect();
    let mut rows = Vec::new();
    for (name, table) in [
        ("standard (fine)", ClusterTable::standard()),
        ("coarse (Soundex-like)", ClusterTable::coarse()),
    ] {
        let op = LexEqual::new(MatchConfig::default().with_clusters(table.clone()));
        let index = PhoneticIndex::build(op.cost_model().clusters(), &phonemes);
        let mut index_hits = 0usize;
        let mut scan_hits = 0usize;
        let mut verified = 0usize;
        for q in queries.iter().take(10) {
            let (ids, v) = index.search(&phonemes, &q.phonemes, THRESHOLD, &op);
            index_hits += ids.len();
            verified += v;
            for p in &phonemes {
                if op.matches_phonemes(p, &q.phonemes, THRESHOLD) {
                    scan_hits += 1;
                }
            }
        }
        rows.push(vec![
            name.into(),
            format!("{}", index.distinct_keys()),
            format!("{}", verified),
            format!("{index_hits}/{scan_hits}"),
            format!(
                "{:.1}%",
                100.0 * (scan_hits.saturating_sub(index_hits)) as f64 / scan_hits.max(1) as f64
            ),
        ]);
    }
    print_table(
        "Table 3 (ablation) — cluster granularity vs selectivity and dismissals",
        &[
            "clusters",
            "distinct keys",
            "verify calls",
            "hits/scan",
            "dismissed",
        ],
        &rows,
    );
}
