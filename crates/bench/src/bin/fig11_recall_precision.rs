//! Figure 11: recall and precision vs user match threshold, one curve per
//! intra-cluster substitution cost.
//!
//! Paper shapes to reproduce:
//! * recall rises with threshold and asymptotically reaches 1 past ~0.5;
//! * recall improves as the intra-cluster cost falls (Soundex intuition);
//! * precision falls with threshold — negligibly below 0.2, rapidly in
//!   0.2–0.5;
//! * at cost 0 precision collapses at very low thresholds already.

use lexequal_bench::{corpus, paper_note, print_table};
use lexequal_lexicon::sweep;

fn main() {
    let c = corpus();
    let costs = [0.0, 0.25, 0.5, 0.75, 1.0];
    let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
    let points = sweep(&c, &costs, &thresholds);

    for &cost in &costs {
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.cost == cost)
            .map(|p| {
                vec![
                    format!("{:.2}", p.threshold),
                    format!("{:.3}", p.recall()),
                    format!("{:.3}", p.precision()),
                    format!("{}", p.correct),
                    format!("{}", p.reported),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 11 — recall/precision vs threshold (intra-cluster cost {cost})"),
            &["threshold", "recall", "precision", "m1", "m2"],
            &rows,
        );
    }
    paper_note(
        "recall improves with threshold and with lower intra-cluster cost, reaching ~1 \
         past threshold 0.5; precision decays with threshold, fastest for cost 0 \
         (the Soundex limit: good recall, poor precision).",
    );
}
