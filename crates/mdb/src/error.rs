//! Engine error type.

use std::fmt;

/// Errors raised by the mdb engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// SQL lexing/parsing failure, with a human-readable message.
    Parse(String),
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced column cannot be resolved (or is ambiguous).
    NoSuchColumn(String),
    /// Referenced index does not exist.
    NoSuchIndex(String),
    /// A table/index with this name already exists.
    AlreadyExists(String),
    /// Type error during expression evaluation.
    Type(String),
    /// Called an unregistered UDF.
    NoSuchFunction(String),
    /// A UDF reported a failure.
    Udf(String),
    /// Row arity or value type does not match the table schema.
    SchemaMismatch(String),
    /// Feature outside the supported SQL subset.
    Unsupported(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            DbError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::NoSuchFunction(n) => write!(f, "no such function: {n}"),
            DbError::Udf(m) => write!(f, "UDF error: {m}"),
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DbError {}
