//! Execution statistics.
//!
//! The paper's performance story (Tables 1–3) is about *how many times the
//! expensive UDF runs* and *how much data the plan touches*. `Stats`
//! captures exactly those counters so the benchmark harness can report the
//! mechanics behind each timing.

use std::cell::Cell;
use std::cell::RefCell;
use std::collections::HashMap;

/// Counters collected during one query execution (or accumulated across a
/// run, at the caller's choice).
#[derive(Debug, Default)]
pub struct Stats {
    rows_scanned: Cell<u64>,
    rows_joined: Cell<u64>,
    index_lookups: Cell<u64>,
    udf_calls: RefCell<HashMap<String, u64>>,
}

impl Stats {
    /// New zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` rows produced by a table scan.
    pub fn record_scan(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    /// Record `n` candidate pairs examined by a join.
    pub fn record_join(&self, n: u64) {
        self.rows_joined.set(self.rows_joined.get() + n);
    }

    /// Record an index lookup.
    pub fn record_index_lookup(&self) {
        self.index_lookups.set(self.index_lookups.get() + 1);
    }

    /// Record a UDF invocation by name.
    pub fn record_udf_call(&self, name: &str) {
        *self
            .udf_calls
            .borrow_mut()
            .entry(name.to_owned())
            .or_insert(0) += 1;
    }

    /// Total rows produced by scans.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.get()
    }

    /// Total join pairs examined.
    pub fn rows_joined(&self) -> u64 {
        self.rows_joined.get()
    }

    /// Total index lookups.
    pub fn index_lookups(&self) -> u64 {
        self.index_lookups.get()
    }

    /// Invocations of one UDF.
    pub fn udf_calls(&self, name: &str) -> u64 {
        self.udf_calls.borrow().get(name).copied().unwrap_or(0)
    }

    /// Total UDF invocations across all names.
    pub fn total_udf_calls(&self) -> u64 {
        self.udf_calls.borrow().values().sum()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.rows_joined.set(0);
        self.index_lookups.set(0);
        self.udf_calls.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = Stats::new();
        s.record_scan(10);
        s.record_scan(5);
        s.record_join(3);
        s.record_index_lookup();
        s.record_udf_call("LEXEQUAL");
        s.record_udf_call("LEXEQUAL");
        s.record_udf_call("OTHER");
        assert_eq!(s.rows_scanned(), 15);
        assert_eq!(s.rows_joined(), 3);
        assert_eq!(s.index_lookups(), 1);
        assert_eq!(s.udf_calls("LEXEQUAL"), 2);
        assert_eq!(s.total_udf_calls(), 3);
        s.reset();
        assert_eq!(s.rows_scanned(), 0);
        assert_eq!(s.total_udf_calls(), 0);
    }
}
