//! Bound (resolved) expressions and their evaluation.
//!
//! The parser produces [`SqlExpr`] with textual column references; binding
//! resolves them against the schema of the row the executor will supply
//! (possibly a join row spanning several tables) and lowers the LexEQUAL
//! syntax extension to a plain UDF call. Evaluation is interpretive —
//! adequate for an experimental engine and faithful to the paper's
//! interpreted PL/SQL setting.

use crate::error::DbError;
use crate::sql::ast::{Aggregate, BinOp, Literal, SqlExpr, UnOp};
use crate::stats::Stats;
use crate::udf::UdfRegistry;
use crate::value::Value;

/// The name environment a query row exposes: one entry per column, with
/// the alias of the table it came from.
#[derive(Debug, Clone, Default)]
pub struct BoundSchema {
    /// (table alias uppercased, column name uppercased) per output column.
    pub columns: Vec<(String, String)>,
}

impl BoundSchema {
    /// Resolve a possibly-qualified column name to an index.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, DbError> {
        let name = name.to_uppercase();
        let qualifier = qualifier.map(str::to_uppercase);
        let mut hit = None;
        for (i, (q, n)) in self.columns.iter().enumerate() {
            if *n == name && qualifier.as_deref().map_or(true, |qq| qq == q) {
                if hit.is_some() {
                    return Err(DbError::NoSuchColumn(format!("{name} is ambiguous")));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| {
            DbError::NoSuchColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name,
            })
        })
    }
}

/// A bound expression, ready to evaluate against a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant.
    Literal(Value),
    /// Column of the input row.
    Column(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Scalar function call (builtin or UDF), dispatched by name.
    Call {
        /// Upper-case function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A computed aggregate, filled in by the group-by operator.
    AggregateSlot(usize),
}

/// An aggregate extracted from an expression during binding.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAggregate {
    /// Which aggregate function.
    pub agg: Aggregate,
    /// Aggregated expression (`None` = COUNT(*)).
    pub arg: Option<Expr>,
}

/// Binder: resolves names and extracts aggregates.
pub struct Binder<'a> {
    /// The row schema expressions are bound against.
    pub schema: &'a BoundSchema,
    /// Aggregates encountered so far (slots index into this).
    pub aggregates: Vec<BoundAggregate>,
}

impl<'a> Binder<'a> {
    /// New binder over a schema.
    pub fn new(schema: &'a BoundSchema) -> Self {
        Binder {
            schema,
            aggregates: Vec::new(),
        }
    }

    /// Bind an expression. Aggregate calls allocate slots.
    pub fn bind(&mut self, e: &SqlExpr) -> Result<Expr, DbError> {
        Ok(match e {
            SqlExpr::Literal(l) => Expr::Literal(literal_value(l)),
            SqlExpr::Column { qualifier, name } => {
                Expr::Column(self.schema.resolve(qualifier.as_deref(), name)?)
            }
            SqlExpr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(self.bind(left)?),
                right: Box::new(self.bind(right)?),
            },
            SqlExpr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(self.bind(operand)?),
            },
            SqlExpr::Call { name, args } => Expr::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.bind(a))
                    .collect::<Result<_, _>>()?,
            },
            SqlExpr::AggregateCall { agg, arg } => {
                let bound_arg = match arg {
                    Some(a) => Some(self.bind(a)?),
                    None => None,
                };
                let slot = self.aggregates.len();
                self.aggregates.push(BoundAggregate {
                    agg: *agg,
                    arg: bound_arg,
                });
                Expr::AggregateSlot(slot)
            }
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => {
                // Lower to an OR chain of equalities.
                let bound = self.bind(expr)?;
                let mut chain: Option<Expr> = None;
                for item in list {
                    let eq = Expr::Binary {
                        op: BinOp::Eq,
                        left: Box::new(bound.clone()),
                        right: Box::new(self.bind(item)?),
                    };
                    chain = Some(match chain {
                        None => eq,
                        Some(c) => Expr::Binary {
                            op: BinOp::Or,
                            left: Box::new(c),
                            right: Box::new(eq),
                        },
                    });
                }
                let chain = chain.unwrap_or(Expr::Literal(Value::Bool(false)));
                if *negated {
                    Expr::Unary {
                        op: UnOp::Not,
                        operand: Box::new(chain),
                    }
                } else {
                    chain
                }
            }
            SqlExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let bound = self.bind(expr)?;
                let range = Expr::Binary {
                    op: BinOp::And,
                    left: Box::new(Expr::Binary {
                        op: BinOp::Ge,
                        left: Box::new(bound.clone()),
                        right: Box::new(self.bind(low)?),
                    }),
                    right: Box::new(Expr::Binary {
                        op: BinOp::Le,
                        left: Box::new(bound),
                        right: Box::new(self.bind(high)?),
                    }),
                };
                if *negated {
                    Expr::Unary {
                        op: UnOp::Not,
                        operand: Box::new(range),
                    }
                } else {
                    range
                }
            }
            SqlExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let call = Expr::Call {
                    name: "LIKE".to_owned(),
                    args: vec![self.bind(expr)?, self.bind(pattern)?],
                };
                if *negated {
                    Expr::Unary {
                        op: UnOp::Not,
                        operand: Box::new(call),
                    }
                } else {
                    call
                }
            }
            SqlExpr::LexEqual {
                left,
                right,
                threshold,
                languages,
            } => {
                // Lower to the registered UDF:
                // LEXEQUAL(left, right, threshold, 'lang1,lang2' | '*').
                let langs = match languages {
                    None => "*".to_owned(),
                    Some(ls) => ls.join(","),
                };
                Expr::Call {
                    name: "LEXEQUAL".to_owned(),
                    args: vec![
                        self.bind(left)?,
                        self.bind(right)?,
                        self.bind(threshold)?,
                        Expr::Literal(Value::Str(langs)),
                    ],
                }
            }
        })
    }
}

/// Convert an AST literal to a runtime value.
pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

/// Evaluation context: the current row, UDFs, computed aggregates, stats.
pub struct EvalCtx<'a> {
    /// The input row.
    pub row: &'a [Value],
    /// UDF registry for `Call` dispatch.
    pub udfs: &'a UdfRegistry,
    /// Aggregate results for `AggregateSlot` (group-by only).
    pub aggs: Option<&'a [Value]>,
    /// Execution statistics sink.
    pub stats: &'a Stats,
}

impl Expr {
    /// Evaluate against a context.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Result<Value, DbError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(i) => Ok(ctx
                .row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Type(format!("row too short for column {i}")))?),
            Expr::AggregateSlot(i) => ctx
                .aggs
                .and_then(|a| a.get(*i).cloned())
                .ok_or_else(|| DbError::Type("aggregate outside GROUP BY".into())),
            Expr::Unary { op, operand } => {
                let v = operand.eval(ctx)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(DbError::Type(format!("cannot negate {other}"))),
                    },
                }
            }
            Expr::Binary { op, left, right } => {
                // Short-circuit logic first.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(
                            left.eval(ctx)?.truthy() && right.eval(ctx)?.truthy(),
                        ))
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(
                            left.eval(ctx)?.truthy() || right.eval(ctx)?.truthy(),
                        ))
                    }
                    _ => {}
                }
                let l = left.eval(ctx)?;
                let r = right.eval(ctx)?;
                eval_binop(*op, l, r)
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(ctx)?);
                }
                eval_call(name, &vals, ctx)
            }
        }
    }

    /// Walk all sub-expressions (including self).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { operand, .. } => operand.walk(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, DbError> {
    use BinOp::*;
    match op {
        Eq => Ok(Value::Bool(!l.is_null() && !r.is_null() && l == r)),
        Ne => Ok(Value::Bool(!l.is_null() && !r.is_null() && l != r)),
        Lt => Ok(Value::Bool(!l.is_null() && !r.is_null() && l < r)),
        Le => Ok(Value::Bool(!l.is_null() && !r.is_null() && l <= r)),
        Gt => Ok(Value::Bool(!l.is_null() && !r.is_null() && l > r)),
        Ge => Ok(Value::Bool(!l.is_null() && !r.is_null() && l >= r)),
        Concat => Ok(Value::Str(format!("{l}{r}"))),
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic when both sides are integers (except /).
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return Ok(match op {
                    Add => Value::Int(a + b),
                    Sub => Value::Int(a - b),
                    Mul => Value::Int(a * b),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Float(*a as f64 / *b as f64)
                        }
                    }
                    _ => unreachable!("arithmetic op"),
                });
            }
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!("arithmetic op"),
            })
        }
        And | Or => unreachable!("handled by short-circuit path"),
    }
}

fn eval_call(name: &str, args: &[Value], ctx: &EvalCtx<'_>) -> Result<Value, DbError> {
    match name {
        "LEN" | "LENGTH" => {
            let [v] = args else {
                return Err(DbError::Type("LEN takes 1 argument".into()));
            };
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(v.as_str()?.chars().count() as i64))
        }
        "ABS" => {
            let [v] = args else {
                return Err(DbError::Type("ABS takes 1 argument".into()));
            };
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(DbError::Type(format!("ABS of {other}"))),
            }
        }
        "UPPER" => {
            let [v] = args else {
                return Err(DbError::Type("UPPER takes 1 argument".into()));
            };
            Ok(Value::Str(v.as_str()?.to_uppercase()))
        }
        "LIKE" => {
            let [v, p] = args else {
                return Err(DbError::Type("LIKE takes 2 arguments".into()));
            };
            if v.is_null() || p.is_null() {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(like_match(v.as_str()?, p.as_str()?)))
        }
        "LOWER" => {
            let [v] = args else {
                return Err(DbError::Type("LOWER takes 1 argument".into()));
            };
            Ok(Value::Str(v.as_str()?.to_lowercase()))
        }
        _ => {
            let udf = ctx
                .udfs
                .get(name)
                .ok_or_else(|| DbError::NoSuchFunction(name.to_owned()))?;
            ctx.stats.record_udf_call(name);
            udf.call(args)
        }
    }
}

/// SQL LIKE matching: `%` matches any run (including empty), `_` matches
/// exactly one character. Case-sensitive, over chars.
fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|k| rec(&s[k..], rest)),
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((&c, rest)) => s.first() == Some(&c) && rec(&s[1..], rest),
        }
    }
    let sv: Vec<char> = s.chars().collect();
    let pv: Vec<char> = pattern.chars().collect();
    rec(&sv, &pv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::{SelectItem, Statement};
    use crate::sql::parser::parse;

    fn schema() -> BoundSchema {
        BoundSchema {
            columns: vec![
                ("T".into(), "A".into()),
                ("T".into(), "B".into()),
                ("U".into(), "A".into()),
            ],
        }
    }

    fn bind_where(sql: &str) -> (Expr, Vec<BoundAggregate>) {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!("expected select")
        };
        let s = schema();
        let mut b = Binder::new(&s);
        let e = b.bind(sel.where_clause.as_ref().unwrap()).unwrap();
        (e, b.aggregates)
    }

    fn eval_simple(e: &Expr, row: &[Value]) -> Value {
        let udfs = UdfRegistry::new();
        let stats = Stats::default();
        e.eval(&EvalCtx {
            row,
            udfs: &udfs,
            aggs: None,
            stats: &stats,
        })
        .unwrap()
    }

    #[test]
    fn qualified_resolution_and_ambiguity() {
        let s = schema();
        assert_eq!(s.resolve(Some("t"), "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("U"), "A").unwrap(), 2);
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert!(s.resolve(None, "a").is_err()); // ambiguous
        assert!(s.resolve(None, "zzz").is_err());
    }

    #[test]
    fn arithmetic_and_comparison_eval() {
        let (e, _) = bind_where("SELECT x FROM t WHERE t.b + 1 >= 2 * 2");
        let v = eval_simple(&e, &[Value::Null, Value::Int(3), Value::Null]);
        assert_eq!(v, Value::Bool(true));
        let v = eval_simple(&e, &[Value::Null, Value::Int(2), Value::Null]);
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn null_comparisons_are_false() {
        let (e, _) = bind_where("SELECT x FROM t WHERE t.b = t.b");
        let v = eval_simple(&e, &[Value::Null, Value::Null, Value::Null]);
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn builtins() {
        let (e, _) = bind_where("SELECT x FROM t WHERE LEN(t.b) = 5 AND ABS(0 - 3) = 3");
        let v = eval_simple(&e, &[Value::Null, Value::from("nehru"), Value::Null]);
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn len_counts_chars_not_bytes() {
        let (e, _) = bind_where("SELECT x FROM t WHERE LEN(t.b) = 5");
        // नेहरु is 5 chars, 15 bytes
        let v = eval_simple(&e, &[Value::Null, Value::from("नेहरु"), Value::Null]);
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn division_by_zero_is_null() {
        let (e, _) = bind_where("SELECT x FROM t WHERE 1 / 0 = 1");
        let v = eval_simple(&e, &[Value::Null, Value::Null, Value::Null]);
        assert_eq!(v, Value::Bool(false)); // NULL = 1 is false
    }

    #[test]
    fn aggregates_extracted_into_slots() {
        let Statement::Select(sel) =
            parse("SELECT t.a FROM t GROUP BY t.a HAVING COUNT(*) > 2 AND MAX(t.b) < 10").unwrap()
        else {
            panic!("expected select")
        };
        let s = schema();
        let mut b = Binder::new(&s);
        let e = b.bind(sel.having.as_ref().unwrap()).unwrap();
        assert_eq!(b.aggregates.len(), 2);
        let mut slots = 0;
        e.walk(&mut |x| {
            if matches!(x, Expr::AggregateSlot(_)) {
                slots += 1;
            }
        });
        assert_eq!(slots, 2);
    }

    #[test]
    fn lexequal_lowers_to_udf_call() {
        let (e, _) = bind_where(
            "SELECT x FROM t WHERE t.b LEXEQUAL 'Nehru' THRESHOLD 0.25 INLANGUAGES { English, Tamil }",
        );
        let Expr::Call { name, args } = &e else {
            panic!("expected call, got {e:?}")
        };
        assert_eq!(name, "LEXEQUAL");
        assert_eq!(args.len(), 4);
        assert_eq!(args[3], Expr::Literal(Value::from("ENGLISH,TAMIL")));
    }

    #[test]
    fn missing_udf_is_reported() {
        let (e, _) = bind_where("SELECT x FROM t WHERE MYSTERY(t.b) = 1");
        let udfs = UdfRegistry::new();
        let stats = Stats::default();
        let err = e
            .eval(&EvalCtx {
                row: &[Value::Null, Value::Int(1), Value::Null],
                udfs: &udfs,
                aggs: None,
                stats: &stats,
            })
            .unwrap_err();
        assert!(matches!(err, DbError::NoSuchFunction(_)));
    }

    #[test]
    fn select_items_bind() {
        let Statement::Select(sel) = parse("SELECT t.a, t.b || 'x' AS bx FROM t").unwrap() else {
            panic!("expected select")
        };
        let s = schema();
        let mut b = Binder::new(&s);
        for item in &sel.items {
            if let SelectItem::Expr { expr, .. } = item {
                b.bind(expr).unwrap();
            }
        }
    }
}
