//! Recursive-descent parser for the SQL subset.

use crate::error::DbError;
use crate::sql::ast::*;
use crate::sql::lexer::{lex, Token};
use crate::value::DataType;

/// Parse one SQL statement.
pub fn parse(input: &str) -> Result<Statement, DbError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(DbError::Parse(format!(
            "trailing input at token {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), DbError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.eat_kw("EXPLAIN") {
            self.expect_kw("SELECT")?;
            return Ok(Statement::Explain(self.select_body()?));
        }
        if self.eat_kw("SELECT") {
            return Ok(Statement::Select(self.select_body()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let where_clause = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete {
                table,
                where_clause,
            });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut set = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_sym("=")?;
                set.push((col, self.expr()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            let where_clause = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                set,
                where_clause,
            });
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                return self.create_index();
            }
            return Err(DbError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ));
        }
        Err(DbError::Parse(format!(
            "expected SELECT/INSERT/CREATE, found {:?}",
            self.peek()
        )))
    }

    fn select_body(&mut self) -> Result<Select, DbError> {
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let Some(Token::Word(w)) = self.peek() {
                    // bare alias, but not a clause keyword
                    const CLAUSES: &[&str] =
                        &["FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT"];
                    if CLAUSES.contains(&w.as_str()) {
                        None
                    } else {
                        Some(self.ident()?)
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            let alias = if let Some(Token::Word(w)) = self.peek() {
                const CLAUSES: &[&str] = &["WHERE", "GROUP", "HAVING", "ORDER", "LIMIT"];
                if CLAUSES.contains(&w.as_str()) {
                    table.clone()
                } else {
                    self.ident()?
                }
            } else {
                table.clone()
            };
            from.push((table, alias));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderBy { expr, asc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(DbError::Parse(format!("bad LIMIT: {other:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal(&mut self) -> Result<Literal, DbError> {
        let neg = self.eat_sym("-");
        let lit = match self.next() {
            Some(Token::Int(i)) => Literal::Int(if neg { -i } else { i }),
            Some(Token::Float(f)) => Literal::Float(if neg { -f } else { f }),
            Some(Token::Str(s)) if !neg => Literal::Str(s),
            Some(Token::Word(w)) if !neg && w == "NULL" => Literal::Null,
            Some(Token::Word(w)) if !neg && w == "TRUE" => Literal::Bool(true),
            Some(Token::Word(w)) if !neg && w == "FALSE" => Literal::Bool(false),
            other => return Err(DbError::Parse(format!("expected literal, found {other:?}"))),
        };
        Ok(lit)
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_word = self.ident()?;
            let ty = match ty_word.as_str() {
                "INT" | "INTEGER" | "BIGINT" => DataType::Int,
                "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                "TEXT" | "VARCHAR" | "STRING" => DataType::Text,
                "BOOL" | "BOOLEAN" => DataType::Bool,
                other => return Err(DbError::Parse(format!("unknown type {other}"))),
            };
            // Tolerate VARCHAR(80)-style length suffixes.
            if self.eat_sym("(") {
                self.next();
                self.expect_sym(")")?;
            }
            columns.push((col, ty));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Statement, DbError> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym("(")?;
        let column = self.ident()?;
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<SqlExpr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_kw("NOT") {
            let operand = self.not_expr()?;
            return Ok(SqlExpr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlExpr, DbError> {
        let left = self.additive()?;
        // The LexEQUAL extension sits at comparison precedence.
        if self.eat_kw("LEXEQUAL") {
            let right = self.additive()?;
            self.expect_kw("THRESHOLD")?;
            let threshold = self.additive()?;
            let languages = if self.eat_kw("INLANGUAGES") {
                if self.eat_sym("*") {
                    None
                } else {
                    self.expect_sym("{")?;
                    let mut langs = Vec::new();
                    loop {
                        langs.push(self.ident()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym("}")?;
                    Some(langs)
                }
            } else {
                None
            };
            return Ok(SqlExpr::LexEqual {
                left: Box::new(left),
                right: Box::new(right),
                threshold: Box::new(threshold),
                languages,
            });
        }
        // [NOT] IN / BETWEEN / LIKE.
        let negated = if self.peek().is_some_and(|t| t.is_kw("NOT"))
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Word(w)) if w == "IN" || w == "BETWEEN" || w == "LIKE")
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(SqlExpr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(DbError::Parse("dangling NOT before comparison".into()));
        }
        let op = match self.peek() {
            Some(Token::Sym("=")) => Some(BinOp::Eq),
            Some(Token::Sym("<>")) | Some(Token::Sym("!=")) => Some(BinOp::Ne),
            Some(Token::Sym("<")) => Some(BinOp::Lt),
            Some(Token::Sym("<=")) => Some(BinOp::Le),
            Some(Token::Sym(">")) => Some(BinOp::Gt),
            Some(Token::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => BinOp::Add,
                Some(Token::Sym("-")) => BinOp::Sub,
                Some(Token::Sym("||")) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => BinOp::Mul,
                Some(Token::Sym("/")) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_sym("-") {
            let operand = self.unary()?;
            return Ok(SqlExpr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr, DbError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(SqlExpr::Literal(Literal::Int(i))),
            Some(Token::Float(f)) => Ok(SqlExpr::Literal(Literal::Float(f))),
            Some(Token::Str(s)) => Ok(SqlExpr::Literal(Literal::Str(s))),
            Some(Token::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Word(w)) => self.word_expr(w),
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn word_expr(&mut self, word: String) -> Result<SqlExpr, DbError> {
        match word.as_str() {
            "NULL" => return Ok(SqlExpr::Literal(Literal::Null)),
            "TRUE" => return Ok(SqlExpr::Literal(Literal::Bool(true))),
            "FALSE" => return Ok(SqlExpr::Literal(Literal::Bool(false))),
            _ => {}
        }
        // Function / aggregate call?
        if matches!(self.peek(), Some(Token::Sym("("))) {
            self.pos += 1;
            let agg = match word.as_str() {
                "COUNT" => Some(Aggregate::Count),
                "SUM" => Some(Aggregate::Sum),
                "MIN" => Some(Aggregate::Min),
                "MAX" => Some(Aggregate::Max),
                "AVG" => Some(Aggregate::Avg),
                _ => None,
            };
            if let Some(agg) = agg {
                if self.eat_sym("*") {
                    self.expect_sym(")")?;
                    if agg != Aggregate::Count {
                        return Err(DbError::Parse("only COUNT(*) takes *".into()));
                    }
                    return Ok(SqlExpr::AggregateCall { agg, arg: None });
                }
                let arg = self.expr()?;
                self.expect_sym(")")?;
                return Ok(SqlExpr::AggregateCall {
                    agg,
                    arg: Some(Box::new(arg)),
                });
            }
            let mut args = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            return Ok(SqlExpr::Call { name: word, args });
        }
        // Qualified column?
        if self.eat_sym(".") {
            let name = self.ident()?;
            return Ok(SqlExpr::Column {
                qualifier: Some(word),
                name,
            });
        }
        Ok(SqlExpr::Column {
            qualifier: None,
            name: word,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse("SELECT author, title FROM books WHERE price < 50").unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select");
        };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.from, vec![("BOOKS".into(), "BOOKS".into())]);
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn aliases_and_joins() {
        let s =
            parse("SELECT B1.Author FROM Books B1, Books B2 WHERE B1.Author = B2.Author").unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select");
        };
        assert_eq!(
            sel.from,
            vec![("BOOKS".into(), "B1".into()), ("BOOKS".into(), "B2".into())]
        );
    }

    #[test]
    fn lexequal_selection_syntax_from_figure3() {
        let s = parse(
            "select Author, Title from Books \
             where Author LexEQUAL 'Nehru' Threshold 0.25 \
             inlanguages { English, Hindi, Tamil, Greek }",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select");
        };
        let Some(SqlExpr::LexEqual {
            threshold,
            languages,
            ..
        }) = sel.where_clause
        else {
            panic!("expected LexEQUAL predicate, got {:?}", sel.where_clause);
        };
        assert_eq!(*threshold, SqlExpr::Literal(Literal::Float(0.25)));
        assert_eq!(
            languages,
            Some(vec![
                "ENGLISH".into(),
                "HINDI".into(),
                "TAMIL".into(),
                "GREEK".into()
            ])
        );
    }

    #[test]
    fn lexequal_join_syntax_from_figure5() {
        let s = parse(
            "select B1.Author from Books B1, Books B2 \
             where B1.Author LexEQUAL B2.Author Threshold 0.25 \
             and B1.Language <> B2.Language",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select");
        };
        // The top of the WHERE tree is AND(LexEQUAL, <>).
        let Some(SqlExpr::Binary {
            op: BinOp::And,
            left,
            ..
        }) = sel.where_clause
        else {
            panic!("expected AND");
        };
        assert!(matches!(*left, SqlExpr::LexEqual { .. }));
    }

    #[test]
    fn lexequal_wildcard_languages() {
        let s = parse("SELECT a FROM t WHERE a LEXEQUAL 'x' THRESHOLD 0.3 INLANGUAGES *").unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select")
        };
        let Some(SqlExpr::LexEqual { languages, .. }) = sel.where_clause else {
            panic!("expected lexequal")
        };
        assert_eq!(languages, None);
    }

    #[test]
    fn group_by_having_with_aggregates() {
        let s = parse(
            "SELECT n.id, COUNT(*) FROM names n GROUP BY n.id \
             HAVING COUNT(*) >= 3 AND MIN(n.len) > 2 ORDER BY n.id DESC LIMIT 10",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select")
        };
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].asc);
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("SELECT 1 + 2 * 3 FROM t").unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select")
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!("expected expr item")
        };
        // 1 + (2*3)
        let SqlExpr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("expected +: {expr:?}")
        };
        assert!(matches!(**right, SqlExpr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn insert_and_ddl() {
        let s = parse("INSERT INTO t VALUES (1, 'x', 2.5), (2, 'y', -1.0)").unwrap();
        let Statement::Insert { rows, .. } = s else {
            panic!("expected insert")
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][2], Literal::Float(-1.0));

        let s = parse("CREATE TABLE t (id INT, name VARCHAR(80), price FLOAT)").unwrap();
        let Statement::CreateTable { columns, .. } = s else {
            panic!("expected create table")
        };
        assert_eq!(columns.len(), 3);
        assert_eq!(columns[1].1, DataType::Text);

        let s = parse("CREATE INDEX ix ON t (name)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { .. }));
    }

    #[test]
    fn unsupported_junk_is_rejected() {
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t extra garbage ;").is_err());
    }

    #[test]
    fn paper_figure14_qgram_sql_parses() {
        // The full q-gram filter query from the paper (Figure 14),
        // adapted to the engine's function names.
        let sql = "
            SELECT N.ID, N.PName
            FROM Names N, AuxNames AN, Query Q, AuxQuery AQ
            WHERE N.ID = AN.ID
              AND Q.ID = AQ.ID
              AND AN.Qgram = AQ.Qgram
              AND ABS(LEN(N.PName) - LEN(Q.Str)) <= 0.25 * LEN(Q.Str)
              AND ABS(AN.Pos - AQ.Pos) <= 0.25 * LEN(Q.Str)
            GROUP BY N.ID, N.PName
            HAVING COUNT(*) >= LEN(N.PName) - 1 - (0.25 * LEN(N.PName) - 1) * 3
               AND LEXEQUAL(N.PName, MIN(Q.Str), 0.25)";
        let s = parse(sql).unwrap();
        let Statement::Select(sel) = s else {
            panic!("expected select")
        };
        assert_eq!(sel.from.len(), 4);
        assert!(sel.having.is_some());
    }
}
