//! SQL tokenizer.

use crate::error::DbError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (upper-cased; SQL identifiers are
    /// case-insensitive in this engine).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// A punctuation/operator symbol: ( ) , . * = <> != < <= > >= + - / || { }
    Sym(&'static str),
}

impl Token {
    /// Is this the given keyword?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w == kw)
    }
}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, DbError> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && chars.get(i + 1) == Some(&'-') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            out.push(Token::Word(word.to_uppercase()));
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            let mut is_float = false;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            if i < chars.len()
                && chars[i] == '.'
                && chars
                    .get(i + 1)
                    .is_some_and(|d| d.is_ascii_digit() || !d.is_alphabetic())
            {
                is_float = true;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            if is_float || text.contains('.') {
                let v = text
                    .parse::<f64>()
                    .map_err(|e| DbError::Parse(format!("bad float {text:?}: {e}")))?;
                out.push(Token::Float(v));
            } else {
                let v = text
                    .parse::<i64>()
                    .map_err(|e| DbError::Parse(format!("bad int {text:?}: {e}")))?;
                out.push(Token::Int(v));
            }
            continue;
        }
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                match chars.get(i) {
                    Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some('\'') => {
                        i += 1;
                        break;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                    }
                    None => return Err(DbError::Parse("unterminated string literal".into())),
                }
            }
            out.push(Token::Str(s));
            continue;
        }
        let two: Option<&'static str> = match (c, chars.get(i + 1)) {
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('<', Some('>')) => Some("<>"),
            ('!', Some('=')) => Some("!="),
            ('|', Some('|')) => Some("||"),
            _ => None,
        };
        if let Some(sym) = two {
            out.push(Token::Sym(sym));
            i += 2;
            continue;
        }
        let one: &'static str = match c {
            '(' => "(",
            ')' => ")",
            '{' => "{",
            '}' => "}",
            ',' => ",",
            '.' => ".",
            '*' => "*",
            '=' => "=",
            '<' => "<",
            '>' => ">",
            '+' => "+",
            '-' => "-",
            '/' => "/",
            other => {
                return Err(DbError::Parse(format!("unexpected character {other:?}")));
            }
        };
        out.push(Token::Sym(one));
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_uppercased() {
        let toks = lex("select Author from Books").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("AUTHOR".into()),
                Token::Word("FROM".into()),
                Token::Word("BOOKS".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let toks = lex("42 0.25 'Nehru' 'O''Brien'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(0.25),
                Token::Str("Nehru".into()),
                Token::Str("O'Brien".into()),
            ]
        );
    }

    #[test]
    fn unicode_string_literals() {
        let toks = lex("'नेहरु'").unwrap();
        assert_eq!(toks, vec![Token::Str("नेहरु".into())]);
    }

    #[test]
    fn operators() {
        let toks = lex("a <= b <> c != d || e").unwrap();
        assert!(toks.contains(&Token::Sym("<=")));
        assert!(toks.contains(&Token::Sym("<>")));
        assert!(toks.contains(&Token::Sym("!=")));
        assert!(toks.contains(&Token::Sym("||")));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("select -- the projection\n x").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn qualified_column() {
        let toks = lex("N.PName").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("N".into()),
                Token::Sym("."),
                Token::Word("PNAME".into()),
            ]
        );
    }
}
