//! SQL abstract syntax tree.

use crate::value::DataType;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT … FROM … [WHERE …] [GROUP BY …] [HAVING …] [ORDER BY …] [LIMIT n]`
    Select(Select),
    /// `EXPLAIN SELECT …` — returns the plan description as one row.
    Explain(Select),
    /// `INSERT INTO table VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Literal>>,
    },
    /// `DELETE FROM table [WHERE expr]`
    Delete {
        /// Target table.
        table: String,
        /// Row predicate (all rows when absent).
        where_clause: Option<SqlExpr>,
    },
    /// `UPDATE table SET col = expr, … [WHERE expr]`
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        set: Vec<(String, SqlExpr)>,
        /// Row predicate (all rows when absent).
        where_clause: Option<SqlExpr>,
    },
    /// `CREATE TABLE name (col ty, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
    },
    /// `CREATE INDEX name ON table (column)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
}

/// The SELECT statement body.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// SELECT DISTINCT: deduplicate output rows.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM relations: (table, alias).
    pub from: Vec<(String, String)>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY column references.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate (may contain aggregates).
    pub having: Option<SqlExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderBy>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with optional alias.
    Expr {
        /// The projected expression.
        expr: SqlExpr,
        /// Output column name, if given with AS.
        alias: Option<String>,
    },
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort expression (usually a column reference).
    pub expr: SqlExpr,
    /// Ascending (default) or descending.
    pub asc: bool,
}

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// TRUE / FALSE.
    Bool(bool),
    /// NULL.
    Null,
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `||` string concatenation.
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// COUNT(*) or COUNT(expr).
    Count,
    /// SUM(expr).
    Sum,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
    /// AVG(expr).
    Avg,
}

/// SQL expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// A literal constant.
    Literal(Literal),
    /// A column reference: optional qualifier + name.
    Column {
        /// Table alias qualifier (`N` in `N.PName`).
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<SqlExpr>,
    },
    /// Scalar function call (builtin or UDF).
    Call {
        /// Function name, upper-cased.
        name: String,
        /// Arguments.
        args: Vec<SqlExpr>,
    },
    /// Aggregate call. `arg` is `None` for `COUNT(*)`.
    AggregateCall {
        /// Which aggregate.
        agg: Aggregate,
        /// Aggregated expression, if any.
        arg: Option<Box<SqlExpr>>,
    },
    /// `expr [NOT] IN (lit, …)`.
    InList {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// The candidate list.
        list: Vec<SqlExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high` (inclusive).
    Between {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// Lower bound.
        low: Box<SqlExpr>,
        /// Upper bound.
        high: Box<SqlExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` with `%` and `_` wildcards.
    Like {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// The pattern (a string expression).
        pattern: Box<SqlExpr>,
        /// Negated form.
        negated: bool,
    },
    /// The LexEQUAL syntax extension (paper Figure 3):
    /// `left LEXEQUAL right THRESHOLD t [INLANGUAGES {…} | INLANGUAGES *]`.
    LexEqual {
        /// Left operand (column or string).
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
        /// Match threshold (fraction of the smaller phoneme string).
        threshold: Box<SqlExpr>,
        /// Target language names; `None` means `*` (all languages).
        languages: Option<Vec<String>>,
    },
}
