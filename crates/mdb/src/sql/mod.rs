//! SQL subset: lexer, AST, parser.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! stmt      := select | insert | create_table | create_index
//! select    := SELECT item (, item)* FROM rel (, rel)*
//!              [WHERE expr] [GROUP BY colref (, colref)*] [HAVING expr]
//!              [ORDER BY colref [ASC|DESC]] [LIMIT int]
//! item      := expr [[AS] ident] | *
//! rel       := ident [ident]                      -- table [alias]
//! insert    := INSERT INTO ident VALUES ( lit (, lit)* ) (, ( ... ))*
//! create_table := CREATE TABLE ident ( col type (, col type)* )
//! create_index := CREATE INDEX ident ON ident ( col )
//! expr      := OR-chains of AND-chains of comparisons over arithmetic,
//!              function calls, aggregates (COUNT/SUM/MIN/MAX/AVG),
//!              and the LEXEQUAL extension:
//!                 operand LEXEQUAL operand THRESHOLD number
//!                         [INLANGUAGES { ident (, ident)* } | INLANGUAGES *]
//! ```
//!
//! The `LEXEQUAL … THRESHOLD … INLANGUAGES …` form is this engine's single
//! syntax extension, mirroring the paper's Figure 3. It lowers to a call of
//! the registered scalar UDF `LEXEQUAL(left, right, threshold, languages)`
//! — the engine itself knows nothing about phonetics.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Aggregate, BinOp, Literal, OrderBy, SelectItem, SqlExpr, Statement, UnOp};
pub use parser::parse;
