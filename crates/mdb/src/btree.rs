//! A B-tree index with duplicate keys, range scans and access statistics.
//!
//! The paper's phonetic-index experiment (§5.3) builds "a standard database
//! B-Tree index … on the grouped phoneme string identifier attribute, thus
//! creating a compact index structure using only integer datatype", and
//! contrasts on-disk B-tree behaviour with the in-memory structures of
//! Zobel & Dart. This module implements a page-oriented B-tree: fixed
//! fan-out nodes allocated in an arena (the in-memory stand-in for pages),
//! leaf chaining for range scans, and a node-visit counter standing in for
//! page reads — the statistic the benchmark harness reports.

use crate::row::RowId;
use crate::value::Value;
use std::cell::Cell;

/// Maximum keys per node (fan-out − 1). 64 keys ≈ a few hundred bytes of
/// integer keys per node, a plausible page payload at this scale.
const MAX_KEYS: usize = 64;

#[derive(Debug)]
enum Node {
    Internal {
        /// Separator keys; `children.len() == keys.len() + 1`.
        keys: Vec<Value>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<Value>,
        /// Row-id postings per key (duplicates fold into one posting list).
        postings: Vec<Vec<RowId>>,
        next: Option<usize>,
    },
}

/// A B-tree index mapping [`Value`] keys to row-id posting lists.
#[derive(Debug)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    node_visits: Cell<u64>,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        BTreeIndex {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            node_visits: Cell::new(0),
        }
    }

    /// Number of (key, row-id) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total node visits since construction or the last
    /// [`reset_stats`](Self::reset_stats) — the stand-in for page reads.
    pub fn node_visits(&self) -> u64 {
        self.node_visits.get()
    }

    /// Zero the node-visit counter.
    pub fn reset_stats(&self) {
        self.node_visits.set(0);
    }

    fn visit(&self, _node: usize) {
        self.node_visits.set(self.node_visits.get() + 1);
    }

    /// Insert a (key, row-id) pair. Duplicate keys accumulate row ids.
    pub fn insert(&mut self, key: Value, rid: RowId) {
        self.len += 1;
        if let Some((sep, right)) = self.insert_rec(self.root, key, rid) {
            // Root split: grow a new root.
            let old_root = self.root;
            self.nodes.push(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
            self.root = self.nodes.len() - 1;
        }
    }

    /// Recursive insert; returns `Some((separator, new_right_node))` if the
    /// child split.
    fn insert_rec(&mut self, node: usize, key: Value, rid: RowId) -> Option<(Value, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, postings, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    postings[i].push(rid);
                    None
                }
                Err(i) => {
                    keys.insert(i, key);
                    postings.insert(i, vec![rid]);
                    if keys.len() > MAX_KEYS {
                        Some(self.split_leaf(node))
                    } else {
                        None
                    }
                }
            },
            Node::Internal { keys, children } => {
                let i = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let child = children[i];
                let split = self.insert_rec(child, key, rid);
                if let Some((sep, right)) = split {
                    let Node::Internal { keys, children } = &mut self.nodes[node] else {
                        unreachable!("node changed kind");
                    };
                    let pos = match keys.binary_search(&sep) {
                        Ok(p) | Err(p) => p,
                    };
                    keys.insert(pos, sep);
                    children.insert(pos + 1, right);
                    if keys.len() > MAX_KEYS {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> (Value, usize) {
        let new_index = self.nodes.len();
        let Node::Leaf {
            keys,
            postings,
            next,
        } = &mut self.nodes[node]
        else {
            unreachable!("split_leaf on internal node");
        };
        let mid = keys.len() / 2;
        let right_keys: Vec<Value> = keys.drain(mid..).collect();
        let right_postings: Vec<Vec<RowId>> = postings.drain(mid..).collect();
        let sep = right_keys[0].clone();
        let right_next = *next;
        *next = Some(new_index);
        self.nodes.push(Node::Leaf {
            keys: right_keys,
            postings: right_postings,
            next: right_next,
        });
        (sep, new_index)
    }

    fn split_internal(&mut self, node: usize) -> (Value, usize) {
        let new_index = self.nodes.len();
        let Node::Internal { keys, children } = &mut self.nodes[node] else {
            unreachable!("split_internal on leaf");
        };
        let mid = keys.len() / 2;
        let sep = keys[mid].clone();
        let right_keys: Vec<Value> = keys.drain(mid + 1..).collect();
        keys.pop(); // remove separator from left
        let right_children: Vec<usize> = children.drain(mid + 1..).collect();
        self.nodes.push(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, new_index)
    }

    /// Row ids whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        let mut node = self.root;
        loop {
            self.visit(node);
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let i = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = children[i];
                }
                Node::Leaf { keys, postings, .. } => {
                    return match keys.binary_search(key) {
                        Ok(i) => postings[i].clone(),
                        Err(_) => Vec::new(),
                    };
                }
            }
        }
    }

    /// All (key, row-id) pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<(Value, RowId)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        // Descend to the leaf containing lo.
        let mut node = self.root;
        loop {
            self.visit(node);
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let i = match keys.binary_search(lo) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = children[i];
                }
                Node::Leaf { .. } => break,
            }
        }
        // Walk the leaf chain.
        let mut leaf = Some(node);
        let mut first = true;
        while let Some(l) = leaf {
            if !first {
                self.visit(l);
            }
            first = false;
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &self.nodes[l]
            else {
                unreachable!("leaf chain contains internal node");
            };
            for (k, posting) in keys.iter().zip(postings) {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    for &rid in posting {
                        out.push((k.clone(), rid));
                    }
                }
            }
            leaf = *next;
        }
        out
    }

    /// Range scan with optional open ends and per-end inclusivity.
    /// `lo = None` starts at the smallest key; `hi = None` runs to the
    /// largest. Results come back in key order.
    pub fn range_bounds(
        &self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Vec<(Value, RowId)> {
        let mut out = Vec::new();
        // Descend toward the lower bound (leftmost leaf when open).
        let mut node = self.root;
        loop {
            self.visit(node);
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let i = match lo {
                        Some((lo_key, _)) => match keys.binary_search(lo_key) {
                            Ok(i) => i + 1,
                            Err(i) => i,
                        },
                        None => 0,
                    };
                    node = children[i];
                }
                Node::Leaf { .. } => break,
            }
        }
        let mut leaf = Some(node);
        let mut first = true;
        while let Some(l) = leaf {
            if !first {
                self.visit(l);
            }
            first = false;
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &self.nodes[l]
            else {
                unreachable!("leaf chain contains internal node");
            };
            for (k, posting) in keys.iter().zip(postings) {
                if let Some((hi_key, inclusive)) = hi {
                    if k > hi_key || (!inclusive && k == hi_key) {
                        return out;
                    }
                }
                if let Some((lo_key, inclusive)) = lo {
                    if k < lo_key || (!inclusive && k == lo_key) {
                        continue;
                    }
                }
                for &rid in posting {
                    out.push((k.clone(), rid));
                }
            }
            leaf = *next;
        }
        out
    }

    /// Number of distinct keys (walks the leaf chain; O(n)).
    pub fn distinct_keys(&self) -> usize {
        let mut count = 0;
        let mut node = self.root;
        // find leftmost leaf
        while let Node::Internal { children, .. } = &self.nodes[node] {
            node = children[0];
        }
        let mut leaf = Some(node);
        while let Some(l) = leaf {
            let Node::Leaf { keys, next, .. } = &self.nodes[l] else {
                unreachable!("leaf chain contains internal node");
            };
            count += keys.len();
            leaf = *next;
        }
        count
    }

    /// Tree height (1 = root is a leaf). For the bench reports.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { children, .. } => {
                    h += 1;
                    node = children[0];
                }
                Node::Leaf { .. } => return h,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup_small() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Int(5), 50);
        t.insert(Value::Int(3), 30);
        t.insert(Value::Int(7), 70);
        assert_eq!(t.lookup(&Value::Int(3)), vec![30]);
        assert_eq!(t.lookup(&Value::Int(5)), vec![50]);
        assert!(t.lookup(&Value::Int(4)).is_empty());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Int(1), 10);
        t.insert(Value::Int(1), 11);
        t.insert(Value::Int(1), 12);
        let mut hits = t.lookup(&Value::Int(1));
        hits.sort_unstable();
        assert_eq!(hits, vec![10, 11, 12]);
    }

    #[test]
    fn many_inserts_force_splits() {
        let mut t = BTreeIndex::new();
        let n = 10_000i64;
        for i in 0..n {
            // insert in a scrambled order
            let k = (i * 7919) % n;
            t.insert(Value::Int(k), k as RowId);
        }
        assert!(t.height() > 1, "tree should have split");
        for k in [0i64, 1, 499, 5000, n - 1] {
            assert_eq!(t.lookup(&Value::Int(k)), vec![k as RowId], "key {k}");
        }
        assert_eq!(t.distinct_keys(), n as usize);
    }

    #[test]
    fn range_scan_in_order() {
        let mut t = BTreeIndex::new();
        for i in 0..1000i64 {
            t.insert(Value::Int(i), i as RowId);
        }
        let out = t.range(&Value::Int(100), &Value::Int(110));
        let keys: Vec<i64> = out.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, (100..=110).collect::<Vec<_>>());
        // empty range
        assert!(t.range(&Value::Int(5), &Value::Int(4)).is_empty());
    }

    #[test]
    fn string_keys_work() {
        let mut t = BTreeIndex::new();
        for (i, s) in ["neru", "nero", "nehru", "gandhi"].iter().enumerate() {
            t.insert(Value::from(*s), i);
        }
        assert_eq!(t.lookup(&Value::from("nehru")), vec![2]);
        let range = t.range(&Value::from("n"), &Value::from("nz"));
        assert_eq!(range.len(), 3);
    }

    #[test]
    fn node_visits_are_logarithmic() {
        let mut t = BTreeIndex::new();
        for i in 0..100_000i64 {
            t.insert(Value::Int(i), i as RowId);
        }
        t.reset_stats();
        t.lookup(&Value::Int(54_321));
        let visits = t.node_visits();
        assert!(
            visits as usize <= t.height(),
            "lookup visited {visits} nodes, height {}",
            t.height()
        );
        assert!(visits >= 2);
    }

    #[test]
    fn range_bounds_open_and_exclusive() {
        let mut t = BTreeIndex::new();
        for i in 0..100i64 {
            t.insert(Value::Int(i), i as RowId);
        }
        // Open low end.
        let r = t.range_bounds(None, Some((&Value::Int(3), true)));
        let keys: Vec<i64> = r.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        // Exclusive ends.
        let r = t.range_bounds(Some((&Value::Int(5), false)), Some((&Value::Int(8), false)));
        let keys: Vec<i64> = r.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, vec![6, 7]);
        // Open high end.
        let r = t.range_bounds(Some((&Value::Int(97), true)), None);
        assert_eq!(r.len(), 3);
        // Fully open = everything.
        assert_eq!(t.range_bounds(None, None).len(), 100);
    }

    #[cfg(feature = "property-tests")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn range_bounds_agrees_with_range(
                entries in proptest::collection::vec((0i64..100, 0usize..50), 0..300),
                a in 0i64..100, b in 0i64..100,
            ) {
                let mut t = BTreeIndex::new();
                for (k, v) in &entries {
                    t.insert(Value::Int(*k), *v);
                }
                let (lo, hi) = (a.min(b), a.max(b));
                let inclusive = t.range(&Value::Int(lo), &Value::Int(hi));
                let bounded = t.range_bounds(
                    Some((&Value::Int(lo), true)),
                    Some((&Value::Int(hi), true)),
                );
                prop_assert_eq!(inclusive, bounded);
            }

            #[test]
            fn agrees_with_btreemap(
                entries in proptest::collection::vec((0i64..500, 0usize..1000), 0..2000),
                probes in proptest::collection::vec(0i64..500, 0..50),
                ranges in proptest::collection::vec((0i64..500, 0i64..500), 0..20),
            ) {
                use std::collections::BTreeMap;
                let mut t = BTreeIndex::new();
                let mut m: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
                for (k, v) in &entries {
                    t.insert(Value::Int(*k), *v);
                    m.entry(*k).or_default().push(*v);
                }
                for p in probes {
                    let mut got = t.lookup(&Value::Int(p));
                    got.sort_unstable();
                    let mut want = m.get(&p).cloned().unwrap_or_default();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                for (a, b) in ranges {
                    let (lo, hi) = (a.min(b), a.max(b));
                    let got: Vec<(i64, usize)> = t
                        .range(&Value::Int(lo), &Value::Int(hi))
                        .into_iter()
                        .map(|(k, r)| (k.as_i64().unwrap(), r))
                        .collect();
                    let mut want: Vec<(i64, usize)> = Vec::new();
                    for (k, vs) in m.range(lo..=hi) {
                        for v in vs {
                            want.push((*k, *v));
                        }
                    }
                    // keys must come back in order
                    let keys: Vec<i64> = got.iter().map(|(k, _)| *k).collect();
                    let mut sorted = keys.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(&keys, &sorted);
                    // same multiset
                    let mut g = got.clone();
                    let mut w = want.clone();
                    g.sort_unstable();
                    w.sort_unstable();
                    prop_assert_eq!(g, w);
                }
            }
        }
    }
}
