//! Database snapshots: persist tables to disk and reload them.
//!
//! The paper distinguishes itself from Zobel & Dart by evaluating
//! *persistent on-disk* indexes rather than in-memory structures (§2.3).
//! This module provides the persistence boundary for the mdb engine: a
//! [`Snapshot`] serializes every table (schema + rows) plus index
//! *definitions*; on load, tables are restored and each index is rebuilt
//! by bulk-loading — the standard recovery strategy for secondary
//! indexes. The format is self-describing JSON written and read by the
//! in-tree [`crate::json`] module (UDFs, being code, are re-registered by
//! the application after load).

use crate::db::Database;
use crate::error::DbError;
use crate::json::Json;
use crate::schema::{Column, Schema};
use crate::value::{DataType, Value};
use std::io::{Read, Write};

fn decode_err(what: &str) -> DbError {
    DbError::Parse(format!("snapshot decode: {what}"))
}

/// Encode one cell as a tagged object: `{"t":"Int","v":1}` (`v` omitted
/// for NULL). The tag keeps the format self-describing so a future column
/// type can be added without renumbering.
///
/// Non-finite floats cannot ride on [`Json::Float`] (the writer renders
/// them as `null`, which is lossy — format v1 silently turned `∞` into
/// NaN on reload), so `Float` cells carry explicit string markers for
/// them instead.
fn value_to_json(v: &Value) -> Json {
    let (tag, content) = match v {
        Value::Null => ("Null", None),
        Value::Bool(b) => ("Bool", Some(Json::Bool(*b))),
        Value::Int(i) => ("Int", Some(Json::Int(*i))),
        Value::Float(f) => ("Float", Some(float_to_json(*f))),
        Value::Str(s) => ("Str", Some(Json::Str(s.clone()))),
    };
    let mut fields = vec![("t".to_owned(), Json::Str(tag.to_owned()))];
    if let Some(c) = content {
        fields.push(("v".to_owned(), c));
    }
    Json::Obj(fields)
}

fn float_to_json(f: f64) -> Json {
    if f.is_finite() {
        Json::Float(f)
    } else if f.is_nan() {
        Json::Str("nan".to_owned())
    } else if f > 0.0 {
        Json::Str("inf".to_owned())
    } else {
        Json::Str("-inf".to_owned())
    }
}

fn float_from_json(j: &Json) -> Option<f64> {
    match j {
        Json::Str(s) => match s.as_str() {
            "nan" => Some(f64::NAN),
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            _ => None,
        },
        // A bare `null` is NOT accepted: it is what the lossy v1 encoding
        // produced for every non-finite value, and decoding it would mean
        // conjuring a NaN the writer never stored.
        Json::Null => None,
        other => other.as_f64(),
    }
}

fn value_from_json(j: &Json) -> Result<Value, DbError> {
    let tag = j
        .get("t")
        .and_then(Json::as_str)
        .ok_or_else(|| decode_err("cell missing tag"))?;
    let v = j.get("v");
    match (tag, v) {
        ("Null", _) => Some(Value::Null),
        ("Bool", Some(c)) => c.as_bool().map(Value::Bool),
        ("Int", Some(c)) => c.as_i64().map(Value::Int),
        ("Float", Some(c)) => float_from_json(c).map(Value::Float),
        ("Str", Some(c)) => c.as_str().map(|s| Value::Str(s.to_owned())),
        _ => None,
    }
    .ok_or_else(|| decode_err("cell content does not match its tag"))
}

fn type_to_json(t: DataType) -> Json {
    Json::Str(
        match t {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Text => "Text",
            DataType::Bool => "Bool",
        }
        .to_owned(),
    )
}

fn type_from_json(j: &Json) -> Result<DataType, DbError> {
    match j.as_str() {
        Some("Int") => Ok(DataType::Int),
        Some("Float") => Ok(DataType::Float),
        Some("Text") => Ok(DataType::Text),
        Some("Bool") => Ok(DataType::Bool),
        _ => Err(decode_err("unknown column type")),
    }
}

#[derive(Debug)]
struct SnapTable {
    name: String,
    columns: Vec<(String, DataType)>,
    rows: Vec<Vec<Value>>,
}

#[derive(Debug)]
struct SnapIndex {
    name: String,
    table: String,
    column: String,
}

/// A serializable image of a database's data and index definitions.
#[derive(Debug)]
pub struct Snapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    tables: Vec<SnapTable>,
    indexes: Vec<SnapIndex>,
}

/// Current snapshot format version.
///
/// v2 changed the `Float` cell encoding: non-finite values are written as
/// explicit `"inf"` / `"-inf"` / `"nan"` markers. v1 rendered them through
/// [`Json::Float`], which emits `null` for anything non-finite, so a v1
/// reload silently replaced `±∞` with NaN; v2 readers reject a bare
/// Float-`null` rather than guess.
pub const SNAPSHOT_VERSION: u32 = 2;

impl Snapshot {
    /// Capture a database's tables and index definitions.
    pub fn capture(db: &Database) -> Result<Snapshot, DbError> {
        let catalog = db.catalog();
        let mut tables = Vec::new();
        let mut names: Vec<&str> = catalog.table_names().collect();
        names.sort_unstable(); // deterministic output
        for name in names {
            let t = catalog.table(name)?;
            tables.push(SnapTable {
                name: t.name().to_owned(),
                columns: t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| (c.name.clone(), c.ty))
                    .collect(),
                rows: t.scan().map(|(_, row)| row.to_vec()).collect(),
            });
        }
        let mut indexes: Vec<SnapIndex> = catalog
            .index_definitions()
            .map(|(name, table, column)| SnapIndex {
                name: name.to_owned(),
                table: table.to_owned(),
                column: column.to_owned(),
            })
            .collect();
        indexes.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Snapshot {
            version: SNAPSHOT_VERSION,
            tables,
            indexes,
        })
    }

    /// Restore into a fresh database (indexes are rebuilt by bulk load).
    /// UDFs must be re-registered by the caller.
    pub fn restore(&self) -> Result<Database, DbError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(DbError::Unsupported(format!(
                "snapshot version {} (expected {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        let mut db = Database::new();
        for t in &self.tables {
            let schema = Schema::new(
                t.columns
                    .iter()
                    .map(|(n, ty)| Column::new(n, *ty))
                    .collect(),
            )?;
            db.catalog_mut().create_table(&t.name, schema)?;
            for row in &t.rows {
                db.insert(&t.name, row.clone())?;
            }
        }
        for ix in &self.indexes {
            db.catalog_mut()
                .create_index(&ix.name, &ix.table, &ix.column)?;
        }
        Ok(db)
    }

    /// The JSON document form of this snapshot.
    fn to_json(&self) -> Json {
        let tables = self
            .tables
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::Str(t.name.clone())),
                    (
                        "columns".to_owned(),
                        Json::Arr(
                            t.columns
                                .iter()
                                .map(|(n, ty)| {
                                    Json::Arr(vec![Json::Str(n.clone()), type_to_json(*ty)])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "rows".to_owned(),
                        Json::Arr(
                            t.rows
                                .iter()
                                .map(|row| Json::Arr(row.iter().map(value_to_json).collect()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let indexes = self
            .indexes
            .iter()
            .map(|ix| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::Str(ix.name.clone())),
                    ("table".to_owned(), Json::Str(ix.table.clone())),
                    ("column".to_owned(), Json::Str(ix.column.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".to_owned(), Json::Int(self.version as i64)),
            ("tables".to_owned(), Json::Arr(tables)),
            ("indexes".to_owned(), Json::Arr(indexes)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Snapshot, DbError> {
        let version = doc
            .get("version")
            .and_then(Json::as_i64)
            .ok_or_else(|| decode_err("missing version"))? as u32;
        let mut tables = Vec::new();
        for t in doc
            .get("tables")
            .and_then(Json::as_arr)
            .ok_or_else(|| decode_err("missing tables"))?
        {
            let name = t
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| decode_err("table missing name"))?
                .to_owned();
            let mut columns = Vec::new();
            for c in t
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or_else(|| decode_err("table missing columns"))?
            {
                let pair = c.as_arr().ok_or_else(|| decode_err("malformed column"))?;
                let (n, ty) = match pair {
                    [n, ty] => (n, ty),
                    _ => return Err(decode_err("malformed column")),
                };
                columns.push((
                    n.as_str()
                        .ok_or_else(|| decode_err("column name not a string"))?
                        .to_owned(),
                    type_from_json(ty)?,
                ));
            }
            let mut rows = Vec::new();
            for r in t
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| decode_err("table missing rows"))?
            {
                let cells = r.as_arr().ok_or_else(|| decode_err("malformed row"))?;
                rows.push(
                    cells
                        .iter()
                        .map(value_from_json)
                        .collect::<Result<_, _>>()?,
                );
            }
            tables.push(SnapTable {
                name,
                columns,
                rows,
            });
        }
        let mut indexes = Vec::new();
        for ix in doc
            .get("indexes")
            .and_then(Json::as_arr)
            .ok_or_else(|| decode_err("missing indexes"))?
        {
            let field = |k: &str| -> Result<String, DbError> {
                ix.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| decode_err("malformed index definition"))
            };
            indexes.push(SnapIndex {
                name: field("name")?,
                table: field("table")?,
                column: field("column")?,
            });
        }
        Ok(Snapshot {
            version,
            tables,
            indexes,
        })
    }

    /// Serialize to a writer as JSON.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), DbError> {
        w.write_all(self.to_json().render().as_bytes())
            .map_err(|e| DbError::Unsupported(format!("snapshot encode: {e}")))
    }

    /// Deserialize from a reader.
    pub fn read_from(mut r: impl Read) -> Result<Snapshot, DbError> {
        let mut text = String::new();
        r.read_to_string(&mut text)
            .map_err(|e| DbError::Parse(format!("snapshot decode: {e}")))?;
        let doc = Json::parse(&text).map_err(|e| decode_err(&e.to_string()))?;
        Snapshot::from_json(&doc)
    }
}

impl Database {
    /// Persist this database's tables and index definitions to a file.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        let f = std::fs::File::create(path)
            .map_err(|e| DbError::Unsupported(format!("snapshot create: {e}")))?;
        Snapshot::capture(self)?.write_to(std::io::BufWriter::new(f))
    }

    /// Load a database previously saved with
    /// [`save_to_file`](Self::save_to_file). UDFs must be re-registered.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Database, DbError> {
        let f = std::fs::File::open(path)
            .map_err(|e| DbError::Unsupported(format!("snapshot open: {e}")))?;
        Snapshot::read_from(std::io::BufReader::new(f))?.restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE names (id INT, name TEXT, score FLOAT, ok BOOL)")
            .expect("create");
        db.execute("INSERT INTO names VALUES (1, 'नेहरु', 0.5, TRUE), (2, 'Nehru', NULL, FALSE)")
            .expect("insert");
        db.execute("CREATE INDEX ix_id ON names (id)")
            .expect("index");
        db
    }

    #[test]
    fn round_trip_preserves_rows_and_indexes() {
        let db = demo_db();
        let snap = Snapshot::capture(&db).expect("capture");
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        let snap2 = Snapshot::read_from(buf.as_slice()).expect("decode");
        let mut restored = snap2.restore().expect("restore");

        let rs = restored
            .execute("SELECT name FROM names WHERE id = 1")
            .expect("query");
        assert_eq!(rs.rows, vec![vec![Value::from("नेहरु")]]);
        // The index definition came back and the planner uses it.
        assert!(restored
            .explain("SELECT name FROM names WHERE id = 1")
            .expect("explain")
            .contains("IndexScan"));
        // NULL and BOOL survive.
        let rs = restored
            .execute("SELECT score, ok FROM names WHERE id = 2")
            .expect("query");
        assert_eq!(rs.rows, vec![vec![Value::Null, Value::Bool(false)]]);
    }

    #[test]
    fn file_round_trip() {
        let db = demo_db();
        let path = std::env::temp_dir().join("lexequal_mdb_snapshot_test.json");
        db.save_to_file(&path).expect("save");
        let mut restored = Database::load_from_file(&path).expect("load");
        let rs = restored.execute("SELECT COUNT(*) FROM names").expect("q");
        assert_eq!(rs.rows[0][0], Value::Int(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let db = demo_db();
        let mut snap = Snapshot::capture(&db).expect("capture");
        snap.version = 999;
        assert!(snap.restore().is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let db = demo_db();
        let mut a = Vec::new();
        let mut b = Vec::new();
        Snapshot::capture(&db).unwrap().write_to(&mut a).unwrap();
        Snapshot::capture(&db).unwrap().write_to(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn non_finite_floats_round_trip_bit_exact() {
        let mut db = Database::new();
        db.execute("CREATE TABLE f (id INT, x FLOAT)")
            .expect("create");
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
        ];
        for (i, &x) in specials.iter().enumerate() {
            db.insert("f", vec![Value::Int(i as i64), Value::Float(x)])
                .expect("insert");
        }
        let mut buf = Vec::new();
        Snapshot::capture(&db).unwrap().write_to(&mut buf).unwrap();
        let mut restored = Snapshot::read_from(buf.as_slice())
            .unwrap()
            .restore()
            .unwrap();
        let rs = restored.execute("SELECT x FROM f").expect("query");
        assert_eq!(rs.rows.len(), specials.len());
        for (row, &expect) in rs.rows.iter().zip(&specials) {
            let Value::Float(got) = row[0] else {
                panic!("not a float: {row:?}");
            };
            // Bit-exact: NaN == NaN would fail, and -0.0 == 0.0 would
            // pass, under float comparison — compare representations.
            assert_eq!(
                got.to_bits(),
                expect.to_bits(),
                "{expect} came back as {got}"
            );
        }
    }

    #[test]
    fn lossy_v1_float_null_is_rejected_not_nan() {
        // What the v1 encoder produced for any non-finite float. Decoding
        // it must be an error, not a silent NaN.
        let src = r#"{"version":2,"tables":[{"name":"t","columns":[["x","Float"]],"rows":[[{"t":"Float","v":null}]]}],"indexes":[]}"#;
        let err = Snapshot::read_from(src.as_bytes());
        assert!(err.is_err(), "Float-null must not decode");
        // Unknown markers are rejected too.
        let src = r#"{"version":2,"tables":[{"name":"t","columns":[["x","Float"]],"rows":[[{"t":"Float","v":"fast"}]]}],"indexes":[]}"#;
        assert!(Snapshot::read_from(src.as_bytes()).is_err());
    }

    #[test]
    fn corrupt_documents_are_rejected_not_panicked() {
        for src in [
            "",
            "{}",
            r#"{"version":1}"#,
            r#"{"version":1,"tables":[{"name":"t"}],"indexes":[]}"#,
            r#"{"version":1,"tables":[],"indexes":[{"name":"x"}]}"#,
            r#"{"version":1,"tables":[{"name":"t","columns":[["a","Nope"]],"rows":[]}],"indexes":[]}"#,
        ] {
            assert!(
                Snapshot::read_from(src.as_bytes()).is_err(),
                "{src:?} should be rejected"
            );
        }
    }
}
