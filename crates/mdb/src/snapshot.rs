//! Database snapshots: persist tables to disk and reload them.
//!
//! The paper distinguishes itself from Zobel & Dart by evaluating
//! *persistent on-disk* indexes rather than in-memory structures (§2.3).
//! This module provides the persistence boundary for the mdb engine: a
//! [`Snapshot`] serializes every table (schema + rows) plus index
//! *definitions*; on load, tables are restored and each index is rebuilt
//! by bulk-loading — the standard recovery strategy for secondary
//! indexes. The format is self-describing JSON via serde (UDFs, being
//! code, are re-registered by the application after load).


use crate::db::Database;
use crate::error::DbError;
use crate::schema::{Column, Schema};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Serializable value mirror (Value itself keeps serde out of the hot
/// path types).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "t", content = "v")]
enum SnapValue {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl From<&Value> for SnapValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => SnapValue::Null,
            Value::Bool(b) => SnapValue::Bool(*b),
            Value::Int(i) => SnapValue::Int(*i),
            Value::Float(f) => SnapValue::Float(*f),
            Value::Str(s) => SnapValue::Str(s.clone()),
        }
    }
}

impl From<SnapValue> for Value {
    fn from(v: SnapValue) -> Self {
        match v {
            SnapValue::Null => Value::Null,
            SnapValue::Bool(b) => Value::Bool(b),
            SnapValue::Int(i) => Value::Int(i),
            SnapValue::Float(f) => Value::Float(f),
            SnapValue::Str(s) => Value::Str(s),
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
enum SnapType {
    Int,
    Float,
    Text,
    Bool,
}

impl From<DataType> for SnapType {
    fn from(t: DataType) -> Self {
        match t {
            DataType::Int => SnapType::Int,
            DataType::Float => SnapType::Float,
            DataType::Text => SnapType::Text,
            DataType::Bool => SnapType::Bool,
        }
    }
}

impl From<SnapType> for DataType {
    fn from(t: SnapType) -> Self {
        match t {
            SnapType::Int => DataType::Int,
            SnapType::Float => DataType::Float,
            SnapType::Text => DataType::Text,
            SnapType::Bool => DataType::Bool,
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct SnapTable {
    name: String,
    columns: Vec<(String, SnapType)>,
    rows: Vec<Vec<SnapValue>>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SnapIndex {
    name: String,
    table: String,
    column: String,
}

/// A serializable image of a database's data and index definitions.
#[derive(Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    tables: Vec<SnapTable>,
    indexes: Vec<SnapIndex>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl Snapshot {
    /// Capture a database's tables and index definitions.
    pub fn capture(db: &Database) -> Result<Snapshot, DbError> {
        let catalog = db.catalog();
        let mut tables = Vec::new();
        let mut names: Vec<&str> = catalog.table_names().collect();
        names.sort_unstable(); // deterministic output
        for name in names {
            let t = catalog.table(name)?;
            tables.push(SnapTable {
                name: t.name().to_owned(),
                columns: t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| (c.name.clone(), c.ty.into()))
                    .collect(),
                rows: t
                    .scan()
                    .map(|(_, row)| row.iter().map(SnapValue::from).collect())
                    .collect(),
            });
        }
        let mut indexes: Vec<SnapIndex> = catalog
            .index_definitions()
            .map(|(name, table, column)| SnapIndex {
                name: name.to_owned(),
                table: table.to_owned(),
                column: column.to_owned(),
            })
            .collect();
        indexes.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Snapshot {
            version: SNAPSHOT_VERSION,
            tables,
            indexes,
        })
    }

    /// Restore into a fresh database (indexes are rebuilt by bulk load).
    /// UDFs must be re-registered by the caller.
    pub fn restore(&self) -> Result<Database, DbError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(DbError::Unsupported(format!(
                "snapshot version {} (expected {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        let mut db = Database::new();
        for t in &self.tables {
            let schema = Schema::new(
                t.columns
                    .iter()
                    .map(|(n, ty)| Column::new(n, (*ty).into()))
                    .collect(),
            )?;
            db.catalog_mut().create_table(&t.name, schema)?;
            for row in &t.rows {
                db.insert(&t.name, row.iter().cloned().map(Value::from).collect())?;
            }
        }
        for ix in &self.indexes {
            db.catalog_mut()
                .create_index(&ix.name, &ix.table, &ix.column)?;
        }
        Ok(db)
    }

    /// Serialize to a writer as JSON.
    pub fn write_to(&self, w: impl Write) -> Result<(), DbError> {
        serde_json::to_writer(w, self)
            .map_err(|e| DbError::Unsupported(format!("snapshot encode: {e}")))
    }

    /// Deserialize from a reader.
    pub fn read_from(r: impl Read) -> Result<Snapshot, DbError> {
        serde_json::from_reader(r)
            .map_err(|e| DbError::Parse(format!("snapshot decode: {e}")))
    }
}

impl Database {
    /// Persist this database's tables and index definitions to a file.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        let f = std::fs::File::create(path)
            .map_err(|e| DbError::Unsupported(format!("snapshot create: {e}")))?;
        Snapshot::capture(self)?.write_to(std::io::BufWriter::new(f))
    }

    /// Load a database previously saved with
    /// [`save_to_file`](Self::save_to_file). UDFs must be re-registered.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Database, DbError> {
        let f = std::fs::File::open(path)
            .map_err(|e| DbError::Unsupported(format!("snapshot open: {e}")))?;
        Snapshot::read_from(std::io::BufReader::new(f))?.restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE names (id INT, name TEXT, score FLOAT, ok BOOL)")
            .expect("create");
        db.execute(
            "INSERT INTO names VALUES (1, 'नेहरु', 0.5, TRUE), (2, 'Nehru', NULL, FALSE)",
        )
        .expect("insert");
        db.execute("CREATE INDEX ix_id ON names (id)").expect("index");
        db
    }

    #[test]
    fn round_trip_preserves_rows_and_indexes() {
        let db = demo_db();
        let snap = Snapshot::capture(&db).expect("capture");
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        let snap2 = Snapshot::read_from(buf.as_slice()).expect("decode");
        let mut restored = snap2.restore().expect("restore");

        let rs = restored
            .execute("SELECT name FROM names WHERE id = 1")
            .expect("query");
        assert_eq!(rs.rows, vec![vec![Value::from("नेहरु")]]);
        // The index definition came back and the planner uses it.
        assert!(restored
            .explain("SELECT name FROM names WHERE id = 1")
            .expect("explain")
            .contains("IndexScan"));
        // NULL and BOOL survive.
        let rs = restored
            .execute("SELECT score, ok FROM names WHERE id = 2")
            .expect("query");
        assert_eq!(rs.rows, vec![vec![Value::Null, Value::Bool(false)]]);
    }

    #[test]
    fn file_round_trip() {
        let db = demo_db();
        let path = std::env::temp_dir().join("lexequal_mdb_snapshot_test.json");
        db.save_to_file(&path).expect("save");
        let mut restored = Database::load_from_file(&path).expect("load");
        let rs = restored.execute("SELECT COUNT(*) FROM names").expect("q");
        assert_eq!(rs.rows[0][0], Value::Int(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let db = demo_db();
        let mut snap = Snapshot::capture(&db).expect("capture");
        snap.version = 999;
        assert!(snap.restore().is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let db = demo_db();
        let mut a = Vec::new();
        let mut b = Vec::new();
        Snapshot::capture(&db).unwrap().write_to(&mut a).unwrap();
        Snapshot::capture(&db).unwrap().write_to(&mut b).unwrap();
        assert_eq!(a, b);
    }
}
