//! Runtime values and data types.

use crate::error::DbError;
use std::cmp::Ordering;
use std::fmt;

/// Column data types of the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`FLOAT`, `REAL`, `DOUBLE`).
    Float,
    /// UTF-8 string (`TEXT`, `VARCHAR`).
    Text,
    /// Boolean (`BOOL`, `BOOLEAN`).
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed runtime value.
///
/// `Value` implements a *total* ordering (needed for B-tree keys and
/// ORDER BY): `Null < Bool < Int/Float < Text`, with Int and Float
/// compared numerically against each other.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// The value's data type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
        }
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int or Float), for arithmetic.
    pub fn as_f64(&self) -> Result<f64, DbError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(DbError::Type(format!("expected number, got {other}"))),
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Result<i64, DbError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) => Ok(*f as i64),
            other => Err(DbError::Type(format!("expected integer, got {other}"))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str, DbError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DbError::Type(format!("expected string, got {other}"))),
        }
    }

    /// Boolean view (NULL is false in WHERE contexts).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Coerce to `ty`, for INSERT validation (Int→Float is allowed).
    pub fn coerce(self, ty: DataType) -> Result<Value, DbError> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Int(_), DataType::Int) => Ok(v),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (v @ Value::Float(_), DataType::Float) => Ok(v),
            (v @ Value::Str(_), DataType::Text) => Ok(v),
            (v @ Value::Bool(_), DataType::Bool) => Ok(v),
            (v, ty) => Err(DbError::SchemaMismatch(format!(
                "cannot store {v} in {ty} column"
            ))),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = [
            Value::from("abc"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(0.5));
        assert_eq!(vals[3], Value::Int(1));
        assert_eq!(vals[4], Value::from("abc"));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_int_float_hash_equal() {
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(3).coerce(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert!(Value::from("x").coerce(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Int(5).truthy());
        assert!(!Value::Int(0).truthy());
    }

    #[test]
    fn display_round_trip_for_humans() {
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
