//! The `Database` facade.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::exec::ExecContext;
pub use crate::exec::ResultSet;
use crate::expr::literal_value;
use crate::row::Row;
use crate::schema::{Column, Schema};
use crate::sql::ast::Statement;
use crate::sql::parser::parse;
use crate::stats::Stats;
use crate::udf::{Udf, UdfRegistry};

/// An in-memory database: catalog + UDFs + statistics, with a SQL
/// entry point and a programmatic API.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    udfs: UdfRegistry,
    stats: Stats,
}

impl Database {
    /// A fresh, empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a scalar UDF (callable from SQL by name).
    pub fn register_udf(&mut self, udf: Udf) {
        self.udfs.register(udf);
    }

    /// The accumulated execution statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The catalog (programmatic access to tables/indexes).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (bulk loads).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Insert a row programmatically (faster than SQL INSERT for bulk
    /// loads; still maintains indexes).
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), DbError> {
        self.catalog.insert_row(table, row)
    }

    /// Insert a batch of rows programmatically, amortizing the table and
    /// index lookups over the whole batch; returns the number of rows
    /// inserted. A bad row aborts the batch before anything is stored.
    pub fn insert_many(&mut self, table: &str, rows: Vec<Row>) -> Result<usize, DbError> {
        self.catalog.insert_rows(table, rows)
    }

    /// Execute one SQL statement. DDL/DML return empty result sets.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        match parse(sql)? {
            Statement::Select(select) => {
                let ctx = ExecContext {
                    catalog: &self.catalog,
                    udfs: &self.udfs,
                    stats: &self.stats,
                };
                ctx.run_select(&select)
            }
            Statement::Explain(select) => {
                let plan = crate::plan::plan_relational(&self.catalog, &select)?;
                Ok(ResultSet {
                    columns: vec!["plan".into()],
                    rows: vec![vec![crate::value::Value::Str(plan.describe())]],
                })
            }
            Statement::Insert { table, rows } => {
                for lits in rows {
                    let row: Row = lits.iter().map(literal_value).collect();
                    self.catalog.insert_row(&table, row)?;
                }
                Ok(ResultSet {
                    columns: vec![],
                    rows: vec![],
                })
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let rids = self.matching_rids(&table, where_clause.as_ref())?;
                let mut n = 0i64;
                for rid in rids {
                    if self.catalog.delete_row(&table, rid)? {
                        n += 1;
                    }
                }
                Ok(ResultSet {
                    columns: vec!["deleted".into()],
                    rows: vec![vec![crate::value::Value::Int(n)]],
                })
            }
            Statement::Update {
                table,
                set,
                where_clause,
            } => {
                let rids = self.matching_rids(&table, where_clause.as_ref())?;
                // Bind assignments against the table schema.
                let t = self.catalog.table(&table)?;
                let schema = crate::expr::BoundSchema {
                    columns: t
                        .schema()
                        .columns()
                        .iter()
                        .map(|c| (table.to_uppercase(), c.name.to_uppercase()))
                        .collect(),
                };
                let mut binder = crate::expr::Binder::new(&schema);
                let mut assignments = Vec::new();
                for (col, e) in &set {
                    let idx = t
                        .schema()
                        .index_of(col)
                        .ok_or_else(|| DbError::NoSuchColumn(col.clone()))?;
                    let bound = binder.bind(e)?;
                    if !binder.aggregates.is_empty() {
                        return Err(DbError::Unsupported("aggregate in UPDATE SET".into()));
                    }
                    assignments.push((idx, bound));
                }
                // Compute new rows first (immutably), then apply.
                let mut updates = Vec::new();
                for rid in rids {
                    let t = self.catalog.table(&table)?;
                    let Some(row) = t.row(rid) else { continue };
                    let mut new_row = row.clone();
                    for (idx, e) in &assignments {
                        let ctx = crate::expr::EvalCtx {
                            row,
                            udfs: &self.udfs,
                            aggs: None,
                            stats: &self.stats,
                        };
                        new_row[*idx] = e.eval(&ctx)?;
                    }
                    updates.push((rid, new_row));
                }
                let n = updates.len() as i64;
                for (rid, new_row) in updates {
                    self.catalog.update_row(&table, rid, new_row)?;
                }
                Ok(ResultSet {
                    columns: vec!["updated".into()],
                    rows: vec![vec![crate::value::Value::Int(n)]],
                })
            }
            Statement::CreateTable { name, columns } => {
                let schema =
                    Schema::new(columns.iter().map(|(n, t)| Column::new(n, *t)).collect())?;
                self.catalog.create_table(&name, schema)?;
                Ok(ResultSet {
                    columns: vec![],
                    rows: vec![],
                })
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                self.catalog.create_index(&name, &table, &column)?;
                Ok(ResultSet {
                    columns: vec![],
                    rows: vec![],
                })
            }
        }
    }

    /// Row ids of a table matching an optional predicate.
    fn matching_rids(
        &self,
        table: &str,
        predicate: Option<&crate::sql::ast::SqlExpr>,
    ) -> Result<Vec<crate::row::RowId>, DbError> {
        let t = self.catalog.table(table)?;
        let schema = crate::expr::BoundSchema {
            columns: t
                .schema()
                .columns()
                .iter()
                .map(|c| (table.to_uppercase(), c.name.to_uppercase()))
                .collect(),
        };
        let bound = match predicate {
            Some(p) => {
                let mut binder = crate::expr::Binder::new(&schema);
                let e = binder.bind(p)?;
                if !binder.aggregates.is_empty() {
                    return Err(DbError::Unsupported("aggregate in DML WHERE".into()));
                }
                Some(e)
            }
            None => None,
        };
        let mut rids = Vec::new();
        for (rid, row) in t.scan() {
            let keep = match &bound {
                Some(e) => {
                    let ctx = crate::expr::EvalCtx {
                        row,
                        udfs: &self.udfs,
                        aggs: None,
                        stats: &self.stats,
                    };
                    e.eval(&ctx)?.truthy()
                }
                None => true,
            };
            if keep {
                rids.push(rid);
            }
        }
        Ok(rids)
    }

    /// EXPLAIN-style plan description for a SELECT (for tests/benches).
    pub fn explain(&self, sql: &str) -> Result<String, DbError> {
        match parse(sql)? {
            Statement::Select(select) => {
                let plan = crate::plan::plan_relational(&self.catalog, &select)?;
                Ok(plan.describe())
            }
            _ => Err(DbError::Unsupported("EXPLAIN only covers SELECT".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn books_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE books (author TEXT, title TEXT, price FLOAT, language TEXT)")
            .unwrap();
        for (a, t, p, l) in [
            ("Descartes", "Les Méditations", 49.0, "French"),
            ("நேரு", "ஆசிய ஜோதி", 250.0, "Tamil"),
            ("Nero", "The Coronation", 99.0, "English"),
            ("Nehru", "Discovery of India", 9.95, "English"),
            ("नेहरु", "भारत एक खोज", 175.0, "Hindi"),
        ] {
            db.execute(&format!(
                "INSERT INTO books VALUES ('{a}', '{t}', {p}, '{l}')"
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn end_to_end_select() {
        let mut db = books_db();
        let rs = db
            .execute("SELECT author, price FROM books WHERE price < 100 ORDER BY price DESC")
            .unwrap();
        assert_eq!(rs.columns, vec!["author", "price"]);
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::from("Nero"));
        assert_eq!(rs.rows[2][0], Value::from("Nehru"));
    }

    #[test]
    fn multilingual_strings_round_trip() {
        let mut db = books_db();
        let rs = db
            .execute("SELECT title FROM books WHERE author = 'नेहरु'")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("भारत एक खोज")]]);
    }

    #[test]
    fn self_join() {
        let mut db = books_db();
        let rs = db
            .execute(
                "SELECT b1.author FROM books b1, books b2 \
                 WHERE b1.author = b2.author AND b1.language <> b2.language",
            )
            .unwrap();
        // No author string repeats across languages in this catalog.
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn group_by_having_count() {
        let mut db = books_db();
        let rs = db
            .execute(
                "SELECT language, COUNT(*) FROM books GROUP BY language \
                 HAVING COUNT(*) >= 2 ORDER BY language",
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("English"), Value::Int(2)]]);
    }

    #[test]
    fn global_aggregates_without_group_by() {
        let mut db = books_db();
        let rs = db
            .execute("SELECT COUNT(*), MIN(price), MAX(price), AVG(price) FROM books")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(5));
        assert_eq!(rs.rows[0][1], Value::Float(9.95));
        assert_eq!(rs.rows[0][2], Value::Float(250.0));
    }

    #[test]
    fn aggregate_on_empty_table() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        let rs = db.execute("SELECT COUNT(*), SUM(x) FROM t").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn index_is_used_and_maintained() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        for i in 0..100 {
            db.insert("t", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        db.execute("CREATE INDEX ix_t_id ON t (id)").unwrap();
        assert!(db
            .explain("SELECT name FROM t WHERE id = 42")
            .unwrap()
            .starts_with("IndexScan"));
        let rs = db.execute("SELECT name FROM t WHERE id = 42").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("n42")]]);
        // Stats recorded an index lookup, not a 100-row scan.
        assert_eq!(db.stats().index_lookups(), 1);
    }

    #[test]
    fn udf_from_sql() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        db.register_udf(Udf::new("square", |args| {
            let v = args[0].as_i64()?;
            Ok(Value::Int(v * v))
        }));
        let rs = db
            .execute("SELECT SQUARE(x) FROM t WHERE SQUARE(x) > 3 ORDER BY x")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(4)], vec![Value::Int(9)]]);
        assert_eq!(db.stats().udf_calls("SQUARE"), 5); // 3 in WHERE + 2 projected
    }

    #[test]
    fn wildcard_projection() {
        let mut db = books_db();
        let rs = db.execute("SELECT * FROM books LIMIT 2").unwrap();
        assert_eq!(rs.columns.len(), 4);
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let mut db = Database::new();
        db.execute("CREATE TABLE l (k INT, a TEXT)").unwrap();
        db.execute("CREATE TABLE r (k INT, b TEXT)").unwrap();
        db.execute("INSERT INTO l VALUES (1,'x'), (2,'y'), (2,'z'), (3,'w')")
            .unwrap();
        db.execute("INSERT INTO r VALUES (2,'p'), (2,'q'), (3,'r'), (4,'s')")
            .unwrap();
        let hash = db
            .execute("SELECT l.a, r.b FROM l, r WHERE l.k = r.k ORDER BY l.a, r.b")
            .unwrap();
        // 2x2 for k=2 plus 1 for k=3.
        assert_eq!(hash.rows.len(), 5);
        // Same result through a nested-loop (non-equi disguise).
        let nl = db
            .execute("SELECT l.a, r.b FROM l, r WHERE l.k <= r.k AND l.k >= r.k ORDER BY l.a, r.b")
            .unwrap();
        assert_eq!(hash.rows, nl.rows);
    }
}

#[cfg(test)]
mod extended_sql_tests {
    use super::*;
    use crate::value::Value;

    fn names_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, name TEXT, price FLOAT)")
            .unwrap();
        for (i, n, p) in [
            (1, "Nehru", 9.95),
            (2, "Nero", 99.0),
            (3, "Neruda", 20.0),
            (4, "Gandhi", 15.0),
            (5, "Tagore", 30.0),
        ] {
            db.execute(&format!("INSERT INTO t VALUES ({i}, '{n}', {p})"))
                .unwrap();
        }
        db
    }

    #[test]
    fn in_list() {
        let mut db = names_db();
        let rs = db
            .execute("SELECT name FROM t WHERE id IN (1, 3, 99) ORDER BY id")
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::from("Nehru")], vec![Value::from("Neruda")]]
        );
        let rs = db
            .execute("SELECT COUNT(*) FROM t WHERE id NOT IN (1, 3)")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn between() {
        let mut db = names_db();
        let rs = db
            .execute("SELECT name FROM t WHERE price BETWEEN 10 AND 30 ORDER BY price")
            .unwrap();
        assert_eq!(rs.rows.len(), 3); // 15, 20, 30 (inclusive)
        let rs = db
            .execute("SELECT COUNT(*) FROM t WHERE price NOT BETWEEN 10 AND 30")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    #[test]
    fn like_patterns() {
        let mut db = names_db();
        let rs = db
            .execute("SELECT name FROM t WHERE name LIKE 'Ne%' ORDER BY name")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        let rs = db
            .execute("SELECT name FROM t WHERE name LIKE 'Ner_'")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("Nero")]]);
        let rs = db
            .execute("SELECT name FROM t WHERE name LIKE '%dhi'")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("Gandhi")]]);
        let rs = db
            .execute("SELECT COUNT(*) FROM t WHERE name NOT LIKE 'Ne%'")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    #[test]
    fn like_on_multiscript_text() {
        let mut db = Database::new();
        db.execute("CREATE TABLE b (author TEXT)").unwrap();
        db.execute("INSERT INTO b VALUES ('नेहरु'), ('நேரு'), ('Nehru')")
            .unwrap();
        let rs = db
            .execute("SELECT author FROM b WHERE author LIKE 'नेह%'")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("नेहरु")]]);
    }

    #[test]
    fn explain_statement() {
        let mut db = names_db();
        let rs = db
            .execute("EXPLAIN SELECT name FROM t WHERE id = 3")
            .unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        let plan = rs.rows[0][0].to_string();
        assert!(plan.contains("Scan"), "{plan}");
        // With an index the plan changes.
        db.execute("CREATE INDEX ix_id ON t (id)").unwrap();
        let rs = db
            .execute("EXPLAIN SELECT name FROM t WHERE id = 3")
            .unwrap();
        assert!(rs.rows[0][0].to_string().contains("IndexScan"));
    }

    #[test]
    fn dangling_not_is_a_parse_error() {
        let mut db = names_db();
        assert!(db.execute("SELECT name FROM t WHERE id NOT 3").is_err());
    }
}

#[cfg(test)]
mod dml_tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, name TEXT, price FLOAT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1,'a',10.0), (2,'b',20.0), (3,'c',30.0), (4,'b',40.0)")
            .unwrap();
        db
    }

    #[test]
    fn delete_with_predicate() {
        let mut db = db();
        let rs = db.execute("DELETE FROM t WHERE name = 'b'").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        // Deleted rows do not reappear anywhere.
        let rs = db.execute("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn delete_all_and_reinsert() {
        let mut db = db();
        db.execute("DELETE FROM t").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(0)
        );
        db.execute("INSERT INTO t VALUES (9,'z',1.0)").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(1)
        );
    }

    #[test]
    fn delete_respects_indexes() {
        let mut db = db();
        db.execute("CREATE INDEX ix ON t (id)").unwrap();
        db.execute("DELETE FROM t WHERE id = 2").unwrap();
        // Index probe must not resurrect the tombstoned row.
        let rs = db.execute("SELECT name FROM t WHERE id = 2").unwrap();
        assert!(rs.rows.is_empty());
        assert!(db
            .explain("SELECT name FROM t WHERE id = 2")
            .unwrap()
            .contains("IndexScan"));
    }

    #[test]
    fn update_values_and_expressions() {
        let mut db = db();
        let rs = db
            .execute("UPDATE t SET price = price * 2 WHERE name = 'b'")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        let rs = db
            .execute("SELECT price FROM t WHERE name = 'b' ORDER BY price")
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::Float(40.0)], vec![Value::Float(80.0)]]
        );
        // Row count is unchanged by updates.
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(4)
        );
    }

    #[test]
    fn update_indexed_column_moves_index_entry() {
        let mut db = db();
        db.execute("CREATE INDEX ix ON t (id)").unwrap();
        db.execute("UPDATE t SET id = 99 WHERE id = 1").unwrap();
        let rs = db.execute("SELECT name FROM t WHERE id = 99").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("a")]]);
        let rs = db.execute("SELECT name FROM t WHERE id = 1").unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn update_missing_column_fails() {
        let mut db = db();
        assert!(db.execute("UPDATE t SET nope = 1").is_err());
    }

    #[test]
    fn select_distinct() {
        let mut db = db();
        let rs = db
            .execute("SELECT DISTINCT name FROM t ORDER BY name")
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::from("a")],
                vec![Value::from("b")],
                vec![Value::from("c")]
            ]
        );
        // DISTINCT over multiple columns keeps distinct combinations.
        let rs = db.execute("SELECT DISTINCT name, price FROM t").unwrap();
        assert_eq!(rs.rows.len(), 4);
    }
}

#[cfg(test)]
mod range_scan_tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        for i in 0..1000 {
            db.insert("t", vec![Value::Int(i), Value::from(format!("n{i:04}"))])
                .unwrap();
        }
        db.execute("CREATE INDEX ix_id ON t (id)").unwrap();
        db
    }

    #[test]
    fn range_scan_results_match_full_scan() {
        let mut db = db();
        for sql in [
            "SELECT COUNT(*) FROM t WHERE id < 17",
            "SELECT COUNT(*) FROM t WHERE id <= 17",
            "SELECT COUNT(*) FROM t WHERE id > 990",
            "SELECT COUNT(*) FROM t WHERE id >= 990",
            "SELECT COUNT(*) FROM t WHERE id BETWEEN 100 AND 110",
            "SELECT COUNT(*) FROM t WHERE 500 > id",
        ] {
            let plan = db.explain(sql).unwrap();
            assert!(plan.contains("IndexRangeScan"), "{sql} -> {plan}");
            let indexed = db.execute(sql).unwrap();
            // Same predicate against the unindexed name column-less rewrite:
            // force a scan by wrapping with a no-op arithmetic identity.
            let scanned = db.execute(&sql.replace("id", "(id + 0)")).unwrap();
            assert_eq!(indexed.rows, scanned.rows, "{sql}");
        }
    }

    #[test]
    fn range_scan_respects_residual_filters() {
        let mut db = db();
        let sql = "SELECT COUNT(*) FROM t WHERE id < 100 AND name LIKE '%7'";
        let plan = db.explain(sql).unwrap();
        assert!(plan.contains("IndexRangeScan"), "{plan}");
        let rs = db.execute(sql).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(10)); // 7, 17, ..., 97
    }

    #[test]
    fn range_scan_sees_tombstones_and_updates() {
        let mut db = db();
        db.execute("DELETE FROM t WHERE id = 5").unwrap();
        db.execute("UPDATE t SET id = 3 WHERE id = 7").unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM t WHERE id < 10").unwrap();
        // 0..10 originally; minus deleted 5, 7 moved to 3 (still < 10).
        assert_eq!(rs.rows[0][0], Value::Int(9));
    }

    #[test]
    fn equality_still_preferred_over_range() {
        let db = db();
        let plan = db
            .explain("SELECT name FROM t WHERE id = 5 AND id < 100")
            .unwrap();
        assert!(plan.contains("IndexScan("), "{plan}");
    }
}
