//! Relational plans and the planner.
//!
//! The planner covers what the paper's experiments exercise:
//!
//! * single-table scans with pushed-down filters;
//! * **index scans** when a `col = constant` conjunct has a matching
//!   B-tree (the phonetic-index plan of Figure 15);
//! * multi-table FROM lists joined with **hash joins** on equi-conjuncts
//!   (the q-gram auxiliary-table joins of Figure 14) and nested loops
//!   otherwise (the UDF-join baseline of Table 1, where the paper notes
//!   Oracle also fell back to nested loops).

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::expr::{Binder, BoundSchema, Expr};
use crate::sql::ast::{BinOp, Select, SqlExpr};

/// A relational plan node producing rows.
#[derive(Debug)]
pub enum RelPlan {
    /// Full scan of a table, with an optional pushed-down predicate.
    Scan {
        /// Table name.
        table: String,
        /// Residual predicate (bound to this node's schema).
        filter: Option<Expr>,
        /// Output schema.
        schema: BoundSchema,
    },
    /// B-tree lookup: `column = key`, plus an optional residual predicate.
    IndexScan {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
        /// Key expression — must not reference any column.
        key: Expr,
        /// Residual predicate.
        filter: Option<Expr>,
        /// Output schema.
        schema: BoundSchema,
    },
    /// B-tree range scan: `lo ≤/< column ≤/< hi` with open ends allowed.
    IndexRangeScan {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
        /// Lower bound (expr must not reference columns) and inclusivity.
        lo: Option<(Expr, bool)>,
        /// Upper bound and inclusivity.
        hi: Option<(Expr, bool)>,
        /// Residual predicate.
        filter: Option<Expr>,
        /// Output schema.
        schema: BoundSchema,
    },
    /// Hash join on a single equi-key pair.
    HashJoin {
        /// Build side.
        left: Box<RelPlan>,
        /// Probe side.
        right: Box<RelPlan>,
        /// Key over the left schema.
        left_key: Expr,
        /// Key over the right schema.
        right_key: Expr,
        /// Combined output schema (left ++ right).
        schema: BoundSchema,
    },
    /// Nested-loop (cross) join; predicates are applied by a Filter above.
    NestedLoop {
        /// Outer input.
        left: Box<RelPlan>,
        /// Inner input.
        right: Box<RelPlan>,
        /// Combined output schema.
        schema: BoundSchema,
    },
    /// Predicate over the input.
    Filter {
        /// Input plan.
        input: Box<RelPlan>,
        /// Predicate bound to the input schema.
        predicate: Expr,
    },
}

impl RelPlan {
    /// The output schema of this node.
    pub fn schema(&self) -> &BoundSchema {
        match self {
            RelPlan::Scan { schema, .. }
            | RelPlan::IndexScan { schema, .. }
            | RelPlan::IndexRangeScan { schema, .. }
            | RelPlan::HashJoin { schema, .. }
            | RelPlan::NestedLoop { schema, .. } => schema,
            RelPlan::Filter { input, .. } => input.schema(),
        }
    }

    /// A one-line plan summary (for tests and EXPLAIN-style output).
    pub fn describe(&self) -> String {
        match self {
            RelPlan::Scan { table, filter, .. } => {
                if filter.is_some() {
                    format!("Scan({table}, filtered)")
                } else {
                    format!("Scan({table})")
                }
            }
            RelPlan::IndexScan { table, index, .. } => format!("IndexScan({table} via {index})"),
            RelPlan::IndexRangeScan { table, index, .. } => {
                format!("IndexRangeScan({table} via {index})")
            }
            RelPlan::HashJoin { left, right, .. } => {
                format!("HashJoin({}, {})", left.describe(), right.describe())
            }
            RelPlan::NestedLoop { left, right, .. } => {
                format!("NestedLoop({}, {})", left.describe(), right.describe())
            }
            RelPlan::Filter { input, .. } => format!("Filter({})", input.describe()),
        }
    }
}

/// Split an expression into its top-level AND conjuncts.
fn conjuncts(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    if let SqlExpr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        conjuncts(left, out);
        conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Does this AST expression contain an aggregate call?
fn has_aggregate(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::AggregateCall { .. } => true,
        SqlExpr::Binary { left, right, .. } => has_aggregate(left) || has_aggregate(right),
        SqlExpr::Unary { operand, .. } => has_aggregate(operand),
        SqlExpr::Call { args, .. } => args.iter().any(has_aggregate),
        SqlExpr::LexEqual {
            left,
            right,
            threshold,
            ..
        } => has_aggregate(left) || has_aggregate(right) || has_aggregate(threshold),
        SqlExpr::InList { expr, list, .. } => has_aggregate(expr) || list.iter().any(has_aggregate),
        SqlExpr::Between {
            expr, low, high, ..
        } => has_aggregate(expr) || has_aggregate(low) || has_aggregate(high),
        SqlExpr::Like { expr, pattern, .. } => has_aggregate(expr) || has_aggregate(pattern),
        _ => false,
    }
}

/// Build the relational part (FROM + WHERE) of a SELECT.
///
/// Returns the plan; WHERE conjuncts containing aggregates are rejected
/// (they belong in HAVING).
pub fn plan_relational(catalog: &Catalog, select: &Select) -> Result<RelPlan, DbError> {
    if select.from.is_empty() {
        return Err(DbError::Unsupported("SELECT without FROM".into()));
    }
    let mut pending: Vec<SqlExpr> = Vec::new();
    if let Some(w) = &select.where_clause {
        conjuncts(w, &mut pending);
    }
    for c in &pending {
        if has_aggregate(c) {
            return Err(DbError::Unsupported(
                "aggregate in WHERE (use HAVING)".into(),
            ));
        }
    }

    let base_schema = |table: &str, alias: &str| -> Result<BoundSchema, DbError> {
        let t = catalog.table(table)?;
        Ok(BoundSchema {
            columns: t
                .schema()
                .columns()
                .iter()
                .map(|c| (alias.to_uppercase(), c.name.to_uppercase()))
                .collect(),
        })
    };

    // Single relation: try the index-scan shortcut.
    let (first_table, first_alias) = &select.from[0];
    let first_schema = base_schema(first_table, first_alias)?;
    let mut plan: RelPlan = if select.from.len() == 1 {
        match try_index_scan(catalog, first_table, &first_schema, &mut pending)? {
            Some(p) => p,
            None => try_index_range_scan(catalog, first_table, &first_schema, &mut pending)?
                .unwrap_or(RelPlan::Scan {
                    table: first_table.clone(),
                    filter: None,
                    schema: first_schema,
                }),
        }
    } else {
        RelPlan::Scan {
            table: first_table.clone(),
            filter: None,
            schema: first_schema,
        }
    };
    plan = attach_ready_filters(plan, &mut pending)?;

    for (table, alias) in &select.from[1..] {
        let right_schema = base_schema(table, alias)?;
        let right = RelPlan::Scan {
            table: table.clone(),
            filter: None,
            schema: right_schema.clone(),
        };
        // Look for an equi-conjunct splitting across the two sides.
        let mut join_key: Option<(usize, Expr, Expr)> = None;
        for (i, c) in pending.iter().enumerate() {
            let SqlExpr::Binary {
                op: BinOp::Eq,
                left,
                right: r,
            } = c
            else {
                continue;
            };
            let try_bind = |e: &SqlExpr, s: &BoundSchema| -> Option<Expr> {
                let mut b = Binder::new(s);
                b.bind(e).ok().filter(|_| b.aggregates.is_empty())
            };
            if let (Some(lk), Some(rk)) =
                (try_bind(left, plan.schema()), try_bind(r, &right_schema))
            {
                join_key = Some((i, lk, rk));
                break;
            }
            if let (Some(lk), Some(rk)) =
                (try_bind(r, plan.schema()), try_bind(left, &right_schema))
            {
                join_key = Some((i, lk, rk));
                break;
            }
        }
        let combined = BoundSchema {
            columns: plan
                .schema()
                .columns
                .iter()
                .chain(&right_schema.columns)
                .cloned()
                .collect(),
        };
        plan = match join_key {
            Some((i, left_key, right_key)) => {
                pending.remove(i);
                RelPlan::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(right),
                    left_key,
                    right_key,
                    schema: combined,
                }
            }
            None => RelPlan::NestedLoop {
                left: Box::new(plan),
                right: Box::new(right),
                schema: combined,
            },
        };
        plan = attach_ready_filters(plan, &mut pending)?;
    }

    if !pending.is_empty() {
        // Conjuncts that never became bindable: report the first error.
        let schema = plan.schema().clone();
        let mut b = Binder::new(&schema);
        b.bind(&pending[0])?; // propagate the real binding error
        return Err(DbError::Unsupported(
            "unplaced predicate after join planning".into(),
        ));
    }
    Ok(plan)
}

/// Pop every pending conjunct that binds against the current schema and
/// fold them into one Filter.
fn attach_ready_filters(plan: RelPlan, pending: &mut Vec<SqlExpr>) -> Result<RelPlan, DbError> {
    let schema = plan.schema().clone();
    let mut bound: Vec<Expr> = Vec::new();
    pending.retain(|c| {
        let mut b = Binder::new(&schema);
        match b.bind(c) {
            Ok(e) if b.aggregates.is_empty() => {
                bound.push(e);
                false
            }
            _ => true,
        }
    });
    let Some(pred) = bound.into_iter().reduce(|a, b| Expr::Binary {
        op: BinOp::And,
        left: Box::new(a),
        right: Box::new(b),
    }) else {
        return Ok(plan);
    };
    Ok(RelPlan::Filter {
        input: Box::new(plan),
        predicate: pred,
    })
}

/// If a pending conjunct is `col = constant-expr` and an index exists on
/// that column, build an IndexScan (consuming the conjunct).
fn try_index_scan(
    catalog: &Catalog,
    table: &str,
    schema: &BoundSchema,
    pending: &mut Vec<SqlExpr>,
) -> Result<Option<RelPlan>, DbError> {
    let empty = BoundSchema::default();
    let mut found: Option<(usize, String, Expr)> = None;
    'outer: for (i, c) in pending.iter().enumerate() {
        let SqlExpr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = c
        else {
            continue;
        };
        for (col_side, key_side) in [(left, right), (right, left)] {
            let SqlExpr::Column { qualifier, name } = col_side.as_ref() else {
                continue;
            };
            let Ok(col) = schema.resolve(qualifier.as_deref(), name) else {
                continue;
            };
            // Key must be evaluable without any row.
            let mut kb = Binder::new(&empty);
            let Ok(key) = kb.bind(key_side) else {
                continue;
            };
            if !kb.aggregates.is_empty() {
                continue;
            }
            if let Some(entry) = catalog.index_on(table, col) {
                found = Some((i, entry.name.clone(), key));
                break 'outer;
            }
        }
    }
    Ok(found.map(|(i, index, key)| {
        pending.remove(i);
        RelPlan::IndexScan {
            table: table.to_owned(),
            index,
            key,
            filter: None,
            schema: schema.clone(),
        }
    }))
}

/// If a pending conjunct constrains an indexed column with `<`, `<=`,
/// `>`, `>=` or `BETWEEN` against row-free expressions, build an
/// IndexRangeScan. Only the first such conjunct is absorbed; any others
/// stay behind as (correct, re-checking) filters.
fn try_index_range_scan(
    catalog: &Catalog,
    table: &str,
    schema: &BoundSchema,
    pending: &mut Vec<SqlExpr>,
) -> Result<Option<RelPlan>, DbError> {
    let empty = BoundSchema::default();
    let bind_free = |e: &SqlExpr| -> Option<Expr> {
        let mut b = Binder::new(&empty);
        b.bind(e).ok().filter(|_| b.aggregates.is_empty())
    };
    let resolve_col = |e: &SqlExpr| -> Option<usize> {
        let SqlExpr::Column { qualifier, name } = e else {
            return None;
        };
        schema.resolve(qualifier.as_deref(), name).ok()
    };
    // (predicate index, index name, lower bound, upper bound); each bound
    // is (expression, inclusive).
    type RangePick = (usize, String, Option<(Expr, bool)>, Option<(Expr, bool)>);
    let mut found: Option<RangePick> = None;
    for (i, c) in pending.iter().enumerate() {
        // BETWEEN on an indexed column.
        if let SqlExpr::Between {
            expr,
            low,
            high,
            negated: false,
        } = c
        {
            if let Some(col) = resolve_col(expr) {
                if let Some(entry) = catalog.index_on(table, col) {
                    if let (Some(lo), Some(hi)) = (bind_free(low), bind_free(high)) {
                        found = Some((i, entry.name.clone(), Some((lo, true)), Some((hi, true))));
                        break;
                    }
                }
            }
        }
        // Single comparison with the column on either side.
        let SqlExpr::Binary { op, left, right } = c else {
            continue;
        };
        // (column OP key) or (key OP column) — flip the operator when the
        // column is on the right.
        let candidates = [
            (resolve_col(left), bind_free(right), *op),
            (
                resolve_col(right),
                bind_free(left),
                match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                },
            ),
        ];
        for (col, key, eff_op) in candidates {
            let (Some(col), Some(key)) = (col, key) else {
                continue;
            };
            let Some(entry) = catalog.index_on(table, col) else {
                continue;
            };
            let (lo, hi) = match eff_op {
                BinOp::Lt => (None, Some((key, false))),
                BinOp::Le => (None, Some((key, true))),
                BinOp::Gt => (Some((key, false)), None),
                BinOp::Ge => (Some((key, true)), None),
                _ => continue,
            };
            found = Some((i, entry.name.clone(), lo, hi));
            break;
        }
        if found.is_some() {
            break;
        }
    }
    Ok(found.map(|(i, index, lo, hi)| {
        pending.remove(i);
        RelPlan::IndexRangeScan {
            table: table.to_owned(),
            index,
            lo,
            hi,
            filter: None,
            schema: schema.clone(),
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "names",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("pname", DataType::Text),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "aux",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("qgram", DataType::Text),
            ])
            .unwrap(),
        )
        .unwrap();
        for i in 0..10 {
            c.insert_row("names", vec![Value::Int(i), Value::from("x")])
                .unwrap();
        }
        c.create_index("ix_names_id", "names", "id").unwrap();
        c
    }

    fn plan_of(c: &Catalog, sql: &str) -> RelPlan {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!("expected select")
        };
        plan_relational(c, &sel).unwrap()
    }

    #[test]
    fn single_table_scan() {
        let c = catalog();
        let p = plan_of(&c, "SELECT pname FROM names");
        assert_eq!(p.describe(), "Scan(NAMES)");
    }

    #[test]
    fn filter_pushed_onto_scan() {
        let c = catalog();
        let p = plan_of(&c, "SELECT pname FROM names WHERE pname = 'x'");
        assert_eq!(p.describe(), "Filter(Scan(NAMES))");
    }

    #[test]
    fn index_scan_chosen_for_indexed_equality() {
        let c = catalog();
        let p = plan_of(&c, "SELECT pname FROM names WHERE id = 7");
        assert!(
            p.describe().starts_with("IndexScan"),
            "got {}",
            p.describe()
        );
        // And with extra residual predicates, filter goes on top.
        let p = plan_of(&c, "SELECT pname FROM names WHERE id = 7 AND pname = 'x'");
        assert_eq!(p.describe(), "Filter(IndexScan(NAMES via ix_names_id))");
    }

    #[test]
    fn range_scan_chosen_for_indexed_inequalities() {
        let c = catalog();
        for sql in [
            "SELECT pname FROM names WHERE id < 5",
            "SELECT pname FROM names WHERE id >= 3",
            "SELECT pname FROM names WHERE 5 > id",
            "SELECT pname FROM names WHERE id BETWEEN 2 AND 6",
        ] {
            let p = plan_of(&c, sql);
            assert!(
                p.describe().contains("IndexRangeScan"),
                "{sql} -> {}",
                p.describe()
            );
        }
        // Unindexed column still scans.
        let p = plan_of(&c, "SELECT pname FROM names WHERE pname < 'm'");
        assert!(!p.describe().contains("IndexRangeScan"), "{}", p.describe());
    }

    #[test]
    fn equi_join_becomes_hash_join() {
        let c = catalog();
        let p = plan_of(&c, "SELECT n.pname FROM names n, aux a WHERE n.id = a.id");
        assert_eq!(p.describe(), "HashJoin(Scan(NAMES), Scan(AUX))");
    }

    #[test]
    fn non_equi_join_is_nested_loop_with_filter() {
        let c = catalog();
        let p = plan_of(&c, "SELECT n.pname FROM names n, aux a WHERE n.id < a.id");
        assert_eq!(p.describe(), "Filter(NestedLoop(Scan(NAMES), Scan(AUX)))");
    }

    #[test]
    fn aggregates_in_where_rejected() {
        let c = catalog();
        let Statement::Select(sel) = parse("SELECT id FROM names WHERE COUNT(*) > 1").unwrap()
        else {
            panic!("expected select")
        };
        assert!(plan_relational(&c, &sel).is_err());
    }

    #[test]
    fn unknown_column_is_reported() {
        let c = catalog();
        let Statement::Select(sel) = parse("SELECT id FROM names WHERE zzz = 1").unwrap() else {
            panic!("expected select")
        };
        assert!(matches!(
            plan_relational(&c, &sel),
            Err(DbError::NoSuchColumn(_))
        ));
    }
}
