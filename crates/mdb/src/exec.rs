//! The executor: materialized evaluation of plans and SELECT pipelines.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::expr::{Binder, BoundAggregate, BoundSchema, EvalCtx, Expr};
use crate::plan::{plan_relational, RelPlan};
use crate::row::Row;
use crate::sql::ast::{Aggregate, Select, SelectItem, SqlExpr};
use crate::stats::Stats;
use crate::udf::UdfRegistry;
use crate::value::Value;
use std::collections::HashMap;

/// Query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

/// Everything an execution needs.
pub struct ExecContext<'a> {
    /// Tables and indexes.
    pub catalog: &'a Catalog,
    /// Registered scalar UDFs.
    pub udfs: &'a UdfRegistry,
    /// Statistics sink.
    pub stats: &'a Stats,
}

impl ExecContext<'_> {
    fn eval(&self, e: &Expr, row: &[Value], aggs: Option<&[Value]>) -> Result<Value, DbError> {
        e.eval(&EvalCtx {
            row,
            udfs: self.udfs,
            aggs,
            stats: self.stats,
        })
    }

    /// Execute a relational plan to a row vector.
    pub fn run_rel(&self, plan: &RelPlan) -> Result<Vec<Row>, DbError> {
        match plan {
            RelPlan::Scan { table, filter, .. } => {
                let t = self.catalog.table(table)?;
                let mut out = Vec::new();
                for (_, row) in t.scan() {
                    self.stats.record_scan(1);
                    if let Some(f) = filter {
                        if !self.eval(f, row, None)?.truthy() {
                            continue;
                        }
                    }
                    out.push(row.clone());
                }
                Ok(out)
            }
            RelPlan::IndexScan {
                table,
                index,
                key,
                filter,
                ..
            } => {
                let t = self.catalog.table(table)?;
                let entry = self.catalog.index(index)?;
                let k = self.eval(key, &[], None)?;
                self.stats.record_index_lookup();
                let mut out = Vec::new();
                for rid in entry.btree.lookup(&k) {
                    // Stale index entries (tombstoned rows) resolve to None.
                    let Some(row) = t.row(rid) else {
                        continue;
                    };
                    if let Some(f) = filter {
                        if !self.eval(f, row, None)?.truthy() {
                            continue;
                        }
                    }
                    out.push(row.clone());
                }
                Ok(out)
            }
            RelPlan::IndexRangeScan {
                table,
                index,
                lo,
                hi,
                filter,
                ..
            } => {
                let t = self.catalog.table(table)?;
                let entry = self.catalog.index(index)?;
                let lo_val = match lo {
                    Some((e, inc)) => Some((self.eval(e, &[], None)?, *inc)),
                    None => None,
                };
                let hi_val = match hi {
                    Some((e, inc)) => Some((self.eval(e, &[], None)?, *inc)),
                    None => None,
                };
                self.stats.record_index_lookup();
                let hits = entry.btree.range_bounds(
                    lo_val.as_ref().map(|(v, i)| (v, *i)),
                    hi_val.as_ref().map(|(v, i)| (v, *i)),
                );
                let mut out = Vec::new();
                for (_, rid) in hits {
                    let Some(row) = t.row(rid) else {
                        continue; // tombstoned
                    };
                    if let Some(f) = filter {
                        if !self.eval(f, row, None)?.truthy() {
                            continue;
                        }
                    }
                    out.push(row.clone());
                }
                Ok(out)
            }
            RelPlan::Filter { input, predicate } => {
                let rows = self.run_rel(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if self.eval(predicate, &row, None)?.truthy() {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            RelPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                ..
            } => {
                let left_rows = self.run_rel(left)?;
                let right_rows = self.run_rel(right)?;
                // Build on the smaller side.
                let (build_rows, probe_rows, build_key, probe_key, build_is_left) =
                    if left_rows.len() <= right_rows.len() {
                        (&left_rows, &right_rows, left_key, right_key, true)
                    } else {
                        (&right_rows, &left_rows, right_key, left_key, false)
                    };
                let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                for (i, row) in build_rows.iter().enumerate() {
                    let k = self.eval(build_key, row, None)?;
                    if k.is_null() {
                        continue; // NULL never joins
                    }
                    table.entry(k).or_default().push(i);
                }
                let mut out = Vec::new();
                for probe in probe_rows {
                    let k = self.eval(probe_key, probe, None)?;
                    if k.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&k) {
                        for &bi in matches {
                            self.stats.record_join(1);
                            let build = &build_rows[bi];
                            let mut row = Vec::with_capacity(build.len() + probe.len());
                            if build_is_left {
                                row.extend_from_slice(build);
                                row.extend_from_slice(probe);
                            } else {
                                row.extend_from_slice(probe);
                                row.extend_from_slice(build);
                            }
                            out.push(row);
                        }
                    }
                }
                Ok(out)
            }
            RelPlan::NestedLoop { left, right, .. } => {
                let left_rows = self.run_rel(left)?;
                let right_rows = self.run_rel(right)?;
                let mut out = Vec::new();
                for l in &left_rows {
                    for r in &right_rows {
                        self.stats.record_join(1);
                        let mut row = Vec::with_capacity(l.len() + r.len());
                        row.extend_from_slice(l);
                        row.extend_from_slice(r);
                        out.push(row);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Execute a full SELECT.
    pub fn run_select(&self, select: &Select) -> Result<ResultSet, DbError> {
        let rel = plan_relational(self.catalog, select)?;
        let rows = self.run_rel(&rel)?;
        let schema = rel.schema().clone();

        // Bind everything downstream with one shared binder so aggregate
        // slots line up across HAVING / projection / ORDER BY.
        let mut binder = Binder::new(&schema);
        let group_keys: Vec<Expr> = select
            .group_by
            .iter()
            .map(|g| binder.bind(g))
            .collect::<Result<_, _>>()?;
        let having: Option<Expr> = match &select.having {
            Some(h) => Some(binder.bind(h)?),
            None => None,
        };
        let mut out_names: Vec<String> = Vec::new();
        let mut out_exprs: Vec<Expr> = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, (_, name)) in schema.columns.iter().enumerate() {
                        out_names.push(name.to_lowercase());
                        out_exprs.push(Expr::Column(i));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    out_names.push(match alias {
                        Some(a) => a.to_lowercase(),
                        None => default_name(expr),
                    });
                    out_exprs.push(binder.bind(expr)?);
                }
            }
        }
        let order_keys: Vec<(Expr, bool)> = select
            .order_by
            .iter()
            .map(|o| Ok((binder.bind(&o.expr)?, o.asc)))
            .collect::<Result<_, DbError>>()?;
        let aggregates = binder.aggregates;

        let grouped = !select.group_by.is_empty() || !aggregates.is_empty();
        // Each output unit: (representative row, aggregate values).
        let units: Vec<(Row, Vec<Value>)> = if grouped {
            self.group(rows, &group_keys, &aggregates)?
        } else {
            rows.into_iter().map(|r| (r, Vec::new())).collect()
        };

        // HAVING.
        let mut units = units;
        if let Some(h) = &having {
            let mut kept = Vec::with_capacity(units.len());
            for (row, aggs) in units {
                if self.eval(h, &row, Some(&aggs))?.truthy() {
                    kept.push((row, aggs));
                }
            }
            units = kept;
        }

        // ORDER BY.
        type KeyedUnit = (Vec<Value>, (Row, Vec<Value>));
        if !order_keys.is_empty() {
            let mut keyed: Vec<KeyedUnit> = Vec::with_capacity(units.len());
            for unit in units {
                let mut ks = Vec::with_capacity(order_keys.len());
                for (e, _) in &order_keys {
                    ks.push(self.eval(e, &unit.0, Some(&unit.1))?);
                }
                keyed.push((ks, unit));
            }
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, asc)) in order_keys.iter().enumerate() {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            units = keyed.into_iter().map(|(_, u)| u).collect();
        }

        // LIMIT.
        if let Some(n) = select.limit {
            units.truncate(n);
        }

        // Projection.
        let mut out_rows = Vec::with_capacity(units.len());
        for (row, aggs) in &units {
            let mut out = Vec::with_capacity(out_exprs.len());
            for e in &out_exprs {
                out.push(self.eval(e, row, Some(aggs))?);
            }
            out_rows.push(out);
        }
        // DISTINCT: dedup projected rows, keeping first occurrences (and
        // therefore any ORDER BY ordering).
        if select.distinct {
            let mut seen: std::collections::HashSet<Row> = std::collections::HashSet::new();
            out_rows.retain(|r| seen.insert(r.clone()));
        }
        Ok(ResultSet {
            columns: out_names,
            rows: out_rows,
        })
    }

    /// Group rows and compute aggregates per group.
    fn group(
        &self,
        rows: Vec<Row>,
        keys: &[Expr],
        aggregates: &[BoundAggregate],
    ) -> Result<Vec<(Row, Vec<Value>)>, DbError> {
        // No GROUP BY but aggregates present: one global group (even if
        // empty, per SQL semantics for COUNT).
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        for row in rows {
            let mut k = Vec::with_capacity(keys.len());
            for e in keys {
                k.push(self.eval(e, &row, None)?);
            }
            if !groups.contains_key(&k) {
                order.push(k.clone());
            }
            groups.entry(k).or_default().push(row);
        }
        if keys.is_empty() && groups.is_empty() {
            groups.insert(Vec::new(), Vec::new());
            order.push(Vec::new());
        }
        let mut out = Vec::with_capacity(order.len());
        for k in order {
            let members = groups.remove(&k).expect("group recorded");
            let mut aggs = Vec::with_capacity(aggregates.len());
            for a in aggregates {
                aggs.push(self.aggregate(a, &members)?);
            }
            // Representative row: the first member, or an all-NULL row for
            // the empty global group.
            let rep = members.into_iter().next().unwrap_or_default();
            out.push((rep, aggs));
        }
        Ok(out)
    }

    fn aggregate(&self, agg: &BoundAggregate, rows: &[Row]) -> Result<Value, DbError> {
        let vals = |arg: &Expr| -> Result<Vec<Value>, DbError> {
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let v = self.eval(arg, r, None)?;
                if !v.is_null() {
                    out.push(v);
                }
            }
            Ok(out)
        };
        Ok(match (&agg.agg, &agg.arg) {
            (Aggregate::Count, None) => Value::Int(rows.len() as i64),
            (Aggregate::Count, Some(a)) => Value::Int(vals(a)?.len() as i64),
            (Aggregate::Sum, Some(a)) => {
                let vs = vals(a)?;
                if vs.is_empty() {
                    Value::Null
                } else if vs.iter().all(|v| matches!(v, Value::Int(_))) {
                    Value::Int(vs.iter().map(|v| v.as_i64().expect("int")).sum())
                } else {
                    let mut s = 0.0;
                    for v in &vs {
                        s += v.as_f64()?;
                    }
                    Value::Float(s)
                }
            }
            (Aggregate::Min, Some(a)) => vals(a)?.into_iter().min().unwrap_or(Value::Null),
            (Aggregate::Max, Some(a)) => vals(a)?.into_iter().max().unwrap_or(Value::Null),
            (Aggregate::Avg, Some(a)) => {
                let vs = vals(a)?;
                if vs.is_empty() {
                    Value::Null
                } else {
                    let mut s = 0.0;
                    for v in &vs {
                        s += v.as_f64()?;
                    }
                    Value::Float(s / vs.len() as f64)
                }
            }
            (_, None) => return Err(DbError::Type("aggregate needs an argument".into())),
        })
    }
}

/// Default output column name for an unaliased projection.
fn default_name(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Column { name, .. } => name.to_lowercase(),
        SqlExpr::AggregateCall { agg, .. } => match agg {
            Aggregate::Count => "count".into(),
            Aggregate::Sum => "sum".into(),
            Aggregate::Min => "min".into(),
            Aggregate::Max => "max".into(),
            Aggregate::Avg => "avg".into(),
        },
        SqlExpr::Call { name, .. } => name.to_lowercase(),
        _ => "expr".into(),
    }
}

/// Keep `BoundSchema` import alive for rustdoc links.
#[allow(unused)]
fn _schema_doc(_: &BoundSchema) {}
