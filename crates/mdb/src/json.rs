//! A minimal self-contained JSON reader/writer.
//!
//! The build environment resolves no external registries, so the snapshot
//! format (and the benchmark result files) cannot lean on serde. This
//! module implements exactly the JSON subset those closed formats need: a
//! document model ([`Json`]), a compact writer, and a recursive-descent
//! parser. Strings are UTF-8 with standard escapes (including `\uXXXX`
//! surrogate pairs); numbers distinguish integers from floats by the
//! presence of a fraction or exponent; non-finite floats serialize as
//! `null` (mirroring the common lenient convention).

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (the formats here are
    /// small and closed, so no hash map is warranted).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The number as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize compactly into a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // {:?} is the shortest representation that round-trips
                    // and always carries a fraction ("1.0", not "1").
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy a maximal unescaped UTF-8 run in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uDC00-\uDFFF.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(src).expect(src);
            assert_eq!(v.render(), src, "{src}");
        }
    }

    #[test]
    fn round_trips_structures() {
        let src = r#"{"t":"Str","v":"नेहरु","xs":[1,2.5,null,{"k":true}]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("t").and_then(Json::as_str), Some("Str"));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(|a| a.len()), Some(4));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::Str("a\"b\\c\nद \u{7}".to_owned());
        let s = v.render();
        assert_eq!(Json::parse(&s).unwrap(), v);
        // \uXXXX escapes (including surrogate pairs) parse.
        assert_eq!(
            Json::parse(r#""\u0928\ud83d\ude00""#).unwrap(),
            Json::Str("न\u{1F600}".to_owned())
        );
    }

    #[test]
    fn floats_keep_their_fraction() {
        assert_eq!(Json::Float(1.0).render(), "1.0");
        assert_eq!(Json::parse("1.0").unwrap(), Json::Float(1.0));
        assert_eq!(Json::parse("1").unwrap(), Json::Int(1));
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn rejects_garbage() {
        for src in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "[1]x"] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = Json::parse("99999999999999999999").unwrap();
        assert!(matches!(v, Json::Float(_)));
    }
}
