//! The catalog: named tables and their indexes.

use crate::btree::BTreeIndex;
use crate::error::DbError;
use crate::schema::Schema;
use crate::table::Table;
use std::collections::HashMap;

/// Metadata + structure for one secondary index.
#[derive(Debug)]
pub struct IndexEntry {
    /// Index name (lower-cased).
    pub name: String,
    /// Indexed table (lower-cased).
    pub table: String,
    /// Indexed column position in the table schema.
    pub column: usize,
    /// The B-tree itself.
    pub btree: BTreeIndex,
}

/// All tables and indexes of a database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    indexes: HashMap<String, IndexEntry>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(DbError::AlreadyExists(key));
        }
        self.tables.insert(key.clone(), Table::new(&key, schema));
        Ok(())
    }

    /// Get a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Get a table mutably. Note: mutating a table invalidates its indexes
    /// only in the sense of missing new rows; use
    /// [`Catalog::insert_row`](Self::insert_row) to keep them in sync.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Insert a row, maintaining all indexes on the table.
    pub fn insert_row(&mut self, table: &str, row: crate::row::Row) -> Result<(), DbError> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
        let rid = t.insert(row)?;
        let stored = t.row(rid).expect("just inserted").clone();
        for idx in self.indexes.values_mut() {
            if idx.table == key {
                idx.btree.insert(stored[idx.column].clone(), rid);
            }
        }
        Ok(())
    }

    /// Insert a batch of rows, maintaining all indexes on the table.
    ///
    /// One table lookup and one index scan per *batch* instead of per row
    /// — and index maintenance clones only the indexed column values, not
    /// whole rows. Returns the number of rows inserted; a bad row aborts
    /// the whole batch before anything is stored.
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: Vec<crate::row::Row>,
    ) -> Result<usize, DbError> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
        let range = t.insert_many(rows)?;
        let inserted = range.len();
        for idx in self.indexes.values_mut() {
            if idx.table == key {
                for rid in range.clone() {
                    let stored = t.row(rid).expect("just inserted");
                    idx.btree.insert(stored[idx.column].clone(), rid);
                }
            }
        }
        Ok(inserted)
    }

    /// Tombstone a row. Index entries pointing at it become stale; every
    /// reader resolves ids through [`Table::row`], which filters them.
    pub fn delete_row(&mut self, table: &str, rid: crate::row::RowId) -> Result<bool, DbError> {
        let t = self.table_mut(table)?;
        Ok(t.delete(rid))
    }

    /// Update a row: tombstone the old version and insert the new one
    /// (secondary indexes pick up the new id on insert).
    pub fn update_row(
        &mut self,
        table: &str,
        rid: crate::row::RowId,
        new_row: crate::row::Row,
    ) -> Result<(), DbError> {
        let key = table.to_ascii_lowercase();
        {
            let t = self.table_mut(&key)?;
            if !t.delete(rid) {
                return Err(DbError::SchemaMismatch(format!(
                    "update of missing row {rid} in {key}"
                )));
            }
        }
        self.insert_row(&key, new_row)
    }

    /// Create a B-tree index over `table(column)` and bulk-load existing rows.
    pub fn create_index(&mut self, name: &str, table: &str, column: &str) -> Result<(), DbError> {
        let key = name.to_ascii_lowercase();
        if self.indexes.contains_key(&key) {
            return Err(DbError::AlreadyExists(key));
        }
        let t = self.table(table)?;
        let col = t
            .schema()
            .index_of(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_owned()))?;
        let mut btree = BTreeIndex::new();
        for (rid, v) in t.column_values(col) {
            btree.insert(v.clone(), rid);
        }
        self.indexes.insert(
            key.clone(),
            IndexEntry {
                name: key,
                table: table.to_ascii_lowercase(),
                column: col,
                btree,
            },
        );
        Ok(())
    }

    /// Find an index on `table(column)` if one exists.
    pub fn index_on(&self, table: &str, column: usize) -> Option<&IndexEntry> {
        let table = table.to_ascii_lowercase();
        self.indexes
            .values()
            .find(|ix| ix.table == table && ix.column == column)
    }

    /// Get an index by name.
    pub fn index(&self, name: &str) -> Result<&IndexEntry, DbError> {
        self.indexes
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::NoSuchIndex(name.to_owned()))
    }

    /// All table names (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// All index definitions as (index name, table, column name) —
    /// the snapshot/recovery interface.
    pub fn index_definitions(&self) -> impl Iterator<Item = (&str, &str, &str)> {
        self.indexes.values().map(|ix| {
            let column_name = self
                .tables
                .get(&ix.table)
                .map(|t| t.schema().column(ix.column).name.as_str())
                .unwrap_or("");
            (ix.name.as_str(), ix.table.as_str(), column_name)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "names",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ])
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn create_and_lookup() {
        let c = catalog();
        assert!(c.table("NAMES").is_ok());
        assert!(c.table("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = catalog();
        assert!(matches!(
            c.create_table("NAMES", Schema::default()),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn index_bulk_load_and_maintenance() {
        let mut c = catalog();
        for i in 0..10 {
            c.insert_row("names", vec![Value::Int(i), Value::from("x")])
                .unwrap();
        }
        c.create_index("ix_id", "names", "id").unwrap();
        // Bulk-loaded entries:
        assert_eq!(
            c.index("ix_id").unwrap().btree.lookup(&Value::Int(7)),
            vec![7]
        );
        // Maintained on subsequent insert:
        c.insert_row("names", vec![Value::Int(7), Value::from("y")])
            .unwrap();
        let mut hits = c.index("ix_id").unwrap().btree.lookup(&Value::Int(7));
        hits.sort_unstable();
        assert_eq!(hits, vec![7, 10]);
        // index_on finds it by (table, column).
        assert!(c.index_on("names", 0).is_some());
        assert!(c.index_on("names", 1).is_none());
    }

    #[test]
    fn bulk_insert_matches_row_at_a_time_and_maintains_indexes() {
        let mut a = catalog();
        let mut b = catalog();
        a.create_index("ix_id", "names", "id").unwrap();
        b.create_index("ix_id", "names", "id").unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(i % 5), Value::from(format!("n{i}"))])
            .collect();
        for r in rows.clone() {
            a.insert_row("names", r).unwrap();
        }
        assert_eq!(b.insert_rows("NAMES", rows).unwrap(), 20);
        assert_eq!(
            a.table("names").unwrap().len(),
            b.table("names").unwrap().len()
        );
        for key in 0..5 {
            let mut ha = a.index("ix_id").unwrap().btree.lookup(&Value::Int(key));
            let mut hb = b.index("ix_id").unwrap().btree.lookup(&Value::Int(key));
            ha.sort_unstable();
            hb.sort_unstable();
            assert_eq!(ha, hb, "key {key}");
        }
    }

    #[test]
    fn bulk_insert_is_all_or_nothing() {
        let mut c = catalog();
        let rows = vec![
            vec![Value::Int(1), Value::from("ok")],
            vec![Value::Int(2)], // wrong arity
        ];
        assert!(c.insert_rows("names", rows).is_err());
        assert!(c.table("names").unwrap().is_empty());
        assert!(c.insert_rows("missing", vec![]).is_err());
    }

    #[test]
    fn index_on_missing_column_fails() {
        let mut c = catalog();
        assert!(c.create_index("ix", "names", "zzz").is_err());
        assert!(c.create_index("ix", "missing_table", "id").is_err());
    }
}
