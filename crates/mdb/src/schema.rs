//! Table schemas.

use crate::error::DbError;
use crate::value::DataType;

/// One column: a (lower-cased) name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, stored lower-case (identifiers are case-insensitive).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Column {
    /// Create a column (name is lower-cased).
    pub fn new(name: &str, ty: DataType) -> Self {
        Column {
            name: name.to_ascii_lowercase(),
            ty,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; column names must be unique (case-insensitive).
    pub fn new(columns: Vec<Column>) -> Result<Self, DbError> {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name == b.name {
                    return Err(DbError::SchemaMismatch(format!(
                        "duplicate column {}",
                        a.name
                    )));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column at index.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let s = Schema::new(vec![
            Column::new("ID", DataType::Int),
            Column::new("PName", DataType::Text),
        ])
        .unwrap();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("pname"), Some(1));
        assert_eq!(s.index_of("PNAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Text),
        ]);
        assert!(err.is_err());
    }
}
