//! `lexequal-mdb`: a small in-process relational engine.
//!
//! The LexEQUAL paper (Kumaran & Haritsa, EDBT 2004) evaluates its
//! multiscript matching operator *inside a database system*: as a UDF
//! called from SQL, accelerated by auxiliary q-gram tables (joins +
//! GROUP BY/HAVING) and by a B-tree index over grouped phoneme string
//! identifiers. Reproducing those experiments therefore needs a database
//! substrate with:
//!
//! * typed tables ([`Table`], [`Schema`], [`Value`]);
//! * **B-tree indexes** with duplicate keys and range scans ([`BTreeIndex`]);
//! * a **SQL subset** — `SELECT`/`INSERT`/`CREATE TABLE`/`CREATE INDEX`
//!   with multi-table joins, `WHERE`, `GROUP BY`/`HAVING`, `ORDER BY`,
//!   `LIMIT` ([`sql`]);
//! * an executor with full scans, index scans, **hash joins** for
//!   equi-predicates, index nested-loop joins, grouping and aggregation
//!   ([`exec`]);
//! * **scalar UDFs** registered by name ([`UdfRegistry`]) — the vehicle for
//!   the LexEQUAL operator itself, exactly as the paper deployed it on
//!   Oracle 9i via PL/SQL;
//! * execution statistics (rows scanned, UDF calls, index node visits) so
//!   the benchmark harness can report *why* a plan is fast ([`Stats`]).
//!
//! The engine is single-threaded and fully in-memory, matching the paper's
//! single-connection experimental setup; see DESIGN.md §2 for the
//! substitution argument.
//!
//! # Example
//!
//! ```
//! use lexequal_mdb::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE books (author TEXT, title TEXT, price FLOAT)").unwrap();
//! db.execute("INSERT INTO books VALUES ('Nehru', 'Discovery of India', 9.95)").unwrap();
//! db.execute("INSERT INTO books VALUES ('Nero', 'Coronation', 99.0)").unwrap();
//! let rs = db.execute("SELECT author FROM books WHERE price < 50 ORDER BY author").unwrap();
//! assert_eq!(rs.rows[0][0], Value::from("Nehru"));
//! ```

pub mod btree;
pub mod catalog;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod json;
pub mod plan;
pub mod row;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod stats;
pub mod table;
pub mod udf;
pub mod value;

pub use btree::BTreeIndex;
pub use catalog::Catalog;
pub use db::{Database, ResultSet};
pub use error::DbError;
pub use expr::Expr;
pub use json::{Json, JsonError};
pub use row::{Row, RowId};
pub use schema::{Column, Schema};
pub use snapshot::Snapshot;
pub use stats::Stats;
pub use table::Table;
pub use udf::{Udf, UdfRegistry};
pub use value::{DataType, Value};
