//! Rows and row identifiers.

use crate::value::Value;

/// Position of a row within its table's heap — stable for the life of the
/// table (this engine never reclaims slots), so indexes can store it.
pub type RowId = usize;

/// A tuple of values. Arity and types are governed by the table's
/// [`Schema`](crate::Schema); the executor also builds wider intermediate
/// rows during joins.
pub type Row = Vec<Value>;
