//! Scalar user-defined functions.
//!
//! The paper deploys LexEQUAL "as a User-Defined Function (UDF) that can be
//! called in SQL statements" (§3.2). This registry is the engine-side
//! counterpart: any `Fn(&[Value]) -> Result<Value, DbError>` can be
//! installed under a name and invoked from SQL expressions.

use crate::error::DbError;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The boxed function type behind a scalar UDF.
type UdfFn = dyn Fn(&[Value]) -> Result<Value, DbError> + Send + Sync;

/// A scalar UDF.
#[derive(Clone)]
pub struct Udf {
    name: String,
    f: Arc<UdfFn>,
}

impl Udf {
    /// Wrap a closure as a UDF.
    pub fn new(
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, DbError> + Send + Sync + 'static,
    ) -> Self {
        Udf {
            name: name.to_uppercase(),
            f: Arc::new(f),
        }
    }

    /// The (upper-cased) registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invoke with evaluated arguments.
    pub fn call(&self, args: &[Value]) -> Result<Value, DbError> {
        (self.f)(args)
    }
}

impl fmt::Debug for Udf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Udf({})", self.name)
    }
}

/// Name → UDF map (names are case-insensitive).
#[derive(Debug, Clone, Default)]
pub struct UdfRegistry {
    map: HashMap<String, Udf>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a UDF.
    pub fn register(&mut self, udf: Udf) {
        self.map.insert(udf.name.clone(), udf);
    }

    /// Look up by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&Udf> {
        self.map.get(&name.to_uppercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register(Udf::new("double", |args| {
            Ok(Value::Int(args[0].as_i64()? * 2))
        }));
        let udf = reg.get("DOUBLE").expect("registered");
        assert_eq!(udf.call(&[Value::Int(21)]).unwrap(), Value::Int(42));
        assert_eq!(udf.name(), "DOUBLE");
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn udf_errors_propagate() {
        let mut reg = UdfRegistry::new();
        reg.register(Udf::new("fail", |_| Err(DbError::Udf("boom".into()))));
        let err = reg.get("fail").unwrap().call(&[]).unwrap_err();
        assert_eq!(err, DbError::Udf("boom".into()));
    }
}
