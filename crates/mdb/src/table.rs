//! Heap tables.

use crate::error::DbError;
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::value::Value;

/// A heap table: a schema plus a row store with tombstones. Row ids are
/// heap positions and remain stable; DELETE marks a slot dead rather than
/// compacting, so secondary indexes may hold stale ids — readers must
/// treat a `None` from [`Table::row`] as "filtered out".
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    deleted: Vec<bool>,
    live: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: &str, schema: Schema) -> Self {
        Table {
            name: name.to_ascii_lowercase(),
            schema,
            rows: Vec::new(),
            deleted: Vec::new(),
            live: 0,
        }
    }

    /// Table name (lower-cased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live row count (tombstoned rows excluded).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a row after validating arity and coercing types.
    /// Returns the new row id.
    pub fn insert(&mut self, row: Row) -> Result<RowId, DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::SchemaMismatch(format!(
                "table {} expects {} columns, got {}",
                self.name,
                self.schema.arity(),
                row.len()
            )));
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(self.schema.columns()) {
            coerced.push(v.coerce(col.ty)?);
        }
        self.rows.push(coerced);
        self.deleted.push(false);
        self.live += 1;
        Ok(self.rows.len() - 1)
    }

    /// Insert a batch of rows, returning the contiguous row-id range
    /// assigned. All rows are validated and coerced *before* any is
    /// stored, so a bad row leaves the table unchanged; the per-row
    /// arity/type bookkeeping is otherwise identical to
    /// [`insert`](Self::insert) called in a loop.
    pub fn insert_many(&mut self, rows: Vec<Row>) -> Result<std::ops::Range<RowId>, DbError> {
        let mut coerced_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != self.schema.arity() {
                return Err(DbError::SchemaMismatch(format!(
                    "table {} expects {} columns, got {}",
                    self.name,
                    self.schema.arity(),
                    row.len()
                )));
            }
            let mut coerced = Vec::with_capacity(row.len());
            for (v, col) in row.into_iter().zip(self.schema.columns()) {
                coerced.push(v.coerce(col.ty)?);
            }
            coerced_rows.push(coerced);
        }
        let start = self.rows.len();
        self.live += coerced_rows.len();
        self.deleted.resize(start + coerced_rows.len(), false);
        self.rows.extend(coerced_rows);
        Ok(start..self.rows.len())
    }

    /// Tombstone a row. Returns `false` if the id was out of range or the
    /// row was already deleted.
    pub fn delete(&mut self, rid: RowId) -> bool {
        match self.deleted.get_mut(rid) {
            Some(d) if !*d => {
                *d = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Fetch a live row by id (`None` for tombstoned or out-of-range ids).
    pub fn row(&self, rid: RowId) -> Option<&Row> {
        if *self.deleted.get(rid)? {
            return None;
        }
        self.rows.get(rid)
    }

    /// Iterate live rows with their ids.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.deleted[*i])
    }

    /// Column values of one column across live rows (index builds).
    pub fn column_values(&self, col: usize) -> impl Iterator<Item = (RowId, &Value)> {
        self.scan().map(move |(i, r)| (i, &r[col]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            "T",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("price", DataType::Float),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        let rid = t
            .insert(vec![Value::Int(1), Value::from("x"), Value::Int(2)])
            .unwrap();
        assert_eq!(rid, 0);
        // Int coerced into Float column.
        assert_eq!(t.row(0).unwrap()[2], Value::Float(2.0));
    }

    #[test]
    fn insert_rejects_bad_types() {
        let mut t = table();
        let err = t.insert(vec![Value::from("x"), Value::from("y"), Value::Float(1.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn scan_yields_rows_in_insertion_order() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::from("n"), Value::Float(0.0)])
                .unwrap();
        }
        let ids: Vec<RowId> = t.scan().map(|(rid, _)| rid).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.name(), "t");
    }
}
