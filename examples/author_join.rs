//! The multiscript equi-join — the paper's Figure 5 and the e-Governance
//! use case of §2 (find entities recorded under multiple scripts).
//!
//! ```sh
//! cargo run --release -p lexequal-bench --example author_join
//! ```
//!
//! "Select all authors who have published in multiple languages": the
//! LexEQUAL join predicate compares *variables* across scripts — the
//! query that SQL:1999 cannot express at all (§1).

use lexequal::udf::register_udfs;
use lexequal::{LexEqual, MatchConfig};
use lexequal_mdb::Database;
use std::sync::Arc;

fn main() {
    let mut db = Database::new();
    register_udfs(&mut db, Arc::new(LexEqual::new(MatchConfig::default())));

    db.execute("CREATE TABLE books (author TEXT, title TEXT, language TEXT)")
        .expect("create");
    for (author, title, lang) in [
        ("Nehru", "Discovery of India", "English"),
        ("Nehru", "Glimpses of World History", "English"),
        ("नेहरु", "भारत एक खोज", "Hindi"),
        ("நேரு", "ஆசிய ஜோதி", "Tamil"),
        ("Tagore", "Gitanjali", "English"),
        ("टैगोर", "गीतांजलि", "Hindi"),
        ("Nero", "The Coronation of the Virgin", "English"),
        ("Descartes", "Les Méditations", "French"),
        ("Kalam", "Wings of Fire", "English"),
    ] {
        db.execute(&format!(
            "INSERT INTO books VALUES ('{author}', '{title}', '{lang}')"
        ))
        .expect("insert");
    }

    // Figure 5, verbatim syntax.
    let query = "select B1.Author, B1.Language, B2.Author, B2.Language \
                 from Books B1, Books B2 \
                 where B1.Author LexEQUAL B2.Author Threshold 0.45 \
                 and B1.Language <> B2.Language \
                 order by B1.Author";
    println!("SQL> {query}\n");
    let rs = db.execute(query).expect("join");
    println!(
        "{:12} {:8}   {:12} {:8}",
        "Author", "Lang", "= Author", "Lang"
    );
    println!("{}", "-".repeat(48));
    for row in &rs.rows {
        println!("{:12} {:8} ~ {:12} {:8}", row[0], row[1], row[2], row[3]);
    }
    println!(
        "\n{} cross-language author pairs found phonetically \
         (each unordered pair appears twice).",
        rs.rows.len()
    );
    println!("Engine plan: {}", db.explain(query).expect("explain"));
}
