//! Parameter tuning for a deployment domain — the workflow of §4.3:
//! "the matching needs to be tuned as outlined in this section, for
//! specific application domains".
//!
//! ```sh
//! cargo run --release -p lexequal-bench --example tune_parameters
//! ```
//!
//! Runs the recall/precision sweep on a down-sampled corpus, prints the
//! PR surface and recommends the knee parameters (closest point to the
//! perfect (1,1) corner — the paper's Figure 12 criterion).

use lexequal::MatchConfig;
use lexequal_lexicon::{sweep_sampled, Corpus};

fn main() {
    println!("building tagged corpus and sweeping the parameter grid …");
    let corpus = Corpus::build(&MatchConfig::default());
    let costs = [0.0, 0.25, 0.5, 0.75, 1.0];
    let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 * 0.05).collect();
    // stride 4: every fourth tag group — fast, same shapes.
    let points = sweep_sampled(&corpus, &costs, &thresholds, 4);

    println!(
        "\n{:>5} {:>6} {:>8} {:>10}",
        "cost", "thresh", "recall", "precision"
    );
    for p in &points {
        if p.threshold * 20.0 % 2.0 < 1e-9 {
            // print every second threshold for compactness
            println!(
                "{:>5} {:>6.2} {:>8.3} {:>10.3}",
                p.cost,
                p.threshold,
                p.recall(),
                p.precision()
            );
        }
    }

    let best = points
        .iter()
        .min_by(|a, b| {
            a.distance_to_ideal()
                .partial_cmp(&b.distance_to_ideal())
                .expect("finite")
        })
        .expect("non-empty sweep");
    println!(
        "\nrecommended configuration for this domain:\n  \
         MatchConfig::default()\n    \
         .with_intra_cluster_cost({:.2})\n    \
         .with_threshold({:.2})\n  \
         -> recall {:.1}%, precision {:.1}%",
        best.cost,
        best.threshold,
        100.0 * best.recall(),
        100.0 * best.precision()
    );
    println!(
        "\n(paper Figure 12: best matching at cost 0.25–0.5, threshold 0.25–0.35, \
         recall ≈95%, precision ≈85%)"
    );
}
