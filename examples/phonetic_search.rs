//! A phonetic name search engine over a multiscript directory — the
//! web-search-engine use case the paper closes §5.3 with ("applications
//! which … require very fast response times").
//!
//! ```sh
//! cargo run --release -p lexequal-bench --example phonetic_search [query]
//! ```
//!
//! Loads the evaluation corpus (~2,400 names across English, Devanagari
//! and Tamil scripts) into a [`NameStore`] and answers one query through
//! all four access paths, comparing answers and work done.

use lexequal::{Language, MatchConfig, NameStore, QgramMode, SearchMethod};
use lexequal_lexicon::Corpus;
use std::time::Instant;

fn main() {
    let query = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Krishnan".to_owned());

    println!("loading multiscript directory …");
    let corpus = Corpus::build(&MatchConfig::default());
    let mut store = NameStore::new(MatchConfig::default());
    store
        .extend(corpus.entries.iter().map(|e| (e.text.clone(), e.language)))
        .expect("bulk load");
    store.build_qgram(3, QgramMode::Strict);
    store.build_phonetic_index();
    store.build_bktree();
    println!(
        "{} names indexed (q-grams, phonetic index, BK-tree)\n",
        store.len()
    );

    let threshold = 0.3;
    println!("query: {query:?}  threshold: {threshold}\n");
    for (label, method) in [
        ("full scan       ", SearchMethod::Scan),
        ("q-gram filters  ", SearchMethod::Qgram),
        ("phonetic index  ", SearchMethod::PhoneticIndex),
        ("BK-tree         ", SearchMethod::BkTree),
    ] {
        let start = Instant::now();
        let result = store
            .search(&query, Language::English, threshold, method)
            .expect("search");
        let elapsed = start.elapsed();
        let names: Vec<String> = result
            .ids
            .iter()
            .take(8)
            .map(|&id| {
                let e = store.get(id).expect("id valid");
                // Romanize so a Latin-script user can read every hit.
                format!(
                    "{} ({}) [{}]",
                    e.text,
                    lexequal_g2p::translit::to_latin(&e.phonemes),
                    e.language
                )
            })
            .collect();
        println!(
            "{label} {:5} hits  {:6} predicate calls  {:>9.1?}   {}",
            result.ids.len(),
            result.verifications,
            elapsed,
            names.join(", ")
        );
    }
    println!(
        "\nNote: the phonetic index may return fewer hits — its false \
         dismissals are the price of the fastest path (paper §5.3)."
    );
}
