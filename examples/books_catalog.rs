//! The Books.com scenario — the paper's running example (Figures 1–4).
//!
//! ```sh
//! cargo run --release -p lexequal-bench --example books_catalog
//! ```
//!
//! A multilingual product catalog is loaded into the SQL engine, the
//! LexEQUAL UDFs are registered, and the Figure 3 query retrieves every
//! rendering of an author's name with one predicate — no per-language
//! constants, no multilingual input method needed (contrast Figure 2).

use lexequal::udf::register_udfs;
use lexequal::{LexEqual, MatchConfig};
use lexequal_mdb::Database;
use std::sync::Arc;

fn main() {
    let mut db = Database::new();
    register_udfs(&mut db, Arc::new(LexEqual::new(MatchConfig::default())));

    db.execute(
        "CREATE TABLE books (author TEXT, author_fn TEXT, title TEXT, price FLOAT, language TEXT)",
    )
    .expect("create");
    // The Figure 1 catalog — including the Arabic row (بهنسي = Behnasi)
    // and a katakana rendering of Nehru standing in for the kanji row
    // (kanji has no phonemic reading without a dictionary; see
    // lexequal_g2p::japanese).
    for (author, first, title, price, lang) in [
        (
            "Descartes",
            "René",
            "Les Méditations Metaphysiques",
            49.00,
            "French",
        ),
        ("நேரு", "ஜவஹர்லால்", "ஆசிய ஜோதி", 250.0, "Tamil"),
        ("Σαρρη", "Κατερινα", "Παιχνίδια στο Πιάνο", 15.50, "Greek"),
        (
            "Nero",
            "Bicci",
            "The Coronation of the Virgin",
            99.00,
            "English",
        ),
        ("بهنسي", "عفيف", "العمارة عبر التاريخ", 75.0, "Arabic"),
        ("Nehru", "Jawaharlal", "Discovery of India", 9.95, "English"),
        (
            "ネルー",
            "ジャワハルラール",
            "インドの発見",
            7500.0,
            "Japanese",
        ),
        ("नेहरु", "जवाहरलाल", "भारत एक खोज", 175.0, "Hindi"),
    ] {
        db.execute(&format!(
            "INSERT INTO books VALUES ('{author}', '{first}', '{title}', {price}, '{lang}')"
        ))
        .expect("insert");
    }

    // Figure 3, verbatim syntax (threshold raised to our pipeline's knee;
    // Japanese added to the target languages to catch the katakana row).
    let query = "select Author, Title, Price from Books \
                 where Author LexEQUAL 'Nehru' Threshold 0.45 \
                 inlanguages { English, Hindi, Tamil, Greek, Japanese }";
    println!("SQL> {query}\n");
    let rs = db.execute(query).expect("LexEQUAL query");
    println!("{:20} {:32} {:>8}", "Author", "Title", "Price");
    println!("{}", "-".repeat(64));
    for row in &rs.rows {
        println!("{:20} {:32} {:>8}", row[0], row[1], row[2]);
    }
    println!(
        "\n({} rows — compare the paper's Figure 4; Nero may join at looser thresholds)",
        rs.rows.len()
    );

    // The wildcard language form.
    let rs = db
        .execute(
            "select Author from Books where Author LexEQUAL 'Nehru' Threshold 0.45 inlanguages *",
        )
        .expect("wildcard query");
    println!(
        "\nWith `inlanguages *`: {} matching renderings",
        rs.rows.len()
    );
}
