//! Quickstart: the LexEQUAL operator in five minutes.
//!
//! ```sh
//! cargo run --release -p lexequal-bench --example quickstart
//! ```
//!
//! Demonstrates the core pipeline of the paper: text → phonemes (Figure 9)
//! → thresholded phonetic matching (Figure 8), across four scripts.

use lexequal::{Language, LexEqual, MatchConfig, Outcome};

fn main() {
    let lex = LexEqual::new(MatchConfig::default());

    // --- Figure 9: phonemic representations of multiscript strings -------
    println!("Phonemic representations (cf. paper Figure 9):");
    for (text, lang) in [
        ("University", Language::English),
        ("நேரு", Language::Tamil),
        ("École", Language::French),
        ("இந்தியா", Language::Tamil),
        ("हैड्रोजन", Language::Hindi),
        ("Español", Language::Spanish),
        ("Νερού", Language::Greek),
    ] {
        let p = lex.transform(text, lang).expect("transform");
        println!("  {text:12} {lang:8} /{p}/");
    }

    // --- The multiscript match ------------------------------------------
    println!("\nMultiscript matches for 'Nehru' (threshold 0.45):");
    for (text, lang) in [
        ("नेहरु", Language::Hindi),
        ("நேரு", Language::Tamil),
        ("Νερού", Language::Greek),
        ("Nero", Language::English),
        ("Gandhi", Language::English),
        ("गांधी", Language::Hindi),
    ] {
        let outcome = lex
            .match_strings_with("Nehru", Language::English, text, lang, 0.45)
            .expect("match");
        let mark = match outcome {
            Outcome::True => "MATCH",
            Outcome::False => "  -  ",
            Outcome::NoResource(_) => "NORES",
        };
        println!("  [{mark}] Nehru ~ {text} ({lang})");
    }

    // --- The threshold knob ----------------------------------------------
    println!("\nThe Nero/Nehru false positive appears as the threshold grows:");
    for e in [0.0, 0.25, 0.5] {
        let o = lex
            .match_strings_with("Nehru", Language::English, "Nero", Language::English, e)
            .expect("match");
        println!("  threshold {e:4}: {o:?}");
    }

    // --- Distances under the clustered cost model -------------------------
    let a = lex.transform("Catherine", Language::English).expect("ok");
    let b = lex.transform("Kathryn", Language::English).expect("ok");
    println!(
        "\nclustered distance /{a}/ ~ /{b}/ = {:.2} (budget at e=0.35: {:.2})",
        lex.distance(&a, &b),
        lex.budget(&a, &b, 0.35)
    );

    // --- The paper's opening example: Al-Qaeda across scripts -------------
    // The English diphthong /eɪ/ vs the Arabic /aːʔa/ hiatus puts this
    // pair past the name-matching knee; it illustrates how the threshold
    // trades reach against noise (a security-screening deployment would
    // run a generous threshold and post-filter).
    let en = lex.transform("Al-Qaeda", Language::English).expect("ok");
    let ar = lex.transform("القاعدة", Language::Arabic).expect("ok");
    let d = lex.distance(&en, &ar);
    let min_e = d / en.len().min(ar.len()) as f64;
    println!(
        "\nthe paper's §1 example — Al-Qaeda /{en}/ vs القاعدة /{ar}/: distance {d:.2}; \
         matches at thresholds above {min_e:.2} (e=0.55: {})",
        lex.matches_phonemes(&en, &ar, 0.55)
    );
}
