#!/usr/bin/env bash
# Tier-1 verification, exactly what CI runs. Fully offline: the
# workspace has no external dependencies (see the workspace Cargo.toml
# for how to restore the optional proptest/criterion extras).
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy -p lexequal-service -p lexequal-mdb -D warnings"
# The serving and snapshot crates get their own pass so a crate-local
# change can't hide behind a cached workspace run.
cargo clippy -p lexequal-service -p lexequal-mdb --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== cargo test"
cargo test --workspace --offline -q

echo "== evented serving: framing + 1024-connection soak"
cargo test -p lexequal-service --offline -q --test framing --test evented_soak

echo "== snapshot persistence: round-trip equivalence + corrupt files + CLI"
cargo test -p lexequal-service --offline -q --test snapshot_roundtrip --test cli_flags
cargo test -p lexequal-mdb --offline -q snapshot

echo "== mmap store: hostile-binary battery + bit-identical round trip"
# The binary format's own pass: clippy over the serving crate (where
# mmapstore lives), the corruption battery (truncation sweep, header
# byte sweep, OOB/misaligned sections, checksum flips — named errors,
# zero panics), and the round-trip suite (save → mmap-load → full MATCH
# battery vs the rebuilt store, both serve modes, replica raw-transfer).
cargo clippy -p lexequal-service --all-targets --offline -- -D warnings
cargo test -p lexequal-service --offline -q --test mmap_corruption --test mmap_roundtrip

echo "== replication: WAL corruption matrix + primary/replica e2e"
# repl_e2e includes the kill-primary / restart-from-snapshot+WAL cycle
# through the real binary, asserting byte-identical MATCH answers.
cargo test -p lexequal-service --offline -q --test wal_recovery --test repl_e2e

echo "== WAL compaction: crash-state battery + bounded-log e2e"
# wal_compaction replays recovery from every on-disk state the
# checkpoint/rename/truncate protocol can crash in; compaction_e2e
# soaks a capped WAL through >=3 cycles with a live replica and walks
# SIGKILL across the compactor's cycle through the real binary.
cargo test -p lexequal-service --offline -q --test wal_compaction --test compaction_e2e

echo "== untagged queries: script routing + g2p + wire/replica e2e"
# clippy over the new modules specifically, then the pinned goldens
# (fan-out union, byte-identical unambiguous answers, NORESOURCE,
# resolved-tag replication) over real sockets in both serve modes.
cargo clippy -p lexequal-g2p --all-targets --offline -- -D warnings
cargo test -p lexequal-g2p --offline -q
cargo test -p lexequal-service --offline -q --test untagged

echo "== batched verification: differential suite on both SIMD backends"
# The batched kernel must return bit-identical verdicts to the scalar
# Verifier on every access path, batch width and backend. The second
# pass re-runs the suite in a fresh process with the runtime dispatch
# pinned to the scalar DP column (the OnceLock caches the level per
# process, so the override needs its own invocation).
cargo clippy -p lexequal-matcher -p lexequal --all-targets --offline -- -D warnings
cargo test -p lexequal --offline -q --test verify_batch_equiv --test verify_zero_alloc
LEXEQUAL_FORCE_SCALAR=1 cargo test -p lexequal --offline -q --test verify_batch_equiv

echo "== embedding prefilter: crate pass + differential suite + A/B smoke"
# The embedding crate gets its own clippy pass; the differential suite
# (screen on/off, byte-identical verdicts across widths, backends and
# access paths) runs on both the SIMD and forced-scalar dispatch; the
# A/B smoke run must report embed rejections without changing a single
# answer (the bench asserts ids-identical internally).
cargo clippy -p lexequal-embed --all-targets --offline -- -D warnings
cargo test -p lexequal-embed --offline -q
cargo test -p lexequal --offline -q --test verify_batch_equiv
LEXEQUAL_FORCE_SCALAR=1 cargo test -p lexequal --offline -q --test verify_batch_equiv
cargo run --release -p lexequal-service --offline --bin loadgen -- \
    --prefilter-bench --size 2000 --pool 16 \
    --prefilter-out results/prefilter_bench_ci.json
rm -f results/prefilter_bench_ci.json

echo "== replication bench (small run; full size via --size/--repl-ops)"
cargo run --release -p lexequal-service --offline --bin loadgen -- \
    --repl-bench --size 2000 --repl-ops 200 --repl-out results/repl_bench_ci.json
rm -f results/repl_bench_ci.json

echo "== snapshot cold-start timing (small run; full size via --size)"
# Scratch dir: --snapshot-bench also writes a sibling mmap_bench.json,
# and the CI smoke run must not clobber the full-size artifacts.
mkdir -p results/ci_scratch
cargo run --release -p lexequal-service --offline --bin loadgen -- \
    --snapshot-bench --size 5000 --snapshot-out results/ci_scratch/snapshot_bench_ci.json
rm -rf results/ci_scratch

echo "== compaction soak (small run; full size via --size/--compaction-ops)"
# Self-checking: the bench exits non-zero if the replica ends lagged or
# any battery answer differs between primary and replica.
cargo run --release -p lexequal-service --offline --bin loadgen -- \
    --compaction-bench --size 1500 --compaction-ops 600 --wal-max-bytes 16384 \
    --compaction-out results/compaction_bench_ci.json
rm -f results/compaction_bench_ci.json

echo "== untagged bench (small run; full size via --size/--ops)"
cargo run --release -p lexequal-service --offline --bin loadgen -- \
    --untagged-bench --size 2000 --ops 100 \
    --untagged-out results/untagged_bench_ci.json
rm -f results/untagged_bench_ci.json

echo "== cargo bench --no-run"
# Compile-checks the bench harnesses. The criterion micro-benchmarks are
# behind required-features = ["criterion-benches"], so without the
# restored criterion dependency this covers the bench *binaries* only.
cargo bench --workspace --offline --no-run

echo "ci: all green"
