//! The paper's empirical claims, asserted as integration tests.
//!
//! Each test pins one *shape* from the evaluation section — not the
//! absolute numbers (our substrate differs), but the relationships the
//! paper's conclusions rest on.

use lexequal::{ClusterTable, LexEqual, MatchConfig, PhoneticIndex};
use lexequal_lexicon::{sweep_sampled, Corpus, QualityPoint, SyntheticDataset};
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(|| Corpus::build(&MatchConfig::default()))
}

fn quality_grid() -> &'static [QualityPoint] {
    static P: OnceLock<Vec<QualityPoint>> = OnceLock::new();
    P.get_or_init(|| {
        sweep_sampled(
            corpus(),
            &[0.0, 0.25, 0.5, 1.0],
            &[0.0, 0.1, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.75, 1.0],
            4,
        )
    })
}

fn at(cost: f64, threshold: f64) -> &'static QualityPoint {
    quality_grid()
        .iter()
        .find(|p| p.cost == cost && (p.threshold - threshold).abs() < 1e-9)
        .expect("grid point exists")
}

// ---- Figure 10 / 13: dataset shapes ---------------------------------------

#[test]
fn figure10_corpus_scale_and_lengths() {
    let c = corpus();
    assert!(c.groups >= 700, "~800 groups expected, got {}", c.groups);
    assert_eq!(c.len() % 3, 0, "three renderings per group");
    // Paper: avg lex 7.35, phon 7.16, phonemic slightly shorter.
    assert!((4.5..=9.5).contains(&c.avg_lex_len()));
    assert!((4.5..=9.5).contains(&c.avg_phon_len()));
    assert!(
        c.avg_phon_len() <= c.avg_lex_len(),
        "phoneme strings should be a little shorter than spellings"
    );
}

#[test]
fn figure13_synthetic_scale_and_lengths() {
    let d = SyntheticDataset::generate(corpus(), 30_000);
    assert!((28_000..=33_000).contains(&d.len()));
    // Concatenation doubles the averages (paper: 14.71 / 14.31).
    let c = corpus();
    assert!((d.avg_phon_len() - 2.0 * c.avg_phon_len()).abs() < 1.0);
    assert!((d.avg_lex_len() - 2.0 * c.avg_lex_len()).abs() < 1.0);
}

// ---- Figure 11: recall / precision curves ---------------------------------

#[test]
fn figure11_recall_rises_with_threshold() {
    for cost in [0.0, 0.25, 0.5, 1.0] {
        let mut last = -1.0;
        for th in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0] {
            let r = at(cost, th).recall();
            assert!(r + 1e-12 >= last, "recall fell at cost {cost}, th {th}");
            last = r;
        }
    }
}

#[test]
fn figure11_recall_improves_with_lower_cost() {
    for th in [0.25, 0.3, 0.4, 0.5] {
        assert!(
            at(0.0, th).recall() + 1e-12 >= at(1.0, th).recall(),
            "Soundex-like costs must help recall (th {th})"
        );
        assert!(
            at(0.25, th).recall() + 1e-12 >= at(1.0, th).recall(),
            "cost 0.25 must beat cost 1.0 on recall (th {th})"
        );
    }
}

#[test]
fn figure11_recall_asymptotes_past_half() {
    for cost in [0.0, 0.25, 0.5] {
        let r = at(cost, 0.75).recall();
        assert!(r > 0.95, "recall at cost {cost}, th 0.75 was {r}");
    }
}

#[test]
fn figure11_precision_decays_with_threshold() {
    for cost in [0.25, 0.5, 1.0] {
        let p02 = at(cost, 0.2).precision();
        let p05 = at(cost, 0.5).precision();
        let p10 = at(cost, 1.0).precision();
        assert!(p05 < p02, "precision must fall 0.2 -> 0.5 (cost {cost})");
        assert!(p10 < p05, "precision must fall 0.5 -> 1.0 (cost {cost})");
    }
}

#[test]
fn figure11_soundex_limit_trades_precision_for_recall() {
    // Cost 0 at moderate thresholds: strong recall, weak precision
    // relative to cost 0.25 at the same threshold.
    let soundex = at(0.0, 0.3);
    let tuned = at(0.25, 0.3);
    assert!(soundex.recall() >= tuned.recall() - 1e-12);
    assert!(soundex.precision() < tuned.precision());
}

// ---- Figure 12: the knee ----------------------------------------------------

#[test]
fn figure12_knee_has_simultaneous_recall_and_precision() {
    // Paper: recall ≈95%, precision ≈85% at cost 0.25–0.5, th 0.25–0.35.
    // Our corpus carries more machine-conversion noise; demand ≥80/70
    // somewhere in the knee region and report exact values in
    // EXPERIMENTS.md.
    let knee = [at(0.25, 0.2), at(0.25, 0.25), at(0.25, 0.3), at(0.5, 0.25)];
    let best = knee
        .iter()
        .min_by(|a, b| {
            a.distance_to_ideal()
                .partial_cmp(&b.distance_to_ideal())
                .expect("finite")
        })
        .expect("non-empty");
    assert!(
        best.recall() > 0.8 && best.precision() > 0.7,
        "knee quality too low: r={:.3} p={:.3}",
        best.recall(),
        best.precision()
    );
}

#[test]
fn figure12_extreme_parameters_are_dominated() {
    // Both extremes (cost 1 and threshold 1) are far from the corner.
    let knee = at(0.25, 0.25).distance_to_ideal();
    assert!(at(1.0, 0.25).distance_to_ideal() > knee);
    assert!(at(0.25, 1.0).distance_to_ideal() > knee);
    assert!(at(0.0, 1.0).distance_to_ideal() > knee);
}

// ---- Table 3: phonetic index dismissals ------------------------------------

#[test]
fn table3_phonetic_index_dismisses_small_fraction_of_self_probes() {
    // Probing with strings from the corpus itself: the identical string
    // always shares its own grouped id, so self-matches are never lost;
    // cross-script matches with cross-cluster edits are. The dismissal
    // rate must be well below half for corpus probes at the knee.
    let op = LexEqual::new(MatchConfig::default());
    let c = corpus();
    let phonemes: Vec<_> = c.entries.iter().map(|e| e.phonemes.clone()).collect();
    let index = PhoneticIndex::build(op.cost_model().clusters(), &phonemes);
    let mut scan_hits = 0usize;
    let mut index_hits = 0usize;
    for q in phonemes.iter().step_by(29) {
        let (ids, _) = index.search(&phonemes, q, 0.25, &op);
        index_hits += ids.len();
        scan_hits += phonemes
            .iter()
            .filter(|p| op.matches_phonemes(p, q, 0.25))
            .count();
    }
    assert!(index_hits <= scan_hits);
    let rate = (scan_hits - index_hits) as f64 / scan_hits.max(1) as f64;
    assert!(
        rate < 0.5,
        "dismissal rate {rate:.2} unreasonably high for corpus probes"
    );
    assert!(rate > 0.0, "some dismissals are expected (paper: 4-5%)");
}

#[test]
fn coarse_clusters_increase_candidates_and_reduce_dismissals() {
    let c = corpus();
    let phonemes: Vec<_> = c.entries.iter().map(|e| e.phonemes.clone()).collect();
    let fine = PhoneticIndex::build(&ClusterTable::standard(), &phonemes);
    let coarse = PhoneticIndex::build(&ClusterTable::coarse(), &phonemes);
    assert!(coarse.distinct_keys() < fine.distinct_keys());

    let fine_op = LexEqual::new(MatchConfig::default());
    let coarse_op = LexEqual::new(MatchConfig::default().with_clusters(ClusterTable::coarse()));
    let mut fine_hits = 0usize;
    let mut coarse_hits = 0usize;
    for q in phonemes.iter().step_by(47) {
        fine_hits += fine.search(&phonemes, q, 0.25, &fine_op).0.len();
        coarse_hits += coarse.search(&phonemes, q, 0.25, &coarse_op).0.len();
    }
    // Coarser grouping retrieves at least as many candidates.
    assert!(coarse_hits >= fine_hits);
}
