//! Cross-crate consistency: every access path must tell the same story.
//!
//! These tests run the whole stack — corpus generation, G2P, cost model,
//! accelerators — and assert the semantic relationships between access
//! paths that the paper's architecture relies on:
//!
//! * scan and strict q-gram search return identical result sets;
//! * the BK-tree search returns identical result sets;
//! * the phonetic index returns a subset (its dismissals), never a
//!   superset;
//! * everything is symmetric and deterministic.

use lexequal::{MatchConfig, NameStore, QgramMode, SearchMethod};
use lexequal_lexicon::Corpus;
use std::sync::OnceLock;

const THRESHOLD: f64 = 0.3;

fn store() -> &'static NameStore {
    static STORE: OnceLock<NameStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let corpus = Corpus::build(&MatchConfig::default());
        let mut store = NameStore::new(MatchConfig::default());
        // Every 5th group keeps the test fast while spanning all scripts.
        store
            .extend(
                corpus
                    .entries
                    .iter()
                    .filter(|e| e.tag % 5 == 0)
                    .map(|e| (e.text.clone(), e.language)),
            )
            .expect("bulk load");
        store.build_qgram(3, QgramMode::Strict);
        store.build_phonetic_index();
        store.build_bktree();
        store
    })
}

fn queries() -> Vec<lexequal::PhonemeString> {
    let s = store();
    (0..s.len() as u32)
        .step_by(37)
        .map(|i| s.get(i).expect("valid id").phonemes.clone())
        .collect()
}

#[test]
fn qgram_strict_equals_scan() {
    let s = store();
    for q in queries() {
        let scan = s.search_phonemes(&q, THRESHOLD, SearchMethod::Scan);
        let qg = s.search_phonemes(&q, THRESHOLD, SearchMethod::Qgram);
        assert_eq!(scan.ids, qg.ids, "query /{q}/");
        assert!(
            qg.verifications <= scan.verifications,
            "q-grams may not verify more than a scan"
        );
    }
}

#[test]
fn bktree_equals_scan() {
    let s = store();
    for q in queries() {
        let scan = s.search_phonemes(&q, THRESHOLD, SearchMethod::Scan);
        let bk = s.search_phonemes(&q, THRESHOLD, SearchMethod::BkTree);
        assert_eq!(scan.ids, bk.ids, "query /{q}/");
    }
}

#[test]
fn phonetic_index_is_sound_subset() {
    let s = store();
    let mut total_scan = 0usize;
    let mut total_index = 0usize;
    for q in queries() {
        let scan = s.search_phonemes(&q, THRESHOLD, SearchMethod::Scan);
        let pi = s.search_phonemes(&q, THRESHOLD, SearchMethod::PhoneticIndex);
        for id in &pi.ids {
            assert!(
                scan.ids.contains(id),
                "index returned a false positive for /{q}/"
            );
        }
        total_scan += scan.ids.len();
        total_index += pi.ids.len();
    }
    assert!(total_index <= total_scan);
    // Self-probes always hit: every query is a stored string.
    assert!(total_index >= queries().len());
}

#[test]
fn search_is_deterministic() {
    let s = store();
    let q = queries().into_iter().next().expect("non-empty");
    let a = s.search_phonemes(&q, THRESHOLD, SearchMethod::Qgram);
    let b = s.search_phonemes(&q, THRESHOLD, SearchMethod::Qgram);
    assert_eq!(a, b);
}

#[test]
fn scan_matches_are_symmetric() {
    let s = store();
    let op = s.operator();
    let qs = queries();
    for (i, a) in qs.iter().enumerate() {
        for b in &qs[i + 1..] {
            assert_eq!(
                op.matches_phonemes(a, b, THRESHOLD),
                op.matches_phonemes(b, a, THRESHOLD),
                "/{a}/ vs /{b}/"
            );
        }
    }
}

#[test]
fn every_stored_name_matches_itself_at_threshold_zero() {
    let s = store();
    for id in (0..s.len() as u32).step_by(11) {
        let e = s.get(id).expect("valid");
        let r = s.search_phonemes(&e.phonemes, 0.0, SearchMethod::Scan);
        assert!(r.ids.contains(&id), "{} does not match itself", e.text);
    }
}
