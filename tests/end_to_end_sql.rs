//! End-to-end SQL integration: the paper's queries running through the
//! full stack (parser → planner → executor → UDFs → G2P → matcher).

use lexequal::udf::{load_names_table, load_qgram_aux_table, register_udfs};
use lexequal::{Language, LexEqual, MatchConfig};
use lexequal_mdb::{Database, Value};
use std::sync::Arc;

fn catalog_db() -> Database {
    let mut db = Database::new();
    register_udfs(&mut db, Arc::new(LexEqual::new(MatchConfig::default())));
    db.execute("CREATE TABLE books (author TEXT, title TEXT, price FLOAT, language TEXT)")
        .expect("create");
    for (author, title, price, lang) in [
        (
            "Descartes",
            "Les Méditations Metaphysiques",
            49.00,
            "French",
        ),
        ("நேரு", "ஆசிய ஜோதி", 250.0, "Tamil"),
        ("Σαρρη", "Παιχνίδια στο Πιάνο", 15.50, "Greek"),
        ("Nero", "The Coronation of the Virgin", 99.00, "English"),
        ("Nehru", "Discovery of India", 9.95, "English"),
        ("नेहरु", "भारत एक खोज", 175.0, "Hindi"),
    ] {
        db.execute(&format!(
            "INSERT INTO books VALUES ('{author}', '{title}', {price}, '{lang}')"
        ))
        .expect("insert");
    }
    db
}

#[test]
fn figure3_selection_returns_figure4_rows() {
    let mut db = catalog_db();
    let rs = db
        .execute(
            "select Author, Title, Price from Books \
             where Author LexEQUAL 'Nehru' Threshold 0.45 \
             inlanguages { English, Hindi, Tamil, Greek }",
        )
        .expect("query");
    let authors: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    // The Figure 4 result set: the English, Tamil and Hindi renderings.
    assert!(authors.contains(&"Nehru".into()), "{authors:?}");
    assert!(authors.contains(&"நேரு".into()), "{authors:?}");
    assert!(authors.contains(&"नेहरु".into()), "{authors:?}");
    // French row must never appear.
    assert!(!authors.contains(&"Descartes".into()));
}

#[test]
fn language_restriction_excludes_scripts() {
    let mut db = catalog_db();
    let rs = db
        .execute(
            "select Author from Books \
             where Author LexEQUAL 'Nehru' Threshold 0.45 \
             inlanguages { English, Tamil }",
        )
        .expect("query");
    let authors: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(authors.contains(&"நேரு".into()));
    assert!(
        !authors.contains(&"नेहरु".into()),
        "Hindi must be excluded when not in INLANGUAGES: {authors:?}"
    );
}

#[test]
fn figure5_join_finds_multilingual_authors() {
    let mut db = catalog_db();
    let rs = db
        .execute(
            "select B1.Author from Books B1, Books B2 \
             where B1.Author LexEQUAL B2.Author Threshold 0.45 \
             and B1.Language <> B2.Language",
        )
        .expect("join");
    // Nehru renderings appear in all pairs; Descartes/Σαρρη never.
    assert!(!rs.rows.is_empty());
    for row in &rs.rows {
        let a = row[0].to_string();
        assert!(
            ["Nehru", "नेहरु", "நேரு", "Nero"].contains(&a.as_str()),
            "unexpected join participant {a}"
        );
    }
}

#[test]
fn orderby_limit_and_aggregates_compose_with_lexequal() {
    let mut db = catalog_db();
    let rs = db
        .execute(
            "select COUNT(*), MIN(Price), MAX(Price) from Books \
             where Author LexEQUAL 'Nehru' Threshold 0.45 inlanguages *",
        )
        .expect("agg");
    let n = rs.rows[0][0].as_i64().expect("count");
    assert!(n >= 3, "expected at least the three Nehru renderings");
    assert_eq!(rs.rows[0][1], Value::Float(9.95));
}

#[test]
fn full_accelerated_pipeline_over_names_table() {
    let op = LexEqual::new(MatchConfig::default());
    let mut db = Database::new();
    register_udfs(&mut db, Arc::new(op.clone()));
    let names: Vec<(String, Language)> = [
        ("Nehru", Language::English),
        ("नेहरु", Language::Hindi),
        ("நேரு", Language::Tamil),
        ("Nero", Language::English),
        ("Gandhi", Language::English),
        ("गांधी", Language::Hindi),
        ("Krishnan", Language::English),
        ("Kumar", Language::English),
    ]
    .into_iter()
    .map(|(n, l)| (n.to_owned(), l))
    .collect();
    load_names_table(&mut db, "names", &names, &op).expect("names");
    load_qgram_aux_table(&mut db, "auxnames", "names", 3).expect("aux");
    db.execute("CREATE INDEX ix_gpid ON names (gpid)")
        .expect("index");

    // Aux table has one row per positional q-gram.
    let rs = db.execute("SELECT COUNT(*) FROM auxnames").expect("count");
    let grams = rs.rows[0][0].as_i64().expect("int");
    assert!(grams > names.len() as i64 * 3);

    // Phonetic-index plan (Figure 15): index scan + UDF.
    let q = op.transform("Nehru", Language::English).expect("ok");
    let key = lexequal::phonidx::grouped_id(op.cost_model().clusters(), &q);
    let sql =
        format!("SELECT name FROM names WHERE gpid = {key} AND PHONEQUAL(pname, '{q}', 0.45)");
    assert!(db.explain(&sql).expect("explain").contains("IndexScan"));
    let rs = db.execute(&sql).expect("exec");
    let found: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(found.contains(&"Nehru".into()));

    // Index lookups recorded, UDF not called for every row.
    assert!(db.stats().index_lookups() >= 1);
    assert!(db.stats().udf_calls("PHONEQUAL") < names.len() as u64);
}

#[test]
fn lexequal_treats_unknown_script_as_nonmatch() {
    let mut db = catalog_db();
    db.execute("INSERT INTO books VALUES ('العمارة', 'Arabic title', 75.0, 'Arabic')")
        .expect("insert");
    let rs = db
        .execute(
            "select Author from Books where Author LexEQUAL 'Nehru' Threshold 0.45 inlanguages *",
        )
        .expect("query");
    let authors: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(!authors.contains(&"العمارة".into()));
}
